//! Multi-tenant serving demo: 16 adapter variants of one frozen base
//! behind one endpoint.
//!
//! Builds a tiny-BERT adapter template, derives 16 per-tenant variants
//! (shared frozen backbone, tenant-specific adapters + head), and
//! publishes all of them into one [`ModelRegistry`] backed by a
//! content-addressed delta store. The base weights are resident exactly
//! once (asserted via `Arc` pointer identity); each tenant adds only its
//! delta, with structurally identical delta tensors interned once.
//!
//! The demo then serves two tenants over loopback HTTP (`/predict/<id>`),
//! reads the dedup ratio from `/stats`, evicts a cold tenant to the delta
//! store, and shows it faulting back in bit-identically on the next
//! request. Registry accounting lands in
//! `$NAUTILUS_RESULTS/multitenant_demo.json` (default `results/`) for the
//! verify gate.
//!
//! Run with: `cargo run --release --example multitenant_demo`

use nautilus_repro::core::config::SystemConfig;
use nautilus_repro::core::NautilusError;
use nautilus_repro::dnn::exec::{forward, BatchInputs};
use nautilus_repro::dnn::ModelGraph;
use nautilus_repro::models::bert::{adapter_model, BertConfig};
use nautilus_repro::models::{personalize, BuildScale};
use nautilus_repro::serve::{http, ModelRegistry, Server};
use nautilus_repro::tensor::Tensor;
use nautilus_repro::util::json::Json;
use std::sync::Arc;
use std::time::Duration;

const TENANTS: usize = 16;

fn err(e: impl std::fmt::Display) -> NautilusError {
    NautilusError::Other(e.to_string())
}

fn solo_forward(g: &ModelGraph, record: &[f32]) -> Vec<f32> {
    let inp = g.input_ids()[0];
    let t = Tensor::from_vec(g.shape(inp).with_batch(1), record.to_vec()).unwrap();
    let mut bi = BatchInputs::new();
    bi.insert(inp, t);
    forward(g, &bi, false).unwrap().output(g.outputs()[0]).data().to_vec()
}

fn main() -> Result<(), NautilusError> {
    let store_dir = std::env::temp_dir().join("nautilus-multitenant-demo");
    let _ = std::fs::remove_dir_all(&store_dir);

    // --- 16 personalized variants off one frozen backbone ---
    let cfg = BertConfig::tiny(8, 50);
    let template = adapter_model(&cfg, 2, 8, 9, BuildScale::Real).map_err(err)?;
    let variants: Vec<ModelGraph> = (0..TENANTS as u64)
        .map(|t| personalize(&template, t).map_err(err))
        .collect::<Result<_, _>>()?;
    println!("built {TENANTS} adapter variants of one tiny-BERT base");

    let serving = SystemConfig::builder()
        .serve_delta_store_dir(store_dir.to_str().expect("utf-8 temp dir"))
        .serve_max_resident_variants(TENANTS)
        .serve_max_batch(32)
        .serve_max_delay_us(2_000)
        .build()
        .serving;
    let registry = Arc::new(ModelRegistry::with_config(&serving).map_err(err)?);
    for (t, g) in variants.iter().enumerate() {
        registry.publish(&format!("tenant-{t}"), g.clone()).map_err(err)?;
    }

    // --- The base is one Arc, resident exactly once ---
    let first = registry.get("tenant-0").map_err(err)?;
    for t in 1..TENANTS {
        let a = registry.get(&format!("tenant-{t}")).map_err(err)?;
        assert!(
            Arc::ptr_eq(&first.base, &a.base),
            "tenant-{t} holds a second copy of the base"
        );
    }
    let stats = registry.stats();
    println!(
        "registry: {} variants on {} base ({} logical bytes served from {} stored, {:.2}x dedup)",
        stats.resident_variants,
        stats.bases,
        stats.bytes_logical,
        stats.bytes_stored,
        stats.dedup_ratio()
    );

    // --- Serve two tenants over loopback HTTP ---
    let server = Server::start(Arc::clone(&registry), &serving, 0).map_err(err)?;
    let addr = server.addr().to_string();
    println!("serving {TENANTS} tenants on http://{addr}");
    let record: Vec<f32> = (0..8).map(|i| (i * 5 % 50) as f32).collect();
    let body = format!(
        "{{\"inputs\": [{}]}}",
        record.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
    );
    for t in [0usize, 1] {
        let (status, raw) = http::request(
            &addr,
            "POST",
            &format!("/predict/tenant-{t}"),
            Some(body.as_bytes()),
            Duration::from_secs(10),
        )
        .map_err(err)?;
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
        let out: Json = nautilus_repro::util::json::from_slice(&raw).map_err(err)?;
        let values: Vec<f32> = out
            .get("outputs")
            .and_then(|v| v.as_arr())
            .expect("outputs array")
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect();
        assert_eq!(
            values,
            solo_forward(&variants[t], &record),
            "tenant-{t}: served output differs from solo forward"
        );
        println!("POST /predict/tenant-{t} -> 200, bit-identical to solo serving");
    }
    let (status, raw) =
        http::request(&addr, "GET", "/stats", None, Duration::from_secs(5)).map_err(err)?;
    assert_eq!(status, 200);
    let st: Json = nautilus_repro::util::json::from_slice(&raw).map_err(err)?;
    let ratio = st
        .get("registry")
        .and_then(|r| r.get("dedup_ratio"))
        .and_then(|v| v.as_f64())
        .expect("dedup_ratio in /stats");
    println!("GET /stats -> dedup_ratio {ratio:.2}");

    // --- Evict a cold tenant, fault it back in bit-identically ---
    registry.evict("tenant-5").map_err(err)?;
    let resident_after = registry.stats().resident_variants;
    let (status, raw) = http::request(
        &addr,
        "POST",
        "/predict/tenant-5",
        Some(body.as_bytes()),
        Duration::from_secs(10),
    )
    .map_err(err)?;
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
    let out: Json = nautilus_repro::util::json::from_slice(&raw).map_err(err)?;
    let values: Vec<f32> = out
        .get("outputs")
        .and_then(|v| v.as_arr())
        .expect("outputs array")
        .iter()
        .map(|v| v.as_f64().unwrap() as f32)
        .collect();
    assert_eq!(values, solo_forward(&variants[5], &record), "fault-in changed the answer");
    let final_stats = registry.stats();
    assert!(final_stats.evictions >= 1 && final_stats.fault_ins >= 1);
    println!(
        "evicted tenant-5 ({resident_after} resident), faulted back in bit-identically \
         ({} evictions, {} fault-ins)",
        final_stats.evictions, final_stats.fault_ins
    );

    server.shutdown();

    // --- Record accounting for the verify gate ---
    let results_dir = std::env::var("NAUTILUS_RESULTS").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&results_dir).map_err(err)?;
    let out = Json::obj([
        ("variants", Json::Int(TENANTS as i128)),
        ("bases", Json::Int(stats.bases as i128)),
        ("bytes_logical", Json::Int(stats.bytes_logical as i128)),
        ("bytes_stored", Json::Int(stats.bytes_stored as i128)),
        ("dedup_ratio", Json::Num(stats.dedup_ratio())),
        ("evictions", Json::Int(final_stats.evictions as i128)),
        ("fault_ins", Json::Int(final_stats.fault_ins as i128)),
    ]);
    let path = std::path::Path::new(&results_dir).join("multitenant_demo.json");
    std::fs::write(&path, out.to_string()).map_err(err)?;
    println!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
