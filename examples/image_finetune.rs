//! Fine-tuning a convolutional backbone on evolving image data (the
//! paper's FTU workload: ResNet on Malaria blood-smear images).
//!
//! Explores four freezing schemes — fine-tune the last {3, 6, 9, 12}
//! residual blocks — across two learning rates, on a synthetic infected-
//! cell dataset. Shows how the materializable frontier (everything below
//! the first unfrozen block) shrinks as more blocks are unfrozen, and how
//! Nautilus still finds reuse.
//!
//! Run with: `cargo run --release --example image_finetune`

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy, SystemConfig};
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::resnet::{fine_tune_model, ResNetConfig};
use nautilus_repro::models::BuildScale;

fn main() -> Result<(), NautilusError> {
    let rcfg = ResNetConfig::tiny(16);
    let mut candidates = Vec::new();
    for &unfrozen in &[3usize, 6, 9, 12] {
        for &lr in &[5e-3f32, 2e-3] {
            candidates.push(CandidateModel {
                name: format!("tune-last-{unfrozen}-lr{lr}"),
                graph: fine_tune_model(&rcfg, unfrozen, 2, BuildScale::Real)?,
                hyper: Hyper { batch_size: 8, epochs: 2, optimizer: OptimizerSpec::adam(lr) },
                task: TaskKind::Classification,
            });
        }
    }
    println!("FTU workload: {} candidates (4 freezing schemes x 2 learning rates)", candidates.len());

    let workdir = std::env::temp_dir().join("nautilus-image-finetune");
    let _ = std::fs::remove_dir_all(&workdir);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        &workdir,
    )?;
    let init = session.init_report();
    println!(
        "init: {} training units, {} materialized layers, theoretical speedup {:.2}x\n",
        init.num_units, init.num_materialized, init.theoretical_speedup
    );

    // Per-candidate materializable frontier report.
    for c in session.candidates() {
        let m = c.graph.materializable();
        let mat = m.iter().filter(|&&x| x).count();
        println!("  {:24} materializable layers: {mat}/{}", c.name, c.graph.len());
    }
    println!();

    let spec = WorkloadSpec { kind: WorkloadKind::Ftu, scale: Scale::Tiny };
    let pool = spec.image_config().generate(3 * 32);
    for cycle in 0..3 {
        let batch = pool.range(cycle * 32, (cycle + 1) * 32);
        let (train, valid) = batch.split_at(24);
        let report = session.fit(CycleInput::Real { train, valid })?;
        let (name, acc) = report.best.expect("real backend reports accuracy");
        println!(
            "cycle {}: {} records, best {name} = {:.1}% infected-cell accuracy ({:.2}s)",
            report.cycle,
            report.train_records,
            acc * 100.0,
            report.cycle_secs
        );
    }
    Ok(())
}
