//! Transfer learning from a recurrent encoder on streaming sensor data.
//!
//! The paper's formalization covers DAGs; recurrent source models are
//! handled by unrolling them in time (§2.5). This example adapts a frozen
//! pre-trained RNN encoder to a new sequence-classification task — anomaly
//! detection over fixed-length sensor windows — exploring several head
//! learning rates, and shows that Nautilus materializes the unrolled
//! encoder's final hidden state and prunes the whole recurrence.
//!
//! Run with: `cargo run --release --example timeseries_rnn`

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy, SystemConfig};
use nautilus_repro::data::Dataset;
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::rnn::{sequence_classifier, RnnEncoderConfig};
use nautilus_repro::models::BuildScale;
use nautilus_repro::tensor::init::{randn, seeded_rng};
use nautilus_repro::tensor::Tensor;

const STEPS: usize = 8;
const FEATURES: usize = 8;

/// Sensor windows: an "anomaly" is a burst (large magnitude) in the final
/// readings of the window.
fn sensor_pool(n: usize) -> Dataset {
    let mut rng = seeded_rng(51);
    let mut inputs = randn([n, STEPS, FEATURES], 0.5, &mut rng);
    let mut labels = vec![0.0f32; n];
    use nautilus_util::rng::Rng;
    #[allow(clippy::needless_range_loop)]
    for r in 0..n {
        if rng.gen_bool(0.5) {
            labels[r] = 1.0;
            // Burst in the last two steps.
            for t in STEPS - 2..STEPS {
                for f in 0..FEATURES {
                    inputs.data_mut()[(r * STEPS + t) * FEATURES + f] += 2.5;
                }
            }
        }
    }
    Dataset::new(inputs, Tensor::from_vec([n], labels).unwrap()).unwrap()
}

fn main() -> Result<(), NautilusError> {
    let encoder = RnnEncoderConfig { input_dim: FEATURES, hidden: 16, steps: STEPS, seed: 3000 };
    let candidates: Vec<CandidateModel> = [0.05f32, 0.02, 0.01, 0.005]
        .iter()
        .map(|&lr| {
            Ok::<_, NautilusError>(CandidateModel {
                name: format!("rnn-head-lr{lr}"),
                graph: sequence_classifier(&encoder, 2, BuildScale::Real)?,
                hyper: Hyper { batch_size: 8, epochs: 3, optimizer: OptimizerSpec::adam(lr) },
                task: TaskKind::Classification,
            })
        })
        .collect::<Result<_, _>>()?;
    println!(
        "unrolled RNN encoder: {} steps x {} features -> {} hidden ({} graph nodes per candidate)\n",
        STEPS,
        FEATURES,
        encoder.hidden,
        candidates[0].graph.len()
    );

    let workdir = std::env::temp_dir().join("nautilus-timeseries");
    let _ = std::fs::remove_dir_all(&workdir);
    // Planner profile where loading the hidden state beats re-running the
    // recurrence.
    let config = SystemConfig::tiny().into_builder().planner_flops_per_sec(5e7).build();
    let mut session = ModelSelection::new(
        candidates,
        config,
        Strategy::Nautilus,
        BackendKind::Real,
        &workdir,
    )?;
    let init = session.init_report();
    println!(
        "optimizer: {} units, {} materialized layers (the unrolled recurrence is cut \
         at its final hidden state)",
        init.num_units, init.num_materialized
    );
    for (unit, plan) in session.units() {
        println!(
            "  unit {:?}: plan graph {} nodes (candidate graph has {}), loads {:?}",
            unit.members,
            plan.graph.len(),
            session.candidates()[unit.members[0]].graph.len(),
            plan.materialized_keys(),
        );
    }
    println!();

    let pool = sensor_pool(3 * 60);
    for cycle in 0..3 {
        let batch = pool.range(cycle * 60, (cycle + 1) * 60);
        let (train, valid) = batch.split_at(48);
        let report = session.fit(CycleInput::Real { train, valid })?;
        let (name, acc) = report.best.expect("real backend reports accuracy");
        println!(
            "cycle {}: {} windows labeled, best {name} = {:.1}% anomaly accuracy ({:.2}s)",
            report.cycle,
            report.train_records,
            acc * 100.0,
            report.cycle_secs
        );
    }
    Ok(())
}
