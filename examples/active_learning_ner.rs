//! Active learning for named-entity recognition (the paper's §1 use case).
//!
//! A data scientist labels a clinical-text-like corpus in cycles. Each
//! cycle, the *current best model* scores the unlabeled pool and an
//! uncertainty sampler picks the most informative records to label next
//! (Fig 1A); Nautilus keeps the per-cycle model selection fast (Fig 1C).
//! The example contrasts uncertainty sampling against random sampling on
//! the same budget.
//!
//! Run with: `cargo run --release --example active_learning_ner`

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy, SystemConfig};
use nautilus_repro::data::{LabelingSession, Sampler};

const CYCLES: usize = 4;
const LABELS_PER_CYCLE: usize = 40;

fn run(sampler_name: &str, pick: impl Fn(usize) -> Sampler) -> Result<Vec<f32>, NautilusError> {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr3, scale: Scale::Tiny };
    let mut candidates = spec.candidates()?;
    candidates.truncate(4);

    let workdir = std::env::temp_dir().join(format!("nautilus-al-{sampler_name}"));
    let _ = std::fs::remove_dir_all(&workdir);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        &workdir,
    )?;

    // 2 seconds/label: a realistic single-annotator rate for short records.
    let pool = spec.ner_config().generate(CYCLES * LABELS_PER_CYCLE * 2);
    let mut labeler = LabelingSession::new(pool, 2.0);
    let mut best_curve = Vec::new();
    let mut labeling_secs_total = 0.0;

    for cycle in 1..=CYCLES {
        // Score the unlabeled pool with the best model so far (after the
        // first cycle) for informativeness-based sampling.
        let scores = if cycle > 1 {
            let unlabeled = labeler.unlabeled_inputs();
            Some(session.score_unlabeled(&unlabeled.inputs)?)
        } else {
            None
        };
        let (batch, labeling_secs) =
            labeler.next_batch(LABELS_PER_CYCLE, &pick(cycle), scores.as_deref());
        labeling_secs_total += labeling_secs;
        let (train, valid) = batch.split_at(LABELS_PER_CYCLE * 4 / 5);
        let report = session.fit(CycleInput::Real { train, valid })?;
        let (name, acc) = report.best.expect("real backend reports accuracy");
        println!(
            "  [{sampler_name}] cycle {cycle}: labeled {}, best {name} = {:.1}%, selection {:.1}s + labeling {labeling_secs:.0}s",
            labeler.labeled_count(),
            acc * 100.0,
            report.cycle_secs,
        );
        best_curve.push(acc);
    }
    println!("  [{sampler_name}] total simulated labeling time: {labeling_secs_total:.0}s\n");
    Ok(best_curve)
}

fn main() -> Result<(), NautilusError> {
    println!("active-learning NER with Nautilus-accelerated model selection\n");
    let random = run("random", |c| Sampler::Random { seed: c as u64 })?;
    let uncertainty = run("uncertainty", |_| Sampler::LeastConfidence)?;
    println!("final best accuracy: random {:.1}% vs uncertainty {:.1}%",
        random.last().unwrap() * 100.0,
        uncertainty.last().unwrap() * 100.0
    );
    Ok(())
}
