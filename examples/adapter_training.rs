//! Adapter training (the paper's ATR workload, Fig 2D) with a look inside
//! the optimizer's decisions.
//!
//! Houlsby-style bottleneck adapters are inserted after the top {1, 2}
//! transformer blocks of a frozen MiniBERT. Adapters cut materializability:
//! everything *above* the lowest adapter is frozen-but-not-materializable
//! (gradients must pass through it), so the optimizer can only materialize
//! below. The example prints the chosen set `V`, the reuse-plan actions,
//! and the fusion grouping before training two cycles.
//!
//! Run with: `cargo run --release --example adapter_training`

use nautilus_repro::core::mat_opt::NodeAction;
use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy, SystemConfig};
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::bert::{adapter_model, BertConfig};
use nautilus_repro::models::BuildScale;

fn main() -> Result<(), NautilusError> {
    let spec = WorkloadSpec { kind: WorkloadKind::Atr, scale: Scale::Tiny };
    let ner = spec.ner_config();
    let bcfg = BertConfig::tiny(ner.seq_len, ner.vocab);

    let mut candidates = Vec::new();
    for &adapted in &[1usize, 2] {
        for &lr in &[5e-3f32, 2e-3] {
            candidates.push(CandidateModel {
                name: format!("adapters-last-{adapted}-lr{lr}"),
                graph: adapter_model(&bcfg, adapted, 8, ner.num_tags(), BuildScale::Real)?,
                hyper: Hyper { batch_size: 8, epochs: 2, optimizer: OptimizerSpec::adam(lr) },
                task: TaskKind::TokenTagging,
            });
        }
    }

    let workdir = std::env::temp_dir().join("nautilus-adapters");
    let _ = std::fs::remove_dir_all(&workdir);
    // A planner profile under which loading features beats recomputing the
    // tiny backbone, so the optimizer has something to decide.
    let config = SystemConfig::tiny().into_builder().planner_flops_per_sec(1e9).build();
    let mut session = ModelSelection::new(
        candidates,
        config,
        Strategy::Nautilus,
        BackendKind::Real,
        &workdir,
    )?;

    println!("== optimizer decisions ==");
    let multi = session.multi();
    for (unit, plan) in session.units() {
        let members: Vec<&str> =
            unit.members.iter().map(|&m| session.candidates()[m].name.as_str()).collect();
        println!("unit {members:?} (batch {}, est. peak mem {:.1} MiB):", unit.batch_size,
            unit.memory.total() as f64 / (1 << 20) as f64);
        for (&m, &a) in &unit.plan.actions {
            let node = multi.node(m);
            let tag = match a {
                NodeAction::Pruned => "prune ",
                NodeAction::Computed => "compute",
                NodeAction::Loaded => "load  ",
            };
            println!("    {tag} {}", node.name);
        }
        println!("    -> {} plan nodes, {} feature loads", plan.graph.len(), plan.materialized_keys().len());
    }

    println!("\n== training ==");
    let pool = ner.generate(2 * 40);
    for cycle in 0..2 {
        let batch = pool.range(cycle * 40, (cycle + 1) * 40);
        let (train, valid) = batch.split_at(32);
        let report = session.fit(CycleInput::Real { train, valid })?;
        let (name, acc) = report.best.expect("real backend reports accuracy");
        println!(
            "cycle {}: best {name} = {:.1}% token accuracy ({:.2}s)",
            report.cycle,
            acc * 100.0,
            report.cycle_secs
        );
    }
    Ok(())
}
