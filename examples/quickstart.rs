//! Quickstart: optimized DTL model selection over three labeling cycles.
//!
//! Builds the paper's FTR-2 workload at tiny (CPU-trainable) scale, runs
//! three labeling cycles with Nautilus (materialization + fusion), and
//! compares the wall-clock against Current Practice on the same data.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `NAUTILUS_TRACE=trace.json` to also collect a Chrome trace and a
//! per-span timing summary.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy, SystemConfig};
use nautilus_repro::data::{LabelingSession, Sampler};
use nautilus_repro::util::telemetry;

fn main() -> Result<(), NautilusError> {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let (per_cycle_train, per_cycle_valid) = spec.records_per_cycle();
    let cycles = spec.cycles();

    println!("workload: {} ({} candidate models, tiny scale)", spec.kind.name(), spec.grid().len());
    println!("cycles: {cycles} x ({per_cycle_train} train + {per_cycle_valid} valid records)\n");

    // A pre-generated unlabeled pool; labels are released cycle by cycle,
    // simulating the human labeler of the paper's Fig 1(A).
    let pool = spec.ner_config().generate(cycles * (per_cycle_train + per_cycle_valid));

    for strategy in [Strategy::CurrentPractice, Strategy::Nautilus] {
        let workdir = std::env::temp_dir().join(format!("nautilus-quickstart-{}", strategy.label()));
        let _ = std::fs::remove_dir_all(&workdir);

        let t0 = std::time::Instant::now();
        // Calibrate: probe the machine's actual disk bandwidth at startup
        // and plan with the measured number instead of the static default.
        let config = SystemConfig::tiny().into_builder().io_calibrate(true).build();
        let mut session = ModelSelection::new(
            spec.candidates()?,
            config,
            strategy,
            BackendKind::Real,
            &workdir,
        )?;
        let init = session.init_report();
        if let Some(cal) = session.calibration() {
            println!(
                "[{}] io calibration: seq read {:.0} MB/s, strided read {:.0} MB/s, write {:.0} MB/s",
                strategy.label(),
                cal.seq_read_bytes_per_sec / 1e6,
                cal.rand_read_bytes_per_sec / 1e6,
                cal.write_bytes_per_sec / 1e6,
            );
        }
        println!(
            "[{}] init: {:.2}s ({} units, {} materialized layers, theoretical speedup {:.2}x)",
            strategy.label(),
            init.total_secs,
            init.num_units,
            init.num_materialized,
            init.theoretical_speedup
        );

        let mut labeler = LabelingSession::new(pool.clone(), 0.0);
        for cycle in 1..=cycles {
            let (batch, _) = labeler.next_batch(
                per_cycle_train + per_cycle_valid,
                &Sampler::Random { seed: cycle as u64 },
                None,
            );
            let (train, valid) = batch.split_at(per_cycle_train);
            let report = session.fit(CycleInput::Real { train, valid })?;
            let (best_name, best_acc) = report.best.expect("real backend reports accuracy");
            println!(
                "  cycle {cycle}: {} train records, best = {best_name} ({:.1}% val acc), {:.2}s",
                report.train_records,
                best_acc * 100.0,
                report.cycle_secs
            );
        }
        println!("[{}] total wall time: {:.2}s\n", strategy.label(), t0.elapsed().as_secs_f64());
    }

    if telemetry::enabled() {
        println!("telemetry summary (both strategies):");
        print!("{}", telemetry::summary_table());
        if let Some(path) = telemetry::export().map_err(|e| {
            NautilusError::Other(format!("trace export: {e}"))
        })? {
            println!("\nChrome trace written to {}", path.display());
        }
    }
    Ok(())
}
