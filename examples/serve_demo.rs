//! Serving demo: train, export, publish, and answer live predictions.
//!
//! Runs one labeling cycle of the FTR-2 workload at tiny scale with the
//! Nautilus strategy, exports the best candidate's trained weights onto
//! its original topology, round-trips them through the on-disk
//! checkpoint format, and publishes them to a [`ModelRegistry`] behind a
//! loopback HTTP server. Concurrent clients then POST predictions that
//! are micro-batched server-side; every response is checked bit-for-bit
//! against an in-process forward pass of the same exported graph.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Set `NAUTILUS_TRACE=trace.json` to also collect serving spans,
//! counters, and latency histograms.

use nautilus_repro::core::config::SystemConfig;
use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, NautilusError, Strategy};
use nautilus_repro::dnn::checkpoint;
use nautilus_repro::dnn::exec::{forward, BatchInputs};
use nautilus_repro::serve::{http, ModelRegistry, Server};
use nautilus_repro::tensor::Tensor;
use nautilus_repro::util::telemetry;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), NautilusError> {
    let workdir = std::env::temp_dir().join("nautilus-serve-demo");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir)
        .map_err(|e| NautilusError::Other(format!("workdir: {e}")))?;

    // --- Train: one labeling cycle of FTR-2 (tiny), Nautilus strategy ---
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates()?;
    candidates.truncate(3);
    println!("training {} candidates on one {} cycle (tiny scale)...", candidates.len(), spec.kind.name());

    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir.join("train"),
    )?;
    let pool = spec.ner_config().generate(30);
    let (train, valid) = pool.split_at(24);
    let report = session.fit(CycleInput::Real { train, valid })?;
    let (best_name, best_acc) = report.best.expect("real backend reports accuracy");
    println!("best candidate: {best_name} ({:.1}% val acc, {:.2}s)", best_acc * 100.0, report.cycle_secs);

    // --- Export + checkpoint round-trip + publish ---
    let (ci, exported) = session.export_best()?;
    let ckpt = workdir.join("best.ckpt");
    checkpoint::save(&exported, &ckpt).map_err(|e| NautilusError::Other(e.to_string()))?;
    let registry = Arc::new(ModelRegistry::new());
    let version = registry
        .publish_from_checkpoint("default", &ckpt)
        .map_err(|e| NautilusError::Other(e.to_string()))?;
    println!("exported candidate #{ci}, checkpointed to {}, published as v{version}", ckpt.display());

    // --- Serve over loopback with micro-batching + observability ---
    let sys = SystemConfig::builder()
        .serve_max_batch(8)
        .serve_max_delay_us(2_000)
        .serve_queue_limit(64)
        .serve_handler_threads(4)
        .obs_watchdog_tick_ms(20)
        .build();
    let cfg = sys.serving;
    let server = Server::start_with(Arc::clone(&registry), &cfg, &sys.observability, 0)
        .map_err(|e| NautilusError::Other(format!("server: {e}")))?;
    let addr = server.addr().to_string();
    println!("serving on http://{addr} (max_batch {}, max_delay {}us)", cfg.max_batch, cfg.max_delay_us);

    let (status, body) = http::request(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .map_err(|e| NautilusError::Other(format!("healthz: {e}")))?;
    println!("GET /healthz -> {status} {}", String::from_utf8_lossy(&body).trim());
    let (status, body) = http::request(&addr, "GET", "/model", None, Duration::from_secs(5))
        .map_err(|e| NautilusError::Other(format!("model: {e}")))?;
    println!("GET /model   -> {status} {}", String::from_utf8_lossy(&body).trim());

    // --- Concurrent clients; verify every answer bit-for-bit ---
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 4;
    let art = registry.get("default").expect("model published");
    let record_elems = art.record_elems;

    let expect = |record: &[f32]| -> Vec<f32> {
        let inp = exported.input_ids()[0];
        let t = Tensor::from_vec(exported.shape(inp).with_batch(1), record.to_vec()).unwrap();
        let mut bi = BatchInputs::new();
        bi.insert(inp, t);
        forward(&exported, &bi, false).unwrap().output(exported.outputs()[0]).data().to_vec()
    };

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Vec<(Vec<f32>, u16, Vec<u8>)> {
                (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        let record: Vec<f32> = (0..record_elems)
                            .map(|i| ((c * 31 + r * 7 + i) % 40) as f32)
                            .collect();
                        let body = format!(
                            "{{\"inputs\": [{}]}}",
                            record.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
                        );
                        let (status, raw) = http::request(
                            &addr,
                            "POST",
                            "/predict",
                            Some(body.as_bytes()),
                            Duration::from_secs(10),
                        )
                        .expect("request completes");
                        (record, status, raw)
                    })
                    .collect()
            })
        })
        .collect();

    let mut answered = 0usize;
    for h in handles {
        for (record, status, raw) in h.join().expect("client thread") {
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
            let out: nautilus_repro::util::json::Json =
                nautilus_repro::util::json::from_slice(&raw)
                    .map_err(|e| NautilusError::Other(format!("response json: {e}")))?;
            let values: Vec<f32> = out
                .get("outputs")
                .and_then(|v| v.as_arr())
                .expect("outputs array")
                .iter()
                .map(|v| v.as_f64().unwrap() as f32)
                .collect();
            assert_eq!(values, expect(&record), "served output differs from in-process forward");
            answered += 1;
        }
    }
    println!(
        "{answered}/{} concurrent predictions answered, all bit-identical to the in-process forward",
        CLIENTS * REQUESTS_PER_CLIENT
    );

    let (_, body) = http::request(&addr, "GET", "/stats", None, Duration::from_secs(5))
        .map_err(|e| NautilusError::Other(format!("stats: {e}")))?;
    println!("GET /stats   -> {}", String::from_utf8_lossy(&body).trim());

    // --- Scrape the Prometheus exposition; optionally keep it for the
    // verification harness (`NAUTILUS_RESULTS` set by scripts/verify.sh).
    let (status, metrics) = http::request(&addr, "GET", "/metrics", None, Duration::from_secs(5))
        .map_err(|e| NautilusError::Other(format!("metrics: {e}")))?;
    let metrics = String::from_utf8_lossy(&metrics).into_owned();
    println!(
        "GET /metrics -> {status} ({} bytes, {} series)",
        metrics.len(),
        metrics.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count()
    );
    if let Ok(dir) = std::env::var("NAUTILUS_RESULTS") {
        let path = std::path::Path::new(&dir).join("METRICS_serve.txt");
        std::fs::write(&path, &metrics)
            .map_err(|e| NautilusError::Other(format!("metrics dump: {e}")))?;
        println!("exposition written to {}", path.display());
    }

    let final_stats = server.shutdown();
    println!(
        "drained: {} requests, {} predictions, {} shed, {} client errors, {} server errors",
        final_stats.requests,
        final_stats.predictions,
        final_stats.shed,
        final_stats.client_errors,
        final_stats.server_errors
    );
    assert_eq!(final_stats.server_errors, 0);

    if telemetry::enabled() {
        println!("\ntelemetry summary:");
        print!("{}", telemetry::summary_table());
        if let Some(path) = telemetry::export()
            .map_err(|e| NautilusError::Other(format!("trace export: {e}")))?
        {
            println!("\nChrome trace written to {}", path.display());
        }
    }
    let _ = std::fs::remove_dir_all(&workdir);
    Ok(())
}
