#!/usr/bin/env bash
# Hermetic verification: the workspace must build and test fully offline,
# and no crate may declare a registry (non-path) dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

# Guard: any of the former external dependencies reappearing in a manifest
# fails fast, before the (slower) build does.
banned='^(rand|serde|serde_json|proptest|criterion|crossbeam|parking_lot|bytes)[[:space:]]*='
if grep -rEn "$banned" --include=Cargo.toml .; then
    echo "error: banned external dependency declared above" >&2
    exit 1
fi

# Guard: every dependency in every manifest must be a path dependency
# (version-only or registry deps would require network access).
bad=0
while IFS= read -r manifest; do
    if python3 - "$manifest" <<'EOF'
import re, sys

path = sys.argv[1]
section = None
offenders = []
for line in open(path):
    stripped = line.strip()
    m = re.match(r'^\[(.+)\]$', stripped)
    if m:
        section = m.group(1)
        continue
    if section is None or not (
        section.endswith('dependencies') or section == 'workspace.dependencies'
    ):
        continue
    m = re.match(r'^([A-Za-z0-9_-]+)\s*=\s*(.+)$', stripped)
    if not m:
        continue
    name, spec = m.groups()
    if 'path' not in spec and 'workspace' not in spec:
        offenders.append(f'{path}: [{section}] {name} = {spec}')
if offenders:
    print('\n'.join(offenders))
    sys.exit(1)
EOF
    then :; else bad=1; fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "error: non-path dependencies declared above" >&2
    exit 1
fi

cargo build --release --offline
cargo test -q --offline
echo "verify: OK"
