#!/usr/bin/env bash
# Hermetic verification: the workspace must build and test fully offline,
# and no crate may declare a registry (non-path) dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

# Guard: any of the former external dependencies reappearing in a manifest
# fails fast, before the (slower) build does.
banned='^(rand|serde|serde_json|proptest|criterion|crossbeam|parking_lot|bytes)[[:space:]]*='
if grep -rEn "$banned" --include=Cargo.toml .; then
    echo "error: banned external dependency declared above" >&2
    exit 1
fi

# Guard: every dependency in every manifest must be a path dependency
# (version-only or registry deps would require network access).
bad=0
while IFS= read -r manifest; do
    if python3 - "$manifest" <<'EOF'
import re, sys

path = sys.argv[1]
section = None
offenders = []
for line in open(path):
    stripped = line.strip()
    m = re.match(r'^\[(.+)\]$', stripped)
    if m:
        section = m.group(1)
        continue
    if section is None or not (
        section.endswith('dependencies') or section == 'workspace.dependencies'
    ):
        continue
    m = re.match(r'^([A-Za-z0-9_-]+)\s*=\s*(.+)$', stripped)
    if not m:
        continue
    name, spec = m.groups()
    if 'path' not in spec and 'workspace' not in spec:
        offenders.append(f'{path}: [{section}] {name} = {spec}')
if offenders:
    print('\n'.join(offenders))
    sys.exit(1)
EOF
    then :; else bad=1; fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "error: non-path dependencies declared above" >&2
    exit 1
fi

cargo build --release --offline
cargo test -q --offline

# Kernel-dispatch coverage: the GEMM property suite must pass under both
# kernel selections. `safe` re-proves the pinned deterministic path;
# `fma` exercises the AVX2/FMA microkernel against the same oracles (the
# differential test inside the suite compares the two directly). On
# hardware without AVX2+FMA the fma run is skipped — dispatch sanitizes
# the request down to `safe` there, so it would only repeat the first run.
NAUTILUS_GEMM_KERNEL=safe \
    cargo test -q --offline -p nautilus-tensor --test gemm_properties
if grep -qm1 avx2 /proc/cpuinfo && grep -qm1 fma /proc/cpuinfo; then
    NAUTILUS_GEMM_KERNEL=fma \
        cargo test -q --offline -p nautilus-tensor --test gemm_properties
else
    echo "verify: skipping NAUTILUS_GEMM_KERNEL=fma property run (no AVX2+FMA)"
fi

# Pool perf baseline: quick-mode micro-bench of sequential vs pooled kernels
# at sizes past the parallel-dispatch threshold. Emits BENCH_pool.json and
# fails if the pooled path regresses past a noise allowance — on a 1-core
# runner the pool degrades to inline execution, so pooled must track
# sequential; on multi-core it must beat it.
# NAUTILUS_RESULTS must be absolute: cargo runs bench binaries from the
# package directory, not the workspace root.
NAUTILUS_BENCH_SAMPLES=9 NAUTILUS_RESULTS="$PWD/results" \
    cargo bench --offline -p nautilus-bench --bench substrates -- gemm conv pool telemetry serve multitenant prefetch int8
python3 - results/bench-substrates.json results/BENCH_pool.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

# Pooled may not be slower than sequential beyond measurement noise.
# (1-core runners execute both inline; real speedups show up only with
# more workers, so the gate is a no-regression bound, not a >=2x demand.)
# The check compares minimum samples — the noise-robust statistic for
# A/B timing on shared machines — while the emitted JSON records medians.
GRACE = 1.25
out, failed = {}, False
for bench, seq_id, pool_id in [
    ("matmul/128x256x256", "pool/matmul_seq/128x256x256", "pool/matmul_pooled/128x256x256"),
    ("conv2d/8x16x32x32", "pool/conv2d_seq/8x16x32x32", "pool/conv2d_pooled/8x16x32x32"),
]:
    seq, pooled = results[seq_id], results[pool_id]
    seq_min, pool_min = min(seq["samples_ns"]), min(pooled["samples_ns"])
    speedup = seq["median_ns"] / pooled["median_ns"] if pooled["median_ns"] else 0.0
    out[bench] = {
        "sequential_ns": seq["median_ns"],
        "pooled_ns": pooled["median_ns"],
        "sequential_min_ns": seq_min,
        "pooled_min_ns": pool_min,
        "speedup": round(speedup, 3),
    }
    status = "ok"
    if pool_min > seq_min * GRACE:
        status, failed = "REGRESSION", True
    print(f"pool gate: {bench}: seq {seq['median_ns']} ns, pooled {pooled['median_ns']} ns "
          f"(min {seq_min} vs {pool_min}), speedup {speedup:.2f}x [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"pool gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Prefetch pipeline gate: epoch scans through the double-buffered
# prefetcher may not regress against synchronous store reads. On a 1-core
# runner the overlap win is small (I/O threads contend with compute), so
# this is a no-regression bound with the same grace as the pool gate; on
# multi-core the prefetched path should win outright. On a true 1-core box
# the I/O threads steal the only core, so the bound is widened there —
# the multicore bound stays strict.
python3 - results/bench-substrates.json results/BENCH_prefetch.json <<'EOF'
import json, os, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

GRACE = 1.25 if (os.cpu_count() or 1) > 1 else 1.6
sync = results["prefetch/epoch_scan_sync"]
pre = results["prefetch/epoch_scan_prefetched"]
sync_min, pre_min = min(sync["samples_ns"]), min(pre["samples_ns"])
# Minimum samples: the noise-robust statistic for A/B timing; the
# emitted JSON records medians alongside.
speedup = sync_min / pre_min if pre_min else 0.0
out = {
    "sync_ns": sync["median_ns"],
    "prefetched_ns": pre["median_ns"],
    "sync_min_ns": sync_min,
    "prefetched_min_ns": pre_min,
    "speedup": round(speedup, 3),
}
failed = pre_min > sync_min * GRACE
status = "REGRESSION" if failed else "ok"
print(f"prefetch gate: sync {sync['median_ns']} ns, prefetched "
      f"{pre['median_ns']} ns (min {sync_min} vs {pre_min}), "
      f"speedup {speedup:.2f}x [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"prefetch gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# GEMM kernel-quality gate: the cache-blocked packed kernel must beat the
# naive triple loop by >= 1.5x at 256 and 512 (both sides single-task, so
# the ratio is pure kernel quality, not pool parallelism). 64 is recorded
# for the report only — below the dispatch threshold the naive loop wins
# on startup cost, which is exactly why matmul_ex keeps it for tiny shapes.
# Conv direct-vs-im2col numbers ride along as information.
python3 - results/bench-substrates.json results/BENCH_gemm.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

REQUIRED = 1.5
out, failed = {}, False
for n, gated in [(64, False), (256, True), (512, True)]:
    naive, blocked = results[f"gemm/naive/{n}"], results[f"gemm/blocked/{n}"]
    naive_min, blocked_min = min(naive["samples_ns"]), min(blocked["samples_ns"])
    # Minimum samples: the noise-robust statistic for A/B timing; the
    # emitted JSON records medians alongside.
    speedup = naive_min / blocked_min if blocked_min else 0.0
    out[f"gemm/{n}"] = {
        "naive_ns": naive["median_ns"],
        "blocked_ns": blocked["median_ns"],
        "naive_min_ns": naive_min,
        "blocked_min_ns": blocked_min,
        "speedup": round(speedup, 3),
        "gated": gated,
    }
    status = "ok" if not gated else ("ok" if speedup >= REQUIRED else "TOO SLOW")
    if gated and speedup < REQUIRED:
        failed = True
    print(f"gemm gate: n={n}: naive {naive['median_ns']} ns, blocked "
          f"{blocked['median_ns']} ns, speedup {speedup:.2f}x "
          f"(required {REQUIRED if gated else '-'}) [{status}]")
for shape in ("4x8x16x16", "8x16x32x32"):
    direct, lowered = results[f"conv/direct/{shape}"], results[f"conv/im2col/{shape}"]
    speedup = min(direct["samples_ns"]) / min(lowered["samples_ns"])
    out[f"conv/{shape}"] = {
        "direct_ns": direct["median_ns"],
        "im2col_ns": lowered["median_ns"],
        "speedup": round(speedup, 3),
        "gated": False,
    }
    print(f"gemm gate: conv {shape}: direct {direct['median_ns']} ns, "
          f"im2col {lowered['median_ns']} ns, speedup {speedup:.2f}x [info]")
json.dump(out, open(dst, "w"), indent=2)
print(f"gemm gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# FMA microkernel gate: on AVX2+FMA hardware the explicit 6x16 FMA tile
# must beat the portable blocked kernel by >= 1.3x at 512^3 (both sides
# single-task and packed, so the ratio is microkernel quality alone).
# The bench registers the fma side only when the CPU supports it, so the
# gate degrades to an informational skip on other hardware rather than
# failing the run.
python3 - results/bench-substrates.json results/BENCH_gemm_fma.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

if "gemm_fma/fma/512" not in results:
    out = {"skipped": "no AVX2+FMA support detected by the bench harness"}
    json.dump(out, open(dst, "w"), indent=2)
    print("gemm_fma gate: fma kernel not benchable on this host [skipped]")
    sys.exit(0)

REQUIRED = 1.3
safe, fma = results["gemm_fma/safe/512"], results["gemm_fma/fma/512"]
safe_min, fma_min = min(safe["samples_ns"]), min(fma["samples_ns"])
# Minimum samples: the noise-robust statistic for A/B timing; the
# emitted JSON records medians alongside.
speedup = safe_min / fma_min if fma_min else 0.0
failed = speedup < REQUIRED
status = "ok" if not failed else "TOO SLOW"
out = {
    "safe_ns": safe["median_ns"],
    "fma_ns": fma["median_ns"],
    "safe_min_ns": safe_min,
    "fma_min_ns": fma_min,
    "speedup": round(speedup, 3),
    "required": REQUIRED,
}
print(f"gemm_fma gate: n=512: safe {safe['median_ns']} ns, fma "
      f"{fma['median_ns']} ns (min {safe_min} vs {fma_min}), speedup "
      f"{speedup:.2f}x (required {REQUIRED}) [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"gemm_fma gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Int8 serving gate: a batch-8 forward through the row-quantized int8
# path must beat the f32 forward on the same model by >= 1.2x. The win
# is integer dot products (madd on AVX2) plus halved weight traffic; it
# does not depend on the pool, so it holds on a 1-core runner.
python3 - results/bench-substrates.json results/BENCH_int8.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

REQUIRED = 1.2
f32, i8 = results["int8/f32_forward/8"], results["int8/int8_forward/8"]
f32_min, i8_min = min(f32["samples_ns"]), min(i8["samples_ns"])
# Minimum samples: the noise-robust statistic for A/B timing; the
# emitted JSON records medians alongside.
speedup = f32_min / i8_min if i8_min else 0.0
failed = speedup < REQUIRED
status = "ok" if not failed else "TOO SLOW"
out = {
    "f32_ns": f32["median_ns"],
    "int8_ns": i8["median_ns"],
    "f32_min_ns": f32_min,
    "int8_min_ns": i8_min,
    "batch_size": 8,
    "speedup": round(speedup, 3),
    "required": REQUIRED,
}
print(f"int8 gate: batch-8 f32 {f32['median_ns']} ns, int8 "
      f"{i8['median_ns']} ns (min {f32_min} vs {i8_min}), speedup "
      f"{speedup:.2f}x (required {REQUIRED}) [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"int8 gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Telemetry disabled-path gate: a span site that is off must cost one
# relaxed atomic load — within noise of the identical untraced kernel.
python3 - results/bench-substrates.json results/BENCH_telemetry.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

GRACE = 1.25
untraced = results["telemetry/untraced/matmul32"]
disabled = results["telemetry/span_disabled/matmul32"]
enabled = results["telemetry/span_enabled/matmul32"]
un_min, dis_min = min(untraced["samples_ns"]), min(disabled["samples_ns"])
out = {
    "untraced_ns": untraced["median_ns"],
    "span_disabled_ns": disabled["median_ns"],
    "span_enabled_ns": enabled["median_ns"],
    "untraced_min_ns": un_min,
    "span_disabled_min_ns": dis_min,
    "disabled_overhead": round(dis_min / un_min if un_min else 0.0, 3),
}
failed = dis_min > un_min * GRACE
status = "REGRESSION" if failed else "ok"
print(f"telemetry gate: untraced {untraced['median_ns']} ns, disabled-span "
      f"{disabled['median_ns']} ns, enabled-span {enabled['median_ns']} ns "
      f"(min {un_min} vs {dis_min}) [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"telemetry gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Serving micro-batch gate: one batch-8 forward must beat 8 sequential
# single-record forwards by >= 2x on the serving-head model. The win is
# per-forward overhead amortization (graph walk, allocation, dispatch),
# not parallelism, so it holds on a 1-core runner — and it is the whole
# reason the server's micro-batcher exists.
python3 - results/bench-substrates.json results/BENCH_serve.json <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
results = {r["id"]: r for r in json.load(open(src))}

REQUIRED = 2.0
un, ba = results["serve/unbatched/8"], results["serve/batched/8"]
un_min, ba_min = min(un["samples_ns"]), min(ba["samples_ns"])
# Minimum samples: the noise-robust statistic for A/B timing; the
# emitted JSON records medians alongside.
speedup = un_min / ba_min if ba_min else 0.0
out = {
    "unbatched_ns": un["median_ns"],
    "batched_ns": ba["median_ns"],
    "unbatched_min_ns": un_min,
    "batched_min_ns": ba_min,
    "batch_size": 8,
    "speedup": round(speedup, 3),
    "required": REQUIRED,
}
failed = speedup < REQUIRED
status = "ok" if not failed else "TOO SLOW"
print(f"serve gate: 8x unbatched {un['median_ns']} ns, batched/8 "
      f"{ba['median_ns']} ns (min {un_min} vs {ba_min}), speedup "
      f"{speedup:.2f}x (required {REQUIRED}) [{status}]")
json.dump(out, open(dst, "w"), indent=2)
print(f"serve gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Multi-tenant serving gate: (a) 16 adapter variants of one frozen base
# must serve from a deduplicated footprint at least 5x smaller than 16
# standalone models (logical/stored bytes, from the demo's registry
# accounting, which also asserts single-base Arc residency, bit-identical
# tenant routing, and evict/fault-in round-trips); (b) the shared-trunk
# batch — one frozen-trunk forward over the union batch plus per-tenant
# suffixes — must beat 16 per-tenant solo forwards. Batch-invariant
# dispatch pins kernels per-record for bit-identity, so the win is
# per-forward overhead amortization, not kernel re-selection; the gate is
# correspondingly modest.
NAUTILUS_RESULTS="$PWD/results" cargo run --release --offline --example multitenant_demo
python3 - results/bench-substrates.json results/multitenant_demo.json results/BENCH_multitenant.json <<'EOF'
import json, sys

bench_src, demo_src, dst = sys.argv[1], sys.argv[2], sys.argv[3]
results = {r["id"]: r for r in json.load(open(bench_src))}
demo = json.load(open(demo_src))

RATIO_REQUIRED = 5.0
SPEEDUP_REQUIRED = 1.1
failed = False

ratio = demo["dedup_ratio"]
if demo["variants"] != 16 or demo["bases"] != 1:
    print(f"multitenant gate: unexpected demo shape: {demo}")
    failed = True
status = "ok" if ratio >= RATIO_REQUIRED else "TOO LOW"
if ratio < RATIO_REQUIRED:
    failed = True
print(f"multitenant gate: {demo['variants']} variants / {demo['bases']} base: "
      f"{demo['bytes_logical']} logical B from {demo['bytes_stored']} stored B, "
      f"dedup {ratio:.2f}x (required {RATIO_REQUIRED}) [{status}]")

solo, shared = results["multitenant/solo/16"], results["multitenant/shared_trunk/16"]
solo_min, shared_min = min(solo["samples_ns"]), min(shared["samples_ns"])
# Minimum samples: the noise-robust statistic for A/B timing; the
# emitted JSON records medians alongside.
speedup = solo_min / shared_min if shared_min else 0.0
status = "ok" if speedup >= SPEEDUP_REQUIRED else "TOO SLOW"
if speedup < SPEEDUP_REQUIRED:
    failed = True
print(f"multitenant gate: 16x solo {solo['median_ns']} ns, shared-trunk "
      f"{shared['median_ns']} ns (min {solo_min} vs {shared_min}), speedup "
      f"{speedup:.2f}x (required {SPEEDUP_REQUIRED}) [{status}]")

out = {
    "variants": demo["variants"],
    "bases": demo["bases"],
    "bytes_logical": demo["bytes_logical"],
    "bytes_stored": demo["bytes_stored"],
    "dedup_ratio": round(ratio, 3),
    "dedup_required": RATIO_REQUIRED,
    "evictions": demo["evictions"],
    "fault_ins": demo["fault_ins"],
    "solo_ns": solo["median_ns"],
    "shared_trunk_ns": shared["median_ns"],
    "solo_min_ns": solo_min,
    "shared_trunk_min_ns": shared_min,
    "trunk_sharing_speedup": round(speedup, 3),
    "speedup_required": SPEEDUP_REQUIRED,
}
json.dump(out, open(dst, "w"), indent=2)
print(f"multitenant gate: wrote {dst}")
sys.exit(1 if failed else 0)
EOF

# Serving smoke test: train -> export -> checkpoint -> publish -> answer
# concurrent loopback predictions bit-identically, then drain cleanly.
# The example asserts bit-identity and zero server errors itself; the
# trace must carry serving spans, counters, and latency histograms.
NAUTILUS_TRACE="$PWD/results/TRACE_serve.json" \
NAUTILUS_RESULTS="$PWD/results" \
    cargo run --release --offline --example serve_demo
python3 - results/TRACE_serve.json <<'EOF'
import json, sys

path = sys.argv[1]
trace = json.load(open(path))
events = trace["traceEvents"]
spans = {e["name"] for e in events if e.get("ph") == "X"}
for want in ("serve.request", "serve.batch"):
    assert want in spans, f"missing serving span {want!r}: {sorted(spans)}"
counters = {e["name"]: e for e in events if e.get("ph") == "C"}
for want in ("serve.requests", "serve.batches", "serve.batch_size"):
    assert want in counters, f"missing counter {want!r}: {sorted(counters)}"
hists = {
    name: e["args"]
    for name, e in counters.items()
    if {"count", "p50", "p95", "p99", "max"} <= set(e["args"])
}
for want in ("serve.request_us", "serve.batch_us"):
    assert want in hists, f"missing histogram {want!r}: {sorted(hists)}"
    assert hists[want]["count"] > 0, f"histogram {want!r} recorded nothing"
    assert hists[want]["p50"] <= hists[want]["p99"] <= hists[want]["max"]
batched = counters["serve.batch_size"]["args"]["value"]
batches = counters["serve.batches"]["args"]["value"]
assert batches > 0 and batched >= batches, "batcher never fused work"
print(f"serve trace gate: spans {sorted(s for s in spans if s.startswith('serve'))}, "
      f"{batched} records in {batches} batches, histograms ok")
EOF

# Observability gate: the Prometheus exposition scraped from the serve
# demo's /metrics endpoint must be well-formed text format — unique
# `# TYPE` lines, monotone cumulative histogram buckets whose `+Inf`
# sample equals `_count`, and the expected serving families including
# the watchdog-maintained queue-depth gauges and per-endpoint labeled
# latency series.
python3 - results/METRICS_serve.txt results/METRICS_serve.json <<'EOF'
import json, re, sys

src, dst = sys.argv[1], sys.argv[2]
text = open(src).read()
assert text.strip(), "empty /metrics exposition"

NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
types = {}
for line in text.splitlines():
    if line.startswith("# TYPE "):
        name, kind = line[len("# TYPE "):].split(" ")
        assert NAME.match(name), f"bad metric name {name!r}"
        assert kind in ("counter", "gauge", "histogram"), f"bad kind {kind!r}"
        assert name not in types, f"duplicate # TYPE for {name}"
        types[name] = kind

series = []
for line in text.splitlines():
    if not line or line.startswith("#"):
        continue
    head, value = line.rsplit(" ", 1)
    value = float(value)
    if "{" in head:
        name, rest = head.split("{", 1)
        labels = dict(
            kv.split("=", 1) for kv in rest.rstrip("}").split(",") if kv
        )
        labels = {k: v.strip('"') for k, v in labels.items()}
    else:
        name, labels = head, {}
    assert NAME.match(name), f"bad sample name {name!r}"
    series.append((name, labels, value))

by_name = {}
for name, labels, value in series:
    by_name.setdefault(name, []).append((labels, value))

# Cumulative bucket checks per (family, label-set-minus-le).
buckets = {}
for name, labels, value in series:
    if name.endswith("_bucket"):
        base = name[: -len("_bucket")]
        key = (base, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
        buckets.setdefault(key, []).append((labels["le"], value))
assert buckets, "exposition has no histogram buckets"
for (base, key), rows in buckets.items():
    vals = [v for _, v in rows]
    assert vals == sorted(vals), f"non-cumulative buckets for {base} {key}"
    assert rows[-1][0] == "+Inf", f"last bucket of {base} {key} must be +Inf"
    counts = [
        v for labels, v in by_name.get(f"{base}_count", [])
        if tuple(sorted(labels.items())) == key
    ]
    assert counts and counts[0] == rows[-1][1], \
        f"+Inf bucket != _count for {base} {key}"

for want, kind in (
    ("serve_requests", "counter"),
    ("serve_request_us", "histogram"),
    ("serve_conn_queue_depth", "gauge"),
    ("serve_batch_queue_depth", "gauge"),
):
    assert types.get(want) == kind, \
        f"missing {kind} {want!r} in exposition: {sorted(types)}"
labeled = [
    labels for labels, _ in by_name.get("serve_request_us_count", [])
    if labels.get("endpoint")
]
assert labeled, "no per-endpoint serve_request_us series"

out = {
    "families": len(types),
    "series": len(series),
    "histogram_series": len(buckets),
    "labeled_request_series": len(labeled),
    "counters": sum(1 for k in types.values() if k == "counter"),
    "gauges": sum(1 for k in types.values() if k == "gauge"),
    "histograms": sum(1 for k in types.values() if k == "histogram"),
}
json.dump(out, open(dst, "w"), indent=2)
print(f"metrics gate: {out['families']} families ({out['counters']} counters, "
      f"{out['gauges']} gauges, {out['histograms']} histograms), "
      f"{out['series']} series, buckets cumulative, +Inf == _count [ok]")
EOF

# End-to-end trace artifact: the quickstart example run under
# NAUTILUS_TRACE must produce a valid Chrome trace covering every
# instrumented subsystem.
NAUTILUS_TRACE="$PWD/results/TRACE_quickstart.json" \
    cargo run --release --offline --example quickstart
python3 - results/TRACE_quickstart.json <<'EOF'
import json, sys

path = sys.argv[1]
trace = json.load(open(path))
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert spans, "trace has no spans"
for e in spans:
    assert e["ts"] >= 0 and e["dur"] >= 0, f"negative time in {e['name']}"
cats = {e["cat"] for e in spans}
for want in ("core", "store", "dnn", "milp", "pool"):
    assert want in cats, f"no spans from subsystem {want!r}: {sorted(cats)}"
for want in ("flops", "disk_read_bytes", "cached_read_bytes", "pool.steals"):
    assert want in counters, f"missing counter {want!r}: {sorted(counters)}"

# Asynchronous I/O pipeline: the quickstart's Nautilus run streams
# materialized features through the prefetcher, so readahead must have
# landed at least once, and the MILP must have planned with the measured
# disk bandwidth (the example enables calibration), not the 500 MB/s
# static default.
counter_vals = {}
for e in events:
    if e.get("ph") == "C" and "value" in e.get("args", {}):
        counter_vals[e["name"]] = max(counter_vals.get(e["name"], 0), e["args"]["value"])
hits = counter_vals.get("prefetch.hits", 0)
assert hits > 0, f"prefetcher never got ahead of the trainer: {counter_vals}"
disk_bps = counter_vals.get("planner.disk_bytes_per_sec", 0)
assert disk_bps > 0, "MILP ran without recording its disk constant"
assert disk_bps != 500_000_000, "planner used the static default, not the probe"

# Training must no longer block on store reads: chunk read/decode spans
# live on the I/O threads, so no store.chunk_read may be time-contained
# in a train.epoch or train.step span on the same tid.
by_tid = {}
for e in spans:
    by_tid.setdefault(e["tid"], []).append(e)
violations = []
for tid, evs in by_tid.items():
    trains = [e for e in evs if e["name"] in ("train.epoch", "train.step")]
    reads = [e for e in evs if e["name"] == "store.chunk_read"]
    for r in reads:
        for t in trains:
            if t["ts"] <= r["ts"] and r["ts"] + r["dur"] <= t["ts"] + t["dur"]:
                violations.append((tid, t["name"]))
assert not violations, f"blocking chunk reads inside training spans: {violations[:5]}"
print(f"trace gate: {len(spans)} spans across {sorted(cats)}, "
      f"{len(counters)} counters, {hits} prefetch hits, "
      f"planner disk {disk_bps/1e6:.0f} MB/s [ok]")
EOF

# Distributed execution gate: multi-process loopback integration. The
# loopback tests spawn real worker subprocesses and assert the distributed
# selection output is bit-identical to a single box (including a
# worker-kill recovery case); the demo re-proves both from the shipped
# binary and emits the shard-throughput/speedup bench artifact.
cargo test -q --offline -p nautilus-dist --test loopback
NAUTILUS_RESULTS="$PWD/results" \
    cargo run --release --offline -p nautilus-dist --bin nautilus-dist -- demo
python3 - results/BENCH_dist.json <<'EOF'
import json, sys

path = sys.argv[1]
out = json.load(open(path))
assert out["bit_identical"] is True, "distributed selection diverged from single-box"
assert out["workers"] == 2 and out["units"] >= 2, f"unexpected shape: {out}"
assert out["kill_recovery_retries"] >= 1, "worker-kill recovery never retried a lease"
assert out["shard_throughput_per_sec"] > 0
assert out["dist_1worker_secs"] > 0 and out["dist_2worker_secs"] > 0
print(f"dist gate: {out['units']} units on 2 workers, bit-identical, "
      f"{out['shard_throughput_per_sec']:.2f} shards/s, "
      f"2-vs-1-worker speedup {out['speedup_2_over_1']:.2f}x, "
      f"{out['kill_recovery_retries']} recovery retries [ok]")
EOF

echo "verify: OK"
