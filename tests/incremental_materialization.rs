//! Cross-crate integration: incremental feature materialization across
//! labeling cycles produces the same features as materializing the full
//! snapshot at once (paper §4.2.3), and plans always respect budgets.

use nautilus_repro::core::backend::{Backend, BackendKind};
use nautilus_repro::core::materializer::Materializer;
use nautilus_repro::core::multimodel::{MNodeId, MultiModelGraph};
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::SystemConfig;
use nautilus_repro::data::NerDatasetConfig;
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
use nautilus_repro::models::BuildScale;
use nautilus_repro::store::{SharedIoStats, TensorStore};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-it-inc-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn candidate() -> CandidateModel {
    let cfg = BertConfig::tiny(12, 60);
    CandidateModel {
        name: "ftr".into(),
        graph: feature_transfer_model(&cfg, FeatureStrategy::SumLast4, 9, BuildScale::Real)
            .unwrap(),
        hyper: Hyper { batch_size: 8, epochs: 1, optimizer: OptimizerSpec::sgd(0.01) },
        task: TaskKind::TokenTagging,
    }
}

#[test]
fn chunked_materialization_equals_one_shot() {
    let cands = vec![candidate()];
    let multi = MultiModelGraph::build(&cands);
    // V = the sum-last-4 node.
    let v: BTreeSet<MNodeId> = (0..multi.nodes.len())
        .map(MNodeId)
        .filter(|&m| multi.node(m).name.contains("sum-last-4"))
        .collect();
    assert_eq!(v.len(), 1);
    let key = multi.node(*v.iter().next().unwrap()).key.clone();

    let data = NerDatasetConfig { vocab: 60, seq_len: 12, ..Default::default() }.generate(30);
    let cfg = SystemConfig::tiny();

    // Incremental: three chunks of 10.
    let io = SharedIoStats::new();
    let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io.clone());
    let mut inc =
        Materializer::new(TensorStore::open(workdir("chunks"), io.clone()).unwrap(), 64 << 20);
    inc.install_v(&multi, &cands, v.clone(), &mut backend).unwrap();
    for i in 0..3 {
        let chunk = data.range(i * 10, (i + 1) * 10);
        inc.materialize_batch(&multi, "train", Some(&chunk), 10, &mut backend).unwrap();
    }

    // One shot: all 30 at once.
    let io2 = SharedIoStats::new();
    let mut backend2 = Backend::new(BackendKind::Real, cfg.hardware, io2.clone());
    let mut oneshot =
        Materializer::new(TensorStore::open(workdir("oneshot"), io2).unwrap(), 64 << 20);
    oneshot.install_v(&multi, &cands, v, &mut backend2).unwrap();
    oneshot.materialize_batch(&multi, "train", Some(&data), 30, &mut backend2).unwrap();

    let (a, _) = inc.store.read_all(&format!("{key}:train")).unwrap();
    let (b, _) = oneshot.store.read_all(&format!("{key}:train")).unwrap();
    assert_eq!(a, b, "incremental features must equal one-shot features bitwise");
}

#[test]
fn fused_plans_respect_memory_budget() {
    use nautilus_repro::core::fusion::fuse_models;
    let cands: Vec<CandidateModel> = (0..4)
        .map(|i| {
            let mut c = candidate();
            c.name = format!("ftr-{i}");
            c.hyper.optimizer = OptimizerSpec::sgd(0.01 + i as f32 * 0.01);
            c
        })
        .collect();
    let multi = MultiModelGraph::build(&cands);
    for budget_mb in [1u64, 4, 16, 64, 256] {
        let cfg = SystemConfig::tiny()
            .into_builder()
            .memory_budget_bytes(budget_mb << 20)
            .workspace_bytes(0)
            .build();
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true);
        let covered: usize = units.iter().map(|u| u.members.len()).sum();
        assert_eq!(covered, 4, "all models trained at budget {budget_mb} MiB");
        for u in &units {
            if u.members.len() > 1 {
                assert!(
                    u.memory.total() <= cfg.memory_budget_bytes,
                    "fused unit {}B exceeds budget {}B",
                    u.memory.total(),
                    cfg.memory_budget_bytes
                );
            }
        }
    }
}
