//! Cross-crate integration: Nautilus's optimized execution is logically
//! equivalent to Current Practice (the paper's correctness claim behind
//! Fig 7) and strictly cheaper in compute.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use std::path::PathBuf;

type CycleAccuracies = Vec<Vec<(String, Option<f32>)>>;

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-it-eq-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn run(
    kind: WorkloadKind,
    strategy: Strategy,
    models: usize,
    tag: &str,
) -> (CycleAccuracies, f64) {
    let spec = WorkloadSpec { kind, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(models);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        strategy,
        BackendKind::Real,
        workdir(&format!("{tag}-{}", strategy.label().replace('/', "_"))),
    )
    .expect("session initializes");
    let pool = match kind {
        WorkloadKind::Ftu => spec.image_config().generate(60),
        _ => spec.ner_config().generate(60),
    };
    let mut acc = Vec::new();
    for cycle in 0..2 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        let report = session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
        let mut a = report.accuracies;
        a.sort_by(|x, y| x.0.cmp(&y.0));
        acc.push(a);
    }
    (acc, session.stats().flops)
}

#[test]
fn ftr_nautilus_matches_current_practice_with_less_compute() {
    let (base, base_flops) = run(WorkloadKind::Ftr2, Strategy::CurrentPractice, 4, "ftr");
    let (opt, opt_flops) = run(WorkloadKind::Ftr2, Strategy::Nautilus, 4, "ftr");
    assert_eq!(base, opt, "validation accuracies must match exactly");
    assert!(
        opt_flops < base_flops / 2.0,
        "nautilus {opt_flops:.2e} flops vs current practice {base_flops:.2e}"
    );
}

#[test]
fn ftu_nautilus_matches_current_practice() {
    let (base, base_flops) = run(WorkloadKind::Ftu, Strategy::CurrentPractice, 3, "ftu");
    let (opt, opt_flops) = run(WorkloadKind::Ftu, Strategy::Nautilus, 3, "ftu");
    assert_eq!(base, opt);
    assert!(opt_flops < base_flops, "{opt_flops:.2e} vs {base_flops:.2e}");
}

/// Like [`run`] but returns the exported best trained model.
fn run_export(strategy: Strategy, tag: &str) -> (usize, nautilus_repro::dnn::ModelGraph) {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(3);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        strategy,
        BackendKind::Real,
        workdir(&format!("{tag}-{}", strategy.label().replace('/', "_"))),
    )
    .expect("session initializes");
    let pool = spec.ner_config().generate(30);
    let (train, valid) = pool.split_at(24);
    session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
    session.export_best().expect("trained model exports")
}

#[test]
fn export_best_is_bit_identical_across_strategies() {
    // The fused/materialized plan trains step-for-step identically to solo
    // training, so the *exported parameters* — mapped from the plan graph
    // back onto the candidate topology — must match Current Practice's
    // bit for bit, layer by layer.
    let (ci_base, base) = run_export(Strategy::CurrentPractice, "exp");
    let (ci_opt, opt) = run_export(Strategy::Nautilus, "exp");
    assert_eq!(ci_base, ci_opt, "same best candidate");
    assert_eq!(base.len(), opt.len());
    for idx in 0..base.len() {
        let id = nautilus_repro::dnn::NodeId(idx);
        let (a, b) = (base.node(id), opt.node(id));
        assert_eq!(a.params.len(), b.params.len(), "node {}", a.name);
        for (pa, pb) in a.params.iter().zip(&b.params) {
            assert_eq!(pa.data(), pb.data(), "params differ at node {}", a.name);
        }
    }
}

#[test]
fn atr_nautilus_matches_current_practice() {
    let (base, _) = run(WorkloadKind::Atr, Strategy::CurrentPractice, 3, "atr");
    let (opt, _) = run(WorkloadKind::Atr, Strategy::Nautilus, 3, "atr");
    assert_eq!(base, opt);
}
