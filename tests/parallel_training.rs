//! Concurrent unit training reproduces the serial SGD trajectory exactly.
//!
//! On the real backend, independent training units run concurrently on the
//! shared pool (session step 4). Correctness demands this changes *nothing*
//! observable: every unit trains its own parameters against an immutable
//! feature store, so validation accuracies — and the best-model selection —
//! must be bit-identical to the serial loop.
//!
//! One `#[test]` in its own binary so `NAUTILUS_THREADS` is set exactly once
//! before the pool's first use.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use nautilus_util::pool;

type CycleAccuracies = Vec<Vec<(String, Option<f32>)>>;

fn run_cycles(limit: usize, tag: &str) -> CycleAccuracies {
    pool::with_parallelism_limit(limit, || {
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
        let mut candidates = spec.candidates().expect("workload builds");
        candidates.truncate(3);
        let workdir = std::env::temp_dir().join(format!(
            "nautilus-it-par-train-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&workdir);
        // Current Practice trains one unit per candidate: three units, so
        // the pooled path genuinely runs more than one unit concurrently.
        let mut session = ModelSelection::new(
            candidates,
            SystemConfig::tiny(),
            Strategy::CurrentPractice,
            BackendKind::Real,
            workdir,
        )
        .expect("session initializes");
        let data = spec.ner_config().generate(60);
        let mut acc = Vec::new();
        for cycle in 0..2 {
            let batch = data.range(cycle * 30, (cycle + 1) * 30);
            let (train, valid) = batch.split_at(24);
            let report = session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
            acc.push(report.accuracies);
        }
        acc
    })
}

#[test]
fn concurrent_unit_training_matches_serial_trajectory() {
    // Before the pool's first use; this binary holds no other test.
    std::env::set_var("NAUTILUS_THREADS", "4");
    assert_eq!(pool::num_threads(), 4, "env override must win");
    let serial = run_cycles(1, "serial");
    let pooled = run_cycles(8, "pooled");
    // Unit order is preserved by the parallel fold, so the full report —
    // names, order, and accuracy bits — must match without sorting.
    assert_eq!(serial, pooled, "pooled trajectory diverged from serial");
}
