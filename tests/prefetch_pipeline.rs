//! Trainer-level properties of the asynchronous feature-store pipeline.
//!
//! The epoch prefetcher overlaps chunk reads/decodes with training compute,
//! and write-behind defers materialization chunk writes to I/O threads.
//! Neither is allowed to change anything observable: validation accuracies
//! and the store's byte accounting must be bit-identical to fully
//! synchronous I/O at every pool width, and a slow disk must make the
//! trainer *wait* — never train on stale or partial buffers.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use nautilus_util::{pool, telemetry};
use std::path::PathBuf;

type CycleAccuracies = Vec<Vec<(String, Option<f32>)>>;

/// Everything observable about a run: the per-cycle accuracy reports plus
/// the store's exact byte accounting.
#[derive(Debug, PartialEq)]
struct Outcome {
    acc: CycleAccuracies,
    disk_read_bytes: u64,
    cached_read_bytes: u64,
    disk_write_bytes: u64,
}

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-it-prefetch-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Two labeling cycles of MAT-ALL (every materializable layer is stored, so
/// training genuinely streams features from the store each epoch).
fn run(config: SystemConfig, tag: &str) -> Outcome {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(3);
    let mut session = ModelSelection::new(
        candidates,
        config,
        Strategy::MatAll,
        BackendKind::Real,
        workdir(tag),
    )
    .expect("session initializes");
    let pool = spec.ner_config().generate(60);
    let mut acc = Vec::new();
    for cycle in 0..2 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        let report = session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
        acc.push(report.accuracies);
    }
    let stats = session.stats();
    Outcome {
        acc,
        disk_read_bytes: stats.disk_read_bytes,
        cached_read_bytes: stats.cached_read_bytes,
        disk_write_bytes: stats.disk_write_bytes,
    }
}

fn sync_config() -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.io.prefetch = false;
    cfg.io.write_behind = false;
    cfg
}

fn async_config(io_threads: usize) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.io.prefetch = true;
    cfg.io.write_behind = true;
    cfg.io.io_threads = io_threads;
    cfg
}

#[test]
fn prefetched_training_is_bit_identical_to_synchronous_at_any_width() {
    // The prefetcher keeps all page-cache/IO accounting on the consumer
    // thread in the synchronous order, so not just the accuracies but the
    // exact byte counters must survive the async rewrite — at every
    // combination of pool width and I/O thread count.
    let reference = pool::with_parallelism_limit(1, || run(sync_config(), "ref-sync"));
    for width in [1usize, 2, 8] {
        let sync = pool::with_parallelism_limit(width, || {
            run(sync_config(), &format!("w{width}-sync"))
        });
        let pre = pool::with_parallelism_limit(width, || {
            run(async_config(width), &format!("w{width}-pre"))
        });
        assert_eq!(reference, sync, "sync run diverged at width {width}");
        assert_eq!(reference, pre, "prefetched run diverged at width {width}");
    }
}

#[test]
fn trainer_blocks_on_slow_io_rather_than_training_on_stale_buffers() {
    // Inject 25 ms of latency into every chunk fetch on the I/O threads.
    // If the trainer ever consumed a buffer before its fetch completed,
    // the accuracies (or the byte accounting) would diverge from the
    // fast run — instead it must block, which surfaces as prefetch stalls.
    telemetry::enable();
    let stalls_before = telemetry::PREFETCH_STALLS.get();
    let mut slow_cfg = SystemConfig::tiny();
    slow_cfg.io.read_delay_ms = 25;
    let slow = run(slow_cfg, "stall-slow");
    let stalls_after = telemetry::PREFETCH_STALLS.get();
    assert!(
        stalls_after > stalls_before,
        "injected delay must surface as prefetch stalls ({stalls_before} -> {stalls_after})"
    );
    let fast = run(SystemConfig::tiny(), "stall-fast");
    assert_eq!(slow, fast, "slow I/O changed training results");
}
