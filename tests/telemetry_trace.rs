//! End-to-end telemetry validation: a tiny real-backend session with
//! tracing enabled must export a well-formed Chrome trace-event file
//! covering every instrumented subsystem.
//!
//! This lives in its own integration binary (own process) because the
//! telemetry collector is process-global state.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use nautilus_repro::util::json::{self, Json};
use nautilus_repro::util::telemetry;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("nautilus-it-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn get<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_int(obj: &Json, key: &str) -> Option<i128> {
    match get(obj, key) {
        Some(Json::Int(v)) => Some(*v),
        Some(Json::Num(v)) if v.fract() == 0.0 => Some(*v as i128),
        _ => None,
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    match get(obj, key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

#[test]
fn traced_session_exports_valid_chrome_trace() {
    let trace_path = workdir("out").join("trace.json");

    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(2);
    let config = SystemConfig::tiny()
        .into_builder()
        .trace(trace_path.display().to_string())
        .build();
    let wd = workdir("session");
    let mut session =
        ModelSelection::new(candidates, config, Strategy::Nautilus, BackendKind::Real, &wd)
            .expect("session initializes");

    let pool = spec.ner_config().generate(64);
    for cycle in 0..2 {
        let (batch, _) = pool.split_at(32 * (cycle + 1));
        let (_, tail) = batch.split_at(32 * cycle);
        let (train, valid) = tail.split_at(24);
        session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
    }
    // Sessions export on drop; an explicit export also works and lets the
    // test proceed without relying on drop order.
    let written = telemetry::export().expect("export succeeds");
    assert_eq!(written.as_deref(), Some(trace_path.as_path()));
    drop(session);

    let bytes = std::fs::read(&trace_path).expect("trace file exists");
    let root = json::from_slice(&bytes).expect("trace parses as JSON");
    let Some(Json::Arr(events)) = get(&root, "traceEvents") else {
        panic!("trace must contain a traceEvents array");
    };
    assert!(!events.is_empty(), "trace must contain events");

    let mut cats: BTreeSet<String> = BTreeSet::new();
    let mut counters: BTreeSet<String> = BTreeSet::new();
    // (tid, ts, end) for nesting validation.
    let mut spans: Vec<(i128, i128, i128)> = Vec::new();
    for e in events {
        let ph = get_str(e, "ph").expect("every event has ph");
        match ph {
            "X" => {
                let ts = get_int(e, "ts").expect("X event has ts");
                let dur = get_int(e, "dur").expect("X event has dur");
                assert!(ts >= 0, "negative timestamp");
                assert!(dur >= 0, "negative duration");
                assert_eq!(get_int(e, "pid"), Some(1));
                let tid = get_int(e, "tid").expect("X event has tid");
                assert!(get_str(e, "name").is_some(), "X event has a name");
                cats.insert(get_str(e, "cat").expect("X event has cat").to_string());
                spans.push((tid, ts, ts + dur));
            }
            "C" => {
                counters.insert(get_str(e, "name").expect("counter name").to_string());
                let args = get(e, "args").expect("counter args");
                if get_int(args, "value").is_none() {
                    // Histograms export as counter events carrying their
                    // quantile series instead of a single value.
                    for q in ["count", "p50", "p95", "p99", "max"] {
                        assert!(get_int(args, q).is_some(), "histogram arg {q} is integral");
                    }
                }
            }
            "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    for want in ["core", "store", "dnn", "milp", "pool"] {
        assert!(cats.contains(want), "missing spans from subsystem {want:?}; got {cats:?}");
    }
    for want in
        ["flops", "disk_read_bytes", "cached_read_bytes", "disk_write_bytes", "pool.steals"]
    {
        assert!(counters.contains(want), "missing counter {want:?}; got {counters:?}");
    }

    // Per-thread nesting: spans on one thread either nest or are disjoint.
    // Timestamps are truncated to whole microseconds, so allow 1us slack.
    spans.sort_by_key(|&(tid, ts, end)| (tid, ts, std::cmp::Reverse(end)));
    let mut stack: Vec<(i128, i128, i128)> = Vec::new();
    for &(tid, ts, end) in &spans {
        while let Some(&(ptid, _, pend)) = stack.last() {
            if ptid != tid || pend <= ts {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, _, pend)) = stack.last() {
            assert!(end <= pend + 1, "span [{ts}, {end}] escapes enclosing span ending {pend}");
        }
        stack.push((tid, ts, end));
    }

    let _ = std::fs::remove_dir_all(trace_path.parent().unwrap());
    let _ = std::fs::remove_dir_all(&wd);
}
