//! Serving-layer integration and property tests: HTTP parser robustness,
//! batcher arrival-order bit-identity, checkpoint round-trip + hot swap
//! under concurrent load, and bounded-queue overload behavior.

use nautilus_repro::dnn::exec::{forward, BatchInputs};
use nautilus_repro::dnn::graph::ParamInit;
use nautilus_repro::dnn::{checkpoint, Activation, LayerKind, ModelGraph};
use nautilus_repro::serve::http::{self, parse_request, Limits, ParseOutcome};
use nautilus_repro::serve::{MicroBatcher, ModelRegistry, Server};
use nautilus_repro::tensor::init::seeded_rng;
use nautilus_repro::tensor::Tensor;
use nautilus_repro::core::config::ServingConfig;
use nautilus_util::prop::{prop_check, Gen};
use nautilus_util::rng::{Rng, StdRng};
use std::sync::Arc;
use std::time::Duration;

fn model(seed: u64, in_dim: usize, out_dim: usize) -> ModelGraph {
    let mut rng = seeded_rng(seed);
    let mut g = ModelGraph::new();
    let inp = g.add_input("in", [in_dim]);
    let h = g
        .add_layer(
            "hidden",
            LayerKind::Dense { in_dim, out_dim: in_dim, act: Activation::Gelu },
            &[inp],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    let o = g
        .add_layer(
            "head",
            LayerKind::Dense { in_dim, out_dim, act: Activation::None },
            &[h],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    g.add_output(o).unwrap();
    g
}

fn solo_forward(g: &ModelGraph, record: &[f32]) -> Vec<f32> {
    let inp = g.input_ids()[0];
    let t = Tensor::from_vec(g.shape(inp).with_batch(1), record.to_vec()).unwrap();
    let mut bi = BatchInputs::new();
    bi.insert(inp, t);
    forward(g, &bi, false).unwrap().output(g.outputs()[0]).data().to_vec()
}

// ---------------------------------------------------------------------
// Property: the HTTP parser never panics and classifies any byte soup as
// complete / incomplete / clean error — including requests split at
// arbitrary read boundaries, corrupted bytes, and truncations.
// ---------------------------------------------------------------------

/// A raw byte buffer derived from a valid request by optional mangling.
struct RequestSoup;

impl Gen for RequestSoup {
    type Value = Vec<u8>;

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let methods = ["GET", "POST", "PUT", ""];
        let method = methods[rng.gen_range(0usize..methods.len())];
        let path_len = rng.gen_range(0usize..20);
        let path: String =
            std::iter::once('/').chain((0..path_len).map(|_| 'a')).collect();
        let body_len = rng.gen_range(0usize..64);
        let body: Vec<u8> = (0..body_len).map(|_| rng.gen_range(0u8..=255)).collect();
        let declared = if rng.gen_bool(0.8) {
            body_len.to_string()
        } else {
            // Sometimes lie about (or corrupt) the length.
            format!("{}x", rng.gen_range(0u32..100))
        };
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {declared}\r\n\r\n"
        )
        .into_bytes();
        raw.extend_from_slice(&body);

        match rng.gen_range(0u32..4) {
            0 => {} // valid (or valid-shaped) request
            1 => {
                // Truncate anywhere — simulates a half-arrived read.
                let cut = rng.gen_range(0usize..raw.len().max(1));
                raw.truncate(cut);
            }
            2 => {
                // Corrupt one byte.
                if !raw.is_empty() {
                    let i = rng.gen_range(0usize..raw.len());
                    raw[i] = rng.gen_range(0u8..=255);
                }
            }
            _ => {
                // Pure garbage.
                let n = rng.gen_range(0usize..200);
                raw = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
            }
        }
        raw
    }

    fn shrink(&self, v: &Vec<u8>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if !v.is_empty() {
            out.push(v[..v.len() / 2].to_vec());
            out.push(v[..v.len() - 1].to_vec());
        }
        out
    }
}

#[test]
fn http_parser_is_total_over_byte_soup() {
    let limits = Limits { max_head_bytes: 256, max_body_bytes: 128 };
    prop_check(0x5E27_0001, 300, &RequestSoup, |raw| {
        // Whole-buffer parse must classify without panicking (prop_check
        // converts panics into failures).
        let whole = parse_request(raw, &limits);
        // Incremental invariant: every prefix is either Incomplete, or
        // settles on the same classification the full buffer reaches —
        // feeding a request split across reads can't change the outcome.
        for cut in 0..raw.len() {
            match (parse_request(&raw[..cut], &limits), &whole) {
                (ParseOutcome::Incomplete, _) => {}
                (ParseOutcome::Error(e1), ParseOutcome::Error(e2)) if e1 == *e2 => {}
                (ParseOutcome::Complete(_, used), _) if used <= cut => {}
                (got, want) => {
                    return Err(format!(
                        "prefix {cut}/{} diverged: {got:?} vs whole {want:?}",
                        raw.len()
                    ))
                }
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Property: any arrival interleaving through the micro-batcher yields
// outputs bit-identical to serial single-request execution.
// ---------------------------------------------------------------------

/// `(max_batch, max_delay_us, submission delays in µs)` per case.
struct Interleaving;

impl Gen for Interleaving {
    type Value = (usize, u64, Vec<u64>);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let max_batch = rng.gen_range(1usize..9);
        let max_delay_us = [0u64, 200, 2_000, 8_000][rng.gen_range(0usize..4)];
        let n = rng.gen_range(1usize..10);
        let delays = (0..n).map(|_| rng.gen_range(0u64..3_000)).collect();
        (max_batch, max_delay_us, delays)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (b, d, delays) = v.clone();
        let mut out = Vec::new();
        if delays.len() > 1 {
            out.push((b, d, delays[..delays.len() / 2].to_vec()));
        }
        if d > 0 {
            out.push((b, 0, delays.clone()));
        }
        out
    }
}

#[test]
fn batcher_outputs_match_serial_execution_for_any_interleaving() {
    let g = model(0xBA7C, 16, 4);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", g.clone()).unwrap();
    let g = Arc::new(g);

    prop_check(0x5E27_0002, 24, &Interleaving, |case| {
        let (max_batch, max_delay_us, delays) = case.clone();
        let cfg = ServingConfig { max_batch, max_delay_us, ..ServingConfig::default() };
        let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg));
        let mut rng = seeded_rng(max_delay_us ^ delays.len() as u64);
        let records: Vec<Vec<f32>> = delays
            .iter()
            .map(|_| (0..16).map(|_| rng.gen_f32() * 2.0 - 1.0).collect())
            .collect();

        let handles: Vec<_> = records
            .iter()
            .zip(&delays)
            .map(|(r, &delay)| {
                let b = Arc::clone(&batcher);
                let r = r.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(delay));
                    b.predict("default", r)
                })
            })
            .collect();
        for (h, r) in handles.into_iter().zip(&records) {
            let out = h.join().unwrap().map_err(|e| e.to_string())?;
            let want = solo_forward(&g, r);
            if out.values != want {
                return Err(format!(
                    "batched (batch_size {}) != solo: {:?} vs {:?}",
                    out.batch_size, out.values, want
                ));
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Integration: checkpoint round-trip + hot swap under concurrent
// loopback requests — every response comes from exactly one published
// version, never a torn mix.
// ---------------------------------------------------------------------

#[test]
fn hot_swap_under_concurrent_requests_never_tears() {
    const VERSIONS: usize = 4;
    const CLIENTS: usize = 4;
    let dir = std::env::temp_dir().join(format!("nautilus-serve-swap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Round-trip every version through the on-disk checkpoint format.
    let graphs: Vec<ModelGraph> = (0..VERSIONS as u64)
        .map(|seed| {
            let g = model(100 + seed, 12, 3);
            let path = dir.join(format!("v{seed}.bin"));
            checkpoint::save(&g, &path).unwrap();
            let (loaded, _) = checkpoint::load(&path).unwrap();
            loaded
        })
        .collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish_from_checkpoint("default", &dir.join("v0.bin")).unwrap();
    let cfg = ServingConfig {
        max_batch: 4,
        max_delay_us: 500,
        queue_limit: 64,
        handler_threads: 3,
        ..ServingConfig::default()
    };
    let server = Server::start(Arc::clone(&registry), &cfg, 0).unwrap();
    let addr = server.addr().to_string();

    // Per-version expected outputs for one fixed probe record.
    let record: Vec<f32> = (0..12).map(|i| (i as f32) / 6.0 - 1.0).collect();
    let expected: Vec<Vec<f32>> = graphs.iter().map(|g| solo_forward(g, &record)).collect();
    let body = format!(
        "{{\"inputs\": [{}]}}",
        record.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            let expected = expected.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checked = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, raw) = http::request(
                        &addr,
                        "POST",
                        "/predict",
                        Some(body.as_bytes()),
                        Duration::from_secs(10),
                    )
                    .expect("request completes");
                    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
                    let out: nautilus_util::json::Json =
                        nautilus_util::json::from_slice(&raw).unwrap();
                    let version =
                        out.get("model_version").and_then(|v| v.as_u64()).unwrap() as usize;
                    let values: Vec<f32> = out
                        .get("outputs")
                        .and_then(|v| v.as_arr())
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap() as f32)
                        .collect();
                    // The response must match the *complete* parameter set
                    // of the version it claims — a torn swap would mix two.
                    assert!(version >= 1 && version <= VERSIONS, "version {version}");
                    assert_eq!(
                        values,
                        expected[version - 1],
                        "outputs are not version {version}'s"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Hot-swap through the remaining versions while clients hammer.
    for seed in 1..VERSIONS as u64 {
        std::thread::sleep(Duration::from_millis(30));
        let v = registry
            .publish_from_checkpoint("default", &dir.join(format!("v{seed}.bin")))
            .unwrap();
        assert_eq!(v, seed + 1);
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u32 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "clients never completed a request");

    let stats = server.shutdown();
    assert_eq!(stats.predictions as u32, total);
    assert_eq!(stats.server_errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Integration: 16 adapter variants of one frozen base served from one
// registry — the base is resident exactly once (Arc identity), the
// stored footprint is a fraction of the logical one, and every tenant's
// answer is bit-identical to solo single-model serving.
// ---------------------------------------------------------------------

#[test]
fn sixteen_variants_share_one_resident_base_and_stay_bit_identical() {
    use nautilus_repro::models::{bert, personalize, BuildScale};
    const VARIANTS: usize = 16;
    let cfg = bert::BertConfig::tiny(8, 50);
    let template = bert::adapter_model(&cfg, 2, 8, 9, BuildScale::Real).unwrap();
    let variants: Vec<ModelGraph> =
        (0..VARIANTS as u64).map(|t| personalize(&template, t).unwrap()).collect();

    let registry = Arc::new(ModelRegistry::new());
    for (t, g) in variants.iter().enumerate() {
        registry.publish(&format!("tenant-{t}"), g.clone()).unwrap();
    }

    // The frozen base is one Arc shared by every artifact.
    let first = registry.get("tenant-0").unwrap();
    for t in 1..VARIANTS {
        let a = registry.get(&format!("tenant-{t}")).unwrap();
        assert!(
            Arc::ptr_eq(&first.base, &a.base),
            "tenant-{t} holds a separate copy of the base"
        );
    }

    // Stored-bytes accounting agrees: 16 logical models, ~1 base stored.
    let stats = registry.stats();
    assert_eq!(stats.resident_variants, VARIANTS);
    assert_eq!(stats.bases, 1);
    assert!(
        stats.dedup_ratio() >= 5.0,
        "dedup ratio {:.2} below the 5x gate (logical {} / stored {})",
        stats.dedup_ratio(),
        stats.bytes_logical,
        stats.bytes_stored
    );

    // Batched, cross-tenant serving answers bit-identically to solo
    // forwards over each tenant's full standalone graph.
    let cfg = ServingConfig { max_batch: 32, max_delay_us: 20_000, ..ServingConfig::default() };
    let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg));
    let record: Vec<f32> = (0..8).map(|i| (i % 50) as f32).collect();
    let handles: Vec<_> = (0..VARIANTS)
        .map(|t| {
            let b = Arc::clone(&batcher);
            let r = record.clone();
            std::thread::spawn(move || b.predict(&format!("tenant-{t}"), r).unwrap())
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let out = h.join().unwrap();
        assert_eq!(
            out.values,
            solo_forward(&variants[t], &record),
            "tenant-{t}: multi-tenant serving diverged from solo"
        );
    }
}

// ---------------------------------------------------------------------
// Integration (delta round-trip): export → delta checkpoint → evict →
// fault-in → predict, bit-identical to the never-evicted artifact, while
// a *different* tenant is concurrently hot-swapped.
// ---------------------------------------------------------------------

#[test]
fn evicted_variant_faults_in_bit_identical_under_concurrent_hot_swaps() {
    use nautilus_repro::models::{bert, personalize, BuildScale};
    let dir = std::env::temp_dir().join(format!("nautilus-serve-delta-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = bert::BertConfig::tiny(8, 50);
    let template = bert::adapter_model(&cfg, 2, 8, 9, BuildScale::Real).unwrap();
    let stable = personalize(&template, 7).unwrap();

    let serving = nautilus_repro::core::config::SystemConfig::builder()
        .serve_delta_store_dir(dir.to_str().unwrap())
        .build()
        .serving
        .clone();
    let registry = Arc::new(ModelRegistry::with_config(&serving).unwrap());
    registry.publish("stable", stable.clone()).unwrap();
    registry.publish("churner", personalize(&template, 1000).unwrap()).unwrap();

    let record: Vec<f32> = (0..8).map(|i| (i * 3 % 50) as f32).collect();
    let want = solo_forward(&stable, &record);

    // Baseline: never-evicted prediction matches solo execution.
    let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &ServingConfig::default()));
    assert_eq!(batcher.predict("stable", record.clone()).unwrap().values, want);

    // Hammer hot swaps of the *other* tenant while "stable" round-trips
    // through the delta store.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn = {
        let registry = Arc::clone(&registry);
        let template = template.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut v = 1u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                v += 1;
                registry.publish("churner", personalize(&template, 1000 + v).unwrap()).unwrap();
            }
        })
    };

    for round in 0..5 {
        registry.evict("stable").unwrap();
        let listed = registry.list();
        let row = listed.iter().find(|m| m.id.as_str() == "stable").unwrap();
        assert!(!row.resident, "round {round}: evict left the variant resident");
        // The next predict faults the delta back in transparently.
        let out = batcher.predict("stable", record.clone()).unwrap();
        assert_eq!(out.values, want, "round {round}: fault-in changed the answer");
        assert_eq!(out.version, 1, "round {round}: fault-in bumped the version");
    }
    let stats = registry.stats();
    assert!(stats.evictions >= 5 && stats.fault_ins >= 5, "{stats:?}");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    churn.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Integration: overload. A burst larger than the bounded queue gets some
// 503s with Retry-After, zero unanswered connections, and a clean drain.
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_cleanly_and_answers_every_connection() {
    const BURST: usize = 24;
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", model(77, 8, 2)).unwrap();
    // One handler + a wide-open batching door make each prediction slow
    // (~40ms), so a burst must pile up on the 2-slot accept queue.
    let cfg = ServingConfig {
        max_batch: 64,
        max_delay_us: 40_000,
        queue_limit: 2,
        handler_threads: 1,
        request_timeout_ms: 5_000,
        ..ServingConfig::default()
    };
    let server = Server::start(registry, &cfg, 0).unwrap();
    let addr = server.addr().to_string();
    let body = br#"{"inputs": [0, 1, 0, 1, 0, 1, 0, 1]}"#;

    let handles: Vec<_> = (0..BURST)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                http::request(&addr, "POST", "/predict", Some(body), Duration::from_secs(20))
                    .expect("every connection gets a response")
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (status, raw) = h.join().expect("client thread must not panic");
        match status {
            200 => ok += 1,
            503 => {
                shed += 1;
                // Shed responses carry the back-off hint.
                assert!(!raw.is_empty());
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok + shed, BURST, "every connection answered");
    assert!(shed > 0, "burst of {BURST} over a 2-slot queue must shed");
    assert!(ok > 0, "some requests must still succeed under overload");

    let stats = server.shutdown();
    assert_eq!(stats.shed as usize, shed);
    assert_eq!(stats.predictions as usize, ok);
}

// ---------------------------------------------------------------------
// Integration: slow clients get 408 instead of pinning a handler.
// ---------------------------------------------------------------------

#[test]
fn stalled_client_gets_request_timeout() {
    use std::io::{Read, Write};
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", model(9, 8, 2)).unwrap();
    let cfg = ServingConfig { request_timeout_ms: 150, ..ServingConfig::default() };
    let server = Server::start(registry, &cfg, 0).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Send only a partial head, then stall.
    stream.write_all(b"POST /predict HTTP/1.1\r\nContent-").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let (status, _) = http::parse_response(&raw).unwrap();
    assert_eq!(status, 408);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Integration: the /metrics exposition stays well-formed Prometheus text
// under concurrent load, with per-tenant histogram series.
// ---------------------------------------------------------------------

/// One exposition sample line parsed as (metric name, labels, value).
fn parse_series(text: &str) -> Vec<(String, Vec<(String, String)>, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            assert_eq!(value, "+Inf", "unparseable sample value in {line:?}");
            f64::INFINITY
        });
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest.strip_suffix('}').expect("label block closes");
                let labels = rest
                    .split(',')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').expect("label is k=\"v\"");
                        let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
                        (k.to_string(), v.expect("label value quoted").to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        out.push((name, labels, value));
    }
    out
}

#[test]
fn metrics_exposition_is_well_formed_under_concurrent_load() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("alice", model(31, 8, 2)).unwrap();
    registry.publish("bob", model(32, 8, 2)).unwrap();
    let server = Server::start(registry, &ServingConfig::default(), 0).unwrap();
    let addr = server.addr().to_string();
    let body = br#"{"inputs": [1, 2, 3, 4, 5, 6, 7, 8]}"#;

    // Four clients hammer two tenants while /metrics is scraped live.
    let clients: Vec<_> = ["alice", "bob", "alice", "bob"]
        .into_iter()
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let (status, _) = http::request(
                        &addr,
                        "POST",
                        &format!("/predict/{tenant}"),
                        Some(body),
                        Duration::from_secs(10),
                    )
                    .unwrap();
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();
    for _ in 0..5 {
        let (status, _) =
            http::request(&addr, "GET", "/metrics", None, Duration::from_secs(10)).unwrap();
        assert_eq!(status, 200, "mid-load scrape must succeed");
    }
    for c in clients {
        c.join().unwrap();
    }

    let (status, raw) =
        http::request(&addr, "GET", "/metrics", None, Duration::from_secs(10)).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(raw).expect("exposition is UTF-8");

    // Every `# TYPE` line is unique, names a valid identifier, and a
    // known kind.
    let mut seen_types = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let mut parts = line["# TYPE ".len()..].split(' ');
        let name = parts.next().unwrap();
        let kind = parts.next().unwrap();
        assert!(
            name.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name:?}"
        );
        assert!(["counter", "gauge", "histogram"].contains(&kind), "bad kind {kind:?}");
        assert!(
            seen_types.insert(name.to_string(), kind).is_none(),
            "duplicate # TYPE for {name}"
        );
    }

    // Histogram series: cumulative buckets are monotone in file order and
    // the +Inf bucket equals the matching _count sample.
    let series = parse_series(&text);
    let mut last_bucket: std::collections::BTreeMap<String, f64> =
        std::collections::BTreeMap::new();
    for (name, labels, value) in &series {
        if let Some(base) = name.strip_suffix("_bucket") {
            let key: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v},"))
                .fold(format!("{base}|"), |acc, kv| acc + &kv);
            let prev = last_bucket.entry(key.clone()).or_insert(0.0);
            assert!(
                *prev <= *value + 1e-9,
                "bucket counts must be cumulative: {name} {labels:?}"
            );
            *prev = *value;
            let le = &labels.iter().find(|(k, _)| k == "le").expect("bucket has le").1;
            if le == "+Inf" {
                let count = series
                    .iter()
                    .find(|(n, l, _)| {
                        n == &format!("{base}_count")
                            && l.iter().filter(|(k, _)| k != "le").eq(labels
                                .iter()
                                .filter(|(k, _)| k != "le"))
                    })
                    .unwrap_or_else(|| panic!("no _count for {base} {labels:?}"));
                assert_eq!(*value, count.2, "+Inf bucket != _count for {base} {labels:?}");
            }
        }
    }

    // Per-tenant request-latency series exist for both tenants.
    for tenant in ["alice", "bob"] {
        assert!(
            series.iter().any(|(n, l, v)| {
                n == "serve_request_us_count"
                    && l.contains(&("tenant".to_string(), tenant.to_string()))
                    && *v >= 10.0
            }),
            "missing per-tenant series for {tenant}"
        );
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Integration: the watchdog flips /healthz to degraded (503) while the
// batcher queue is driven past its SLO threshold, then recovers.
// ---------------------------------------------------------------------

#[test]
fn healthz_degrades_and_recovers_when_queue_slo_is_breached() {
    use nautilus_repro::core::config::ObservabilityConfig;
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", model(55, 8, 2)).unwrap();
    // A wide-open batching door (400ms) with many handler threads piles
    // concurrent predictions up inside the batcher queue.
    let cfg = ServingConfig {
        max_batch: 64,
        max_delay_us: 400_000,
        handler_threads: 8,
        queue_limit: 64,
        request_timeout_ms: 10_000,
        ..ServingConfig::default()
    };
    let obs = ObservabilityConfig {
        watchdog_tick_ms: 5,
        watchdog_window: 4,
        slo_queue_depth: 2,
        ..ObservabilityConfig::default()
    };
    let server = Server::start_with(registry, &cfg, &obs, 0).unwrap();
    let addr = server.addr().to_string();
    let body = br#"{"inputs": [1, 2, 3, 4, 5, 6, 7, 8]}"#;

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (status, _) = http::request(
                    &addr,
                    "POST",
                    "/predict",
                    Some(body),
                    Duration::from_secs(20),
                )
                .unwrap();
                assert_eq!(status, 200);
            })
        })
        .collect();

    // While the six predictions sit in the 400ms batching window, the
    // watchdog must observe depth > 2 and flip health to degraded.
    let mut saw_degraded = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let (status, raw) =
            http::request(&addr, "GET", "/healthz", None, Duration::from_secs(10)).unwrap();
        if status == 503 {
            let j: nautilus_util::json::Json =
                nautilus_util::json::from_slice(&raw).unwrap();
            assert_eq!(j.get("status").and_then(|v| v.as_str()), Some("degraded"));
            let watchdog = j
                .get("components")
                .and_then(|c| c.get("watchdog"))
                .expect("watchdog component");
            assert_eq!(watchdog.get("status").and_then(|v| v.as_str()), Some("degraded"));
            assert!(
                watchdog.get("breaches").and_then(|b| b.as_arr()).map(|b| b.len())
                    >= Some(1),
                "degraded health must name its breach"
            );
            saw_degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_degraded, "watchdog never flagged the queue SLO breach");
    for c in clients {
        c.join().unwrap();
    }

    // Once the burst drains, one clean window restores health.
    let mut recovered = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let (status, raw) =
            http::request(&addr, "GET", "/healthz", None, Duration::from_secs(10)).unwrap();
        if status == 200 {
            let j: nautilus_util::json::Json =
                nautilus_util::json::from_slice(&raw).unwrap();
            assert_eq!(j.get("status").and_then(|v| v.as_str()), Some("ok"));
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(recovered, "health never recovered after the queue drained");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Integration: int8 row-quantized serving. A tenant published with
// `quantize_int8` serves through the integer kernels; its logits must
// stay within the quantization error budget of the f32 path, and its
// argmax must agree wherever the f32 margin exceeds that budget.
// ---------------------------------------------------------------------

/// Frozen Gelu trunk + trainable linear head, the transfer-learning shape
/// quantized serving is built for: the trunk quantizes once per base, the
/// head once per tenant publish.
fn frozen_trunk_model(seed: u64, in_dim: usize, out_dim: usize) -> ModelGraph {
    let mut rng = seeded_rng(seed);
    let mut g = ModelGraph::new();
    let inp = g.add_input("in", [in_dim]);
    let h = g
        .add_layer(
            "trunk",
            LayerKind::Dense { in_dim, out_dim: in_dim, act: Activation::Gelu },
            &[inp],
            true,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    let o = g
        .add_layer(
            "head",
            LayerKind::Dense { in_dim, out_dim, act: Activation::None },
            &[h],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    g.add_output(o).unwrap();
    g
}

#[test]
fn int8_tenant_serves_within_quantization_error_of_f32() {
    use nautilus_repro::serve::PublishOptions;
    const IN: usize = 32;
    const OUT: usize = 6;
    const RECORDS: usize = 32;

    let g = frozen_trunk_model(0x1A78, IN, OUT);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("f32", g.clone()).unwrap();
    registry.publish_with("int8", g.clone(), PublishOptions { quantize_int8: true }).unwrap();
    assert!(registry.get("f32").unwrap().quant.is_none());
    assert!(registry.get("int8").unwrap().quant.is_some(), "publish_with must quantize");

    let cfg = ServingConfig { max_batch: 8, max_delay_us: 2_000, ..ServingConfig::default() };
    let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg));

    // Two dense layers each contribute ~scale·√k of accumulated rounding
    // error; this budget bounds both and the gate below uses it twice.
    let budget = 0.05 * (IN as f32).sqrt() + 0.05;

    let mut rng = seeded_rng(0x1A79);
    let mut argmax_checked = 0usize;
    for _ in 0..RECORDS {
        let record: Vec<f32> = (0..IN).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let f32_out = batcher.predict("f32", record.clone()).unwrap().values;
        // The f32 tenant must stay byte-for-byte the ordinary serving path.
        assert_eq!(f32_out, solo_forward(&g, &record));
        let q_out = batcher.predict("int8", record).unwrap().values;
        assert_eq!(q_out.len(), OUT);
        for (o, (&q, &w)) in q_out.iter().zip(&f32_out).enumerate() {
            assert!(
                (q - w).abs() <= 0.05 * w.abs() + budget,
                "logit {o}: int8 {q} vs f32 {w} exceeds the error budget {budget}"
            );
        }
        // Argmax must agree whenever f32's top-2 margin clears the budget —
        // quantization may only flip genuinely ambiguous predictions.
        let top = |v: &[f32]| {
            v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0
        };
        let mut sorted = f32_out.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        if sorted[0] - sorted[1] > 2.0 * budget {
            assert_eq!(top(&q_out), top(&f32_out), "confident argmax flipped under int8");
            argmax_checked += 1;
        }
    }
    assert!(argmax_checked > 0, "no record ever had a confident margin — weak test");
}
