//! Cross-crate property tests: planner invariants on randomized workloads.

use nautilus_repro::core::fusion::fuse_models;
use nautilus_repro::core::mat_opt::{
    choose_materialization, no_reuse_plan, plan_given_v, validate_plan,
};
use nautilus_repro::core::multimodel::MultiModelGraph;
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::SystemConfig;
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
use nautilus_repro::models::BuildScale;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn candidate(strategy_idx: usize, lr: f32, batch: usize, epochs: usize, id: usize) -> CandidateModel {
    let cfg = BertConfig::tiny(8, 40);
    let strategy = FeatureStrategy::ALL[strategy_idx % FeatureStrategy::ALL.len()];
    CandidateModel {
        name: format!("c{id}-{}-{lr}-{batch}-{epochs}", strategy.label()),
        graph: feature_transfer_model(&cfg, strategy, 5, BuildScale::Real).unwrap(),
        hyper: Hyper { batch_size: batch, epochs, optimizer: OptimizerSpec::sgd(lr) },
        task: TaskKind::TokenTagging,
    }
}

fn workload_strategy() -> impl Strategy<Value = Vec<CandidateModel>> {
    proptest::collection::vec(
        (0..6usize, 1..5u32, prop_oneof![Just(4usize), Just(8)], 1..3usize),
        1..5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (s, lr, b, e))| candidate(s, lr as f32 * 1e-3, b, e, i))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The MILP's chosen V always fits the budget, and the resulting plans
    /// are valid (Def 4.5) and never costlier than the no-reuse plan.
    #[test]
    fn mat_opt_plans_are_valid_and_never_worse(
        cands in workload_strategy(),
        budget_kb in 0u64..2048,
    ) {
        let mut cfg = SystemConfig::tiny();
        cfg.disk_budget_bytes = budget_kb << 10;
        cfg.planner.flops_per_sec = 2e9;
        let r = 64usize;
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg, r);
        let total: u64 = res
            .materialized
            .iter()
            .map(|&m| multi.node(m).profile.out_bytes * r as u64)
            .sum();
        prop_assert!(total <= cfg.disk_budget_bytes, "V storage {total} > budget");
        for i in 0..cands.len() {
            let plan = plan_given_v(&multi, &[i], &res.materialized, &cfg);
            validate_plan(&multi, &[i], &res.materialized, &plan.actions)
                .map_err(TestCaseError::fail)?;
            let base = no_reuse_plan(&multi, &[i], &cfg);
            prop_assert!(plan.cost_flops <= base.cost_flops + 1.0,
                "reuse plan ({}) worse than no-reuse ({})",
                plan.cost_flops, base.cost_flops);
        }
    }

    /// Fusion covers every model exactly once, only fuses compatible
    /// hyperparameters, and never increases total planned cost.
    #[test]
    fn fusion_partitions_and_improves(cands in workload_strategy()) {
        let cfg = SystemConfig::tiny();
        let multi = MultiModelGraph::build(&cands);
        let v = BTreeSet::new();
        let units = fuse_models(&multi, &cands, &v, &cfg, true);
        let mut covered: Vec<usize> =
            units.iter().flat_map(|u| u.members.clone()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..cands.len()).collect::<Vec<_>>());
        let mut fused_total = 0.0;
        for u in &units {
            for (k, &m) in u.members.iter().enumerate() {
                prop_assert_eq!(cands[m].hyper.batch_size, u.batch_size);
                prop_assert_eq!(cands[m].hyper.epochs, u.member_epochs[k]);
            }
            prop_assert_eq!(u.epochs, u.member_epochs.iter().copied().max().unwrap());
            fused_total += u.weighted_cost_flops;
        }
        let solo_total: f64 = (0..cands.len())
            .map(|i| {
                let plan = plan_given_v(&multi, &[i], &v, &cfg);
                nautilus_repro::core::fusion::unit_cost_flops(
                    &multi, &plan.actions, &cands, &[i], &cfg,
                )
            })
            .sum();
        prop_assert!(fused_total <= solo_total + 1.0,
            "fusion increased planned cost: {fused_total} > {solo_total}");
    }
}
