//! Cross-crate property tests: planner invariants on randomized workloads.

use nautilus_repro::core::fusion::fuse_models;
use nautilus_repro::core::mat_opt::{
    choose_materialization, no_reuse_plan, plan_given_v, validate_plan,
};
use nautilus_repro::core::multimodel::MultiModelGraph;
use nautilus_repro::core::spec::{CandidateModel, Hyper};
use nautilus_repro::core::SystemConfig;
use nautilus_repro::dnn::{OptimizerSpec, TaskKind};
use nautilus_repro::models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
use nautilus_repro::models::BuildScale;
use nautilus_util::prop::{prop_check, u64s, vec_of, Gen};
use nautilus_util::rng::{Rng, StdRng};
use nautilus_util::prop_assert;
use std::collections::BTreeSet;

const CASES: u32 = 12;

fn candidate(strategy_idx: usize, lr: f32, batch: usize, epochs: usize, id: usize) -> CandidateModel {
    let cfg = BertConfig::tiny(8, 40);
    let strategy = FeatureStrategy::ALL[strategy_idx % FeatureStrategy::ALL.len()];
    CandidateModel {
        name: format!("c{id}-{}-{lr}-{batch}-{epochs}", strategy.label()),
        graph: feature_transfer_model(&cfg, strategy, 5, BuildScale::Real).unwrap(),
        hyper: Hyper { batch_size: batch, epochs, optimizer: OptimizerSpec::sgd(lr) },
        task: TaskKind::TokenTagging,
    }
}

/// One candidate spec: `(strategy_idx, lr_milli, batch, epochs)`.
struct SpecGen;

impl Gen for SpecGen {
    type Value = (usize, u32, usize, usize);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            rng.gen_range(0usize..6),
            rng.gen_range(1u32..5),
            if rng.gen_bool(0.5) { 4 } else { 8 },
            rng.gen_range(1usize..3),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let &(s, lr, b, e) = v;
        if s > 0 {
            out.push((0, lr, b, e));
        }
        if lr > 1 {
            out.push((s, 1, b, e));
        }
        if e > 1 {
            out.push((s, lr, b, 1));
        }
        out
    }
}

fn workload_gen() -> impl Gen<Value = Vec<(usize, u32, usize, usize)>> {
    vec_of(SpecGen, 1..5)
}

fn build_candidates(specs: &[(usize, u32, usize, usize)]) -> Vec<CandidateModel> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(s, lr, b, e))| candidate(s, lr as f32 * 1e-3, b, e, i))
        .collect()
}

/// The MILP's chosen V always fits the budget, and the resulting plans
/// are valid (Def 4.5) and never costlier than the no-reuse plan.
#[test]
fn mat_opt_plans_are_valid_and_never_worse() {
    let gen = (workload_gen(), u64s(0..2048));
    prop_check(0x2007_0001, CASES, &gen, |(specs, budget_kb)| {
        let cands = build_candidates(specs);
        let cfg = SystemConfig::tiny()
            .into_builder()
            .disk_budget_bytes(budget_kb << 10)
            .planner_flops_per_sec(2e9)
            .build();
        let r = 64usize;
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg, r);
        let total: u64 = res
            .materialized
            .iter()
            .map(|&m| multi.node(m).profile.out_bytes * r as u64)
            .sum();
        prop_assert!(total <= cfg.disk_budget_bytes, "V storage {total} > budget");
        for i in 0..cands.len() {
            let plan = plan_given_v(&multi, &[i], &res.materialized, &cfg);
            validate_plan(&multi, &[i], &res.materialized, &plan.actions)
                .map_err(|e| format!("invalid plan for model {i}: {e}"))?;
            let base = no_reuse_plan(&multi, &[i], &cfg);
            prop_assert!(
                plan.cost_flops <= base.cost_flops + 1.0,
                "reuse plan ({}) worse than no-reuse ({})",
                plan.cost_flops,
                base.cost_flops
            );
        }
        Ok(())
    });
}

/// Fusion covers every model exactly once, only fuses compatible
/// hyperparameters, and never increases total planned cost.
#[test]
fn fusion_partitions_and_improves() {
    prop_check(0x2007_0002, CASES, &workload_gen(), |specs| {
        let cands = build_candidates(specs);
        let cfg = SystemConfig::tiny();
        let multi = MultiModelGraph::build(&cands);
        let v = BTreeSet::new();
        let units = fuse_models(&multi, &cands, &v, &cfg, true);
        let mut covered: Vec<usize> = units.iter().flat_map(|u| u.members.clone()).collect();
        covered.sort_unstable();
        prop_assert!(
            covered == (0..cands.len()).collect::<Vec<_>>(),
            "fusion does not partition the models: {covered:?}"
        );
        let mut fused_total = 0.0;
        for u in &units {
            for (k, &m) in u.members.iter().enumerate() {
                prop_assert!(
                    cands[m].hyper.batch_size == u.batch_size,
                    "fused unit mixes batch sizes"
                );
                prop_assert!(
                    cands[m].hyper.epochs == u.member_epochs[k],
                    "fused unit mislabels member epochs"
                );
            }
            prop_assert!(
                u.epochs == u.member_epochs.iter().copied().max().unwrap(),
                "unit epochs is not the member max"
            );
            fused_total += u.weighted_cost_flops;
        }
        let solo_total: f64 = (0..cands.len())
            .map(|i| {
                let plan = plan_given_v(&multi, &[i], &v, &cfg);
                nautilus_repro::core::fusion::unit_cost_flops(
                    &multi, &plan.actions, &cands, &[i], &cfg,
                )
            })
            .sum();
        prop_assert!(
            fused_total <= solo_total + 1.0,
            "fusion increased planned cost: {fused_total} > {solo_total}"
        );
        Ok(())
    });
}
