//! Cross-crate integration: programmatic supervision (§1) feeding Nautilus
//! model selection — labeling functions produce the training labels, the
//! session trains on them, and accuracy is evaluated against gold labels.

use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use nautilus_repro::data::{weak_label, LabelingFunction, LexiconLf};

#[test]
fn weakly_labeled_cycles_train_a_useful_model() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let ner = spec.ner_config();
    let mut candidates = spec.candidates().unwrap();
    candidates.truncate(3);

    // Lexicon LFs matching the generator's entity regions, voting B-tags.
    let lexicon_size = (ner.vocab / 4) / ner.entity_types;
    let lfs: Vec<LexiconLf> = (0..ner.entity_types)
        .map(|t| LexiconLf {
            name: format!("lex{t}"),
            range: (
                ner.vocab - (ner.entity_types - t) * lexicon_size,
                ner.vocab - (ner.entity_types - t - 1) * lexicon_size,
            ),
            tag: (2 * t + 1) as i64,
        })
        .collect();
    let refs: Vec<&dyn LabelingFunction> =
        lfs.iter().map(|l| l as &dyn LabelingFunction).collect();

    let workdir = std::env::temp_dir().join(format!("nautilus-weak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workdir);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir,
    )
    .unwrap();

    // Two cycles: training labels come from the labeling functions (not the
    // gold labels); validation uses gold labels to measure true quality.
    let gold = ner.generate(100);
    let mut best = 0.0f32;
    for cycle in 0..2 {
        let train_gold = gold.range(cycle * 40, cycle * 40 + 32);
        let valid = gold.range(cycle * 40 + 32, (cycle + 1) * 40);
        let weak = weak_label(&train_gold.inputs, &refs, ner.num_tags(), 0);
        assert!(weak.coverage > 0.0);
        let r = session
            .fit(CycleInput::Real { train: weak.dataset, valid })
            .unwrap();
        best = r.best.unwrap().1;
    }
    // Weak labels differ from gold only in B/I boundaries, so the trained
    // model must still comfortably beat the majority-class rate on gold.
    assert!(best > 0.6, "gold validation accuracy {best}");
}
