//! `nautilus` — command-line driver for the reproduction.
//!
//! ```text
//! nautilus run   --workload ftr2 --strategy nautilus --scale tiny [--cycles N] [--models N]
//! nautilus plan  --workload ftr2 --scale paper
//! nautilus show  --workload ftu  --scale tiny
//! ```
//!
//! * `run`  — executes a model-selection session over labeling cycles
//!   (real training at tiny scale, cost simulation at paper scale) and
//!   prints per-cycle reports.
//! * `plan` — runs only the optimizer and prints the chosen materialized
//!   set, the fused units, and their reuse-plan actions.
//! * `show` — prints a Keras-style summary of one candidate per distinct
//!   architecture in the workload.

use nautilus_repro::core::mat_opt::NodeAction;
use nautilus_repro::core::session::{CycleInput, ModelSelection};
use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "usage: nautilus <run|plan|show> --workload <ftr1|ftr2|ftr3|atr|ftu> \
         [--strategy <current|matall|matonly|fuseonly|nautilus>] \
         [--scale <tiny|paper>] [--cycles N] [--models N] [--format dot]"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    options: BTreeMap<String, String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    let mut options = BTreeMap::new();
    while let Some(flag) = argv.next() {
        let Some(name) = flag.strip_prefix("--") else { usage() };
        let Some(value) = argv.next() else { usage() };
        options.insert(name.to_string(), value);
    }
    Args { command, options }
}

fn parse_workload(s: &str) -> WorkloadKind {
    match s {
        "ftr1" => WorkloadKind::Ftr1,
        "ftr2" => WorkloadKind::Ftr2,
        "ftr3" => WorkloadKind::Ftr3,
        "atr" => WorkloadKind::Atr,
        "ftu" => WorkloadKind::Ftu,
        _ => usage(),
    }
}

fn parse_strategy(s: &str) -> Strategy {
    match s {
        "current" => Strategy::CurrentPractice,
        "matall" => Strategy::MatAll,
        "matonly" => Strategy::MatOnly,
        "fuseonly" => Strategy::FuseOnly,
        "nautilus" => Strategy::Nautilus,
        _ => usage(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let kind = parse_workload(args.options.get("workload").map(String::as_str).unwrap_or_else(|| usage()));
    let scale = match args.options.get("scale").map(String::as_str).unwrap_or("tiny") {
        "tiny" => Scale::Tiny,
        "paper" => Scale::Paper,
        _ => usage(),
    };
    let strategy =
        parse_strategy(args.options.get("strategy").map(String::as_str).unwrap_or("nautilus"));
    let spec = WorkloadSpec { kind, scale };
    let mut candidates = spec.candidates().map_err(std::io::Error::other)?;
    if let Some(n) = args.options.get("models") {
        candidates.truncate(n.parse()?);
    }
    let cycles: usize = match args.options.get("cycles") {
        Some(c) => c.parse()?,
        None => spec.cycles(),
    };
    let config = match scale {
        Scale::Tiny => SystemConfig::tiny(),
        Scale::Paper => SystemConfig::default(),
    };
    let backend = match scale {
        Scale::Tiny => BackendKind::Real,
        Scale::Paper => BackendKind::Simulated,
    };

    match args.command.as_str() {
        "show" => {
            let dot = args.options.get("format").map(String::as_str) == Some("dot");
            // One summary per distinct architecture (grid points that differ
            // only in lr/batch/epochs share a graph).
            let mut seen = std::collections::HashSet::new();
            for c in &candidates {
                let arch = c.name.split("-b").next().unwrap_or(&c.name).to_string();
                if seen.insert(arch.clone()) {
                    if dot {
                        println!("// {arch}");
                        println!("{}", nautilus_repro::dnn::summary::to_dot(&c.graph));
                    } else {
                        println!("== {arch} ==");
                        println!("{}", nautilus_repro::dnn::summary::summarize(&c.graph));
                    }
                }
            }
        }
        "plan" => {
            let workdir = std::env::temp_dir().join("nautilus-cli-plan");
            let _ = std::fs::remove_dir_all(&workdir);
            let session =
                ModelSelection::new(candidates, config, strategy, backend, &workdir)?;
            let init = session.init_report();
            println!(
                "{} candidates -> {} training units, {} materialized layers, theoretical speedup {:.2}x",
                session.candidates().len(),
                init.num_units,
                init.num_materialized,
                init.theoretical_speedup
            );
            if let Some(m) = session.milp_stats() {
                println!(
                    "materialization MILP: {} vars, {} constraints, solved in {:?} ({} B&B nodes)",
                    m.num_vars, m.num_constraints, m.elapsed, m.nodes
                );
            }
            for (unit, plan) in session.units() {
                let members: Vec<&str> = unit
                    .members
                    .iter()
                    .map(|&m| session.candidates()[m].name.as_str())
                    .collect();
                println!(
                    "\nunit (batch {}, epochs {}, est. peak mem {:.2} GiB): {members:?}",
                    unit.batch_size,
                    unit.epochs,
                    unit.memory.total() as f64 / (1u64 << 30) as f64,
                );
                let mut counts = BTreeMap::new();
                for a in unit.plan.actions.values() {
                    *counts.entry(format!("{a:?}")).or_insert(0usize) += 1;
                }
                println!("  actions: {counts:?}; plan graph {} nodes, {} feature loads",
                    plan.graph.len(), plan.materialized_keys().len());
                for (&m, &a) in &unit.plan.actions {
                    if a == NodeAction::Loaded && !session.multi().node(m).is_input {
                        println!("  load <- {}", session.multi().node(m).name);
                    }
                }
            }
        }
        "run" => {
            let workdir = std::env::temp_dir().join("nautilus-cli-run");
            let _ = std::fs::remove_dir_all(&workdir);
            let mut session =
                ModelSelection::new(candidates, config, strategy, backend, &workdir)?;
            let (tr, va) = spec.records_per_cycle();
            let pool = match (scale, kind) {
                (Scale::Tiny, WorkloadKind::Ftu) => {
                    Some(spec.image_config().generate(cycles * (tr + va)))
                }
                (Scale::Tiny, _) => Some(spec.ner_config().generate(cycles * (tr + va))),
                (Scale::Paper, _) => None,
            };
            for cycle in 0..cycles {
                let input = match &pool {
                    Some(p) => {
                        let batch = p.range(cycle * (tr + va), (cycle + 1) * (tr + va));
                        let (train, valid) = batch.split_at(tr);
                        CycleInput::Real { train, valid }
                    }
                    None => CycleInput::Virtual { n_train: tr, n_valid: va },
                };
                let r = session.fit(input)?;
                match &r.best {
                    Some((name, acc)) => println!(
                        "cycle {:2}: {:5} records, {:8.2}s, best {} ({:.1}%)",
                        r.cycle,
                        r.train_records,
                        r.cycle_secs,
                        name,
                        acc * 100.0
                    ),
                    None => println!(
                        "cycle {:2}: {:5} records, {:8.2}s (simulated)",
                        r.cycle, r.train_records, r.cycle_secs
                    ),
                }
            }
            let s = session.stats();
            println!(
                "\ntotal: {:.2}s ({:.0}% compute utilization, {:.2} GB read, {:.2} GB written)",
                s.elapsed_secs,
                s.utilization() * 100.0,
                (s.disk_read_bytes + s.cached_read_bytes) as f64 / 1e9,
                s.disk_write_bytes as f64 / 1e9
            );
        }
        _ => usage(),
    }
    Ok(())
}
