#![warn(missing_docs)]

//! Nautilus reproduction — umbrella crate.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests (and downstream users) can depend on a single crate:
//!
//! * [`core`] — the Nautilus system itself (sessions, optimizers, plans);
//! * [`dnn`] — the deep-learning training substrate;
//! * [`tensor`] — the tensor math substrate;
//! * [`milp`] — the MILP solver substrate;
//! * [`store`] — feature/checkpoint storage with IO accounting;
//! * [`data`] — synthetic datasets and labeling sessions;
//! * [`models`] — MiniBERT/MiniResNet and transfer-learning builders;
//! * [`serve`] — online inference serving for trained models;
//! * [`dist`] — the distributed execution plane (coordinator + workers).
//!
//! # Quickstart
//!
//! ```no_run
//! use nautilus_repro::core::session::{CycleInput, ModelSelection};
//! use nautilus_repro::core::workloads::{Scale, WorkloadKind, WorkloadSpec};
//! use nautilus_repro::core::{BackendKind, Strategy, SystemConfig};
//!
//! let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
//! let candidates = spec.candidates().expect("workload builds");
//! let mut session = ModelSelection::new(
//!     candidates,
//!     SystemConfig::tiny(),
//!     Strategy::Nautilus,
//!     BackendKind::Real,
//!     "/tmp/nautilus-quickstart",
//! )
//! .expect("session initializes");
//!
//! let pool = spec.ner_config().generate(60);
//! let (train, valid) = pool.split_at(48);
//! let report = session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
//! println!("best model: {:?}", report.best);
//! ```

pub use nautilus_core as core;
pub use nautilus_dist as dist;
pub use nautilus_serve as serve;
pub use nautilus_data as data;
pub use nautilus_dnn as dnn;
pub use nautilus_milp as milp;
pub use nautilus_models as models;
pub use nautilus_store as store;
pub use nautilus_tensor as tensor;
pub use nautilus_util as util;
