//! Micro-benchmarks for the Nautilus planner: multi-model graph
//! construction, the materialization MILP (with the group-dedup ablation),
//! reuse-plan solving, fusion pairing, and the peak-memory estimator.

use nautilus_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nautilus_core::fusion::fuse_models;
use nautilus_core::mat_opt::{choose_materialization_grouped, plan_given_v};
use nautilus_core::memory::estimate_peak_memory;
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::SystemConfig;
use std::collections::BTreeSet;

fn paper_candidates(kind: WorkloadKind) -> Vec<nautilus_core::CandidateModel> {
    WorkloadSpec { kind, scale: Scale::Paper }.candidates().expect("workload builds")
}

fn bench_multimodel_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("multimodel_build");
    for kind in [WorkloadKind::Ftr1, WorkloadKind::Ftr2, WorkloadKind::Ftu] {
        let cands = paper_candidates(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &cands, |b, cands| {
            b.iter(|| MultiModelGraph::build(cands))
        });
    }
    group.finish();
}

fn bench_mat_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mat_opt_milp");
    group.sample_size(20);
    let cfg = SystemConfig::default();
    for kind in [WorkloadKind::Ftr1, WorkloadKind::Ftr2] {
        let cands = paper_candidates(kind);
        let multi = MultiModelGraph::build(&cands);
        // Ablation: interchangeable-group dedup on vs off.
        group.bench_function(BenchmarkId::new("grouped", kind.name()), |b| {
            b.iter(|| choose_materialization_grouped(&multi, &cands, &cfg, 10_000, true))
        });
        group.bench_function(BenchmarkId::new("per_model", kind.name()), |b| {
            b.iter(|| choose_materialization_grouped(&multi, &cands, &cfg, 10_000, false))
        });
    }
    group.finish();
}

fn bench_plan_given_v(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    let cands = paper_candidates(WorkloadKind::Ftr2);
    let multi = MultiModelGraph::build(&cands);
    let v: BTreeSet<_> = multi.mat_candidates().into_iter().collect();
    c.bench_function("plan_given_v/pair", |b| {
        b.iter(|| plan_given_v(&multi, &[0, 1], &v, &cfg))
    });
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_models");
    group.sample_size(10);
    let cfg = SystemConfig::default();
    for n in [6usize, 12, 24] {
        let mut cands = paper_candidates(WorkloadKind::Ftr2);
        cands.truncate(n);
        let multi = MultiModelGraph::build(&cands);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true))
        });
    }
    group.finish();
}

fn bench_memory_estimator(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    let cands = paper_candidates(WorkloadKind::Ftr2);
    let multi = MultiModelGraph::build(&cands);
    let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true);
    let unit = units.iter().max_by_key(|u| u.members.len()).expect("non-empty");
    c.bench_function("memory_estimator/largest_fused_unit", |b| {
        b.iter(|| estimate_peak_memory(&multi, &unit.plan.actions, 32, 1 << 30, 2.0))
    });
}

criterion_group!(
    benches,
    bench_multimodel_build,
    bench_mat_milp,
    bench_plan_given_v,
    bench_fusion,
    bench_memory_estimator
);
criterion_main!(benches);
