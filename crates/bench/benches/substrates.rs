//! Micro-benchmarks for the substrates: tensor kernels, the
//! store with its page-cache ablation, and real training steps.

use nautilus_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nautilus_core::backend::{Backend, BackendKind};
use nautilus_core::config::HardwareProfile;
use nautilus_dnn::exec::{backward, forward, BatchInputs};
use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
use nautilus_models::BuildScale;
use nautilus_store::{SharedIoStats, TensorStore};
use nautilus_tensor::init::{randn, seeded_rng};
use nautilus_tensor::ops::{conv2d, matmul, softmax_last};
use nautilus_tensor::Tensor;
use std::collections::HashMap;

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let mut group = c.benchmark_group("tensor");
    for n in [32usize, 64, 128] {
        let a = randn([n, n], 1.0, &mut rng);
        let b = randn([n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b).unwrap())
        });
    }
    let img = randn([4, 8, 16, 16], 1.0, &mut rng);
    let w = randn([16, 8, 3, 3], 0.1, &mut rng);
    let bias = Tensor::zeros([16]);
    group.bench_function("conv2d/4x8x16x16", |bch| {
        bch.iter(|| conv2d(&img, &w, &bias, 1, 1).unwrap())
    });
    let x = randn([64, 128], 1.0, &mut rng);
    group.bench_function("softmax/64x128", |bch| bch.iter(|| softmax_last(&x)));
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    // Sequential-vs-pooled baseline for the shared work-stealing pool, at
    // sizes past the parallel-dispatch threshold. `with_parallelism_limit(1)`
    // forces inline execution of the identical kernel, so the pair isolates
    // pool dispatch + parallel speedup; outputs are bit-identical by the
    // pool's determinism contract.
    use nautilus_tensor::ops::{matmul_ex, MatmulSpec};
    use nautilus_util::pool;
    let mut rng = seeded_rng(7);
    let mut group = c.benchmark_group("pool");
    let a = randn([128, 256], 1.0, &mut rng);
    let b = randn([256, 256], 1.0, &mut rng);
    group.bench_function("matmul_seq/128x256x256", |bch| {
        bch.iter(|| pool::with_parallelism_limit(1, || matmul_ex(&a, &b, MatmulSpec::plain()).unwrap()))
    });
    group.bench_function("matmul_pooled/128x256x256", |bch| {
        bch.iter(|| matmul_ex(&a, &b, MatmulSpec::plain()).unwrap())
    });
    // A MiniResNet-scale convolution: 8-image batch, 16->32 channels, 32x32.
    let img = randn([8, 16, 32, 32], 1.0, &mut rng);
    let w = randn([32, 16, 3, 3], 0.1, &mut rng);
    let bias = Tensor::zeros([32]);
    group.bench_function("conv2d_seq/8x16x32x32", |bch| {
        bch.iter(|| pool::with_parallelism_limit(1, || conv2d(&img, &w, &bias, 1, 1).unwrap()))
    });
    group.bench_function("conv2d_pooled/8x16x32x32", |bch| {
        bch.iter(|| conv2d(&img, &w, &bias, 1, 1).unwrap())
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    // Blocked-vs-naive kernel quality gate. Both sides run single-task
    // (`gemm_serial` / `gemm_naive`) so the ratio measures the packed
    // microkernel against the triple loop, not pool parallelism.
    // scripts/verify.sh requires blocked >= 1.5x naive at n >= 256.
    use nautilus_tensor::ops::gemm::{self, MatRef};
    let mut rng = seeded_rng(13);
    let mut group = c.benchmark_group("gemm");
    group.sample_size(15);
    for n in [64usize, 256, 512] {
        let a = randn([n, n], 1.0, &mut rng).into_vec();
        let b = randn([n, n], 1.0, &mut rng).into_vec();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                out.fill(0.0);
                gemm::gemm_naive(n, n, n, MatRef::row_major(&a, n), MatRef::row_major(&b, n), &mut out);
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.fill(0.0);
                gemm::gemm_serial(n, n, n, MatRef::row_major(&a, n), MatRef::row_major(&b, n), &mut out);
            })
        });
    }
    group.finish();
}

fn bench_gemm_fma(c: &mut Criterion) {
    // Explicit-FMA microkernel vs the portable safe kernel, both serial so
    // the ratio isolates the register kernel + blocking, not the pool.
    // scripts/verify.sh gates fma >= 1.3x safe at 512^3 via
    // results/BENCH_gemm_fma.json; the fma side is only registered when
    // the host has AVX2+FMA (the gate skips when the id is absent).
    use nautilus_tensor::ops::gemm::{self, KernelKind, MatRef};
    let mut rng = seeded_rng(29);
    let n = 512usize;
    let a = randn([n, n], 1.0, &mut rng).into_vec();
    let b = randn([n, n], 1.0, &mut rng).into_vec();
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("gemm_fma");
    group.sample_size(15);
    group.bench_with_input(BenchmarkId::new("safe", n), &n, |bch, _| {
        bch.iter(|| {
            out.fill(0.0);
            gemm::gemm_serial_with(
                KernelKind::Safe,
                n,
                n,
                n,
                MatRef::row_major(&a, n),
                MatRef::row_major(&b, n),
                &mut out,
            );
        })
    });
    if gemm::fma_supported() {
        group.bench_with_input(BenchmarkId::new("fma", n), &n, |bch, _| {
            bch.iter(|| {
                out.fill(0.0);
                gemm::gemm_serial_with(
                    KernelKind::Fma,
                    n,
                    n,
                    n,
                    MatRef::row_major(&a, n),
                    MatRef::row_major(&b, n),
                    &mut out,
                );
            })
        });
    }
    group.finish();
}

fn bench_int8(c: &mut Criterion) {
    // f32 vs int8 row-quantized serving forward on an MLP at micro-batch
    // scale. Per-record work sits below the parallel-dispatch threshold
    // (the serving regime), so f32 runs the naive/blocked f32 path while
    // int8 runs the i32-accumulate dot kernels over 4x-smaller weights.
    // scripts/verify.sh gates int8 >= 1.2x f32 via results/BENCH_int8.json.
    use nautilus_dnn::exec::forward_batch;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_dnn::quant::{forward_batch_quantized, QuantizedModel};
    use nautilus_dnn::ModelGraph;

    const IN: usize = 256;
    const HIDDEN: usize = 256;
    const OUT: usize = 32;
    const BATCH: usize = 8;

    let mut rng = seeded_rng(31);
    let mut g = ModelGraph::new();
    let inp = g.add_input("features", [IN]);
    let hidden = g
        .add_layer(
            "hidden",
            LayerKind::Dense { in_dim: IN, out_dim: HIDDEN, act: Activation::Relu },
            &[inp],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    let head = g
        .add_layer(
            "head",
            LayerKind::Dense { in_dim: HIDDEN, out_dim: OUT, act: Activation::None },
            &[hidden],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    g.add_output(head).unwrap();
    let quant = QuantizedModel::from_graph(&g, None);

    let mut stacked = BatchInputs::new();
    stacked.insert(inp, randn([BATCH, IN], 1.0, &mut rng));

    let mut group = c.benchmark_group("int8");
    group.bench_function("f32_forward/8", |b| {
        b.iter(|| forward_batch(&g, &stacked, BATCH).unwrap())
    });
    group.bench_function("int8_forward/8", |b| {
        b.iter(|| forward_batch_quantized(&g, &stacked, BATCH, head, &quant, None).unwrap())
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    // Direct scatter loops vs the im2col + packed-GEMM lowering, recorded
    // for the verify report (informational; the hard gate lives on `gemm`).
    use nautilus_tensor::ops::conv::{conv2d_direct, conv2d_im2col};
    let mut rng = seeded_rng(17);
    let mut group = c.benchmark_group("conv");
    group.sample_size(15);
    for (b, ci, co, hw) in [(4usize, 8usize, 16usize, 16usize), (8, 16, 32, 32)] {
        let label = format!("{b}x{ci}x{hw}x{hw}");
        let img = randn([b, ci, hw, hw], 1.0, &mut rng);
        let w = randn([co, ci, 3, 3], 0.1, &mut rng);
        let bias = Tensor::zeros([co]);
        group.bench_function(format!("direct/{label}"), |bch| {
            bch.iter(|| conv2d_direct(&img, &w, &bias, 1, 1).unwrap())
        });
        group.bench_function(format!("im2col/{label}"), |bch| {
            bch.iter(|| conv2d_im2col(&img, &w, &bias, 1, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // Disabled-path overhead gate: a span around a small kernel must cost
    // no more than the untraced kernel (one relaxed atomic load), and the
    // enabled path is measured for the record. scripts/verify.sh compares
    // untraced vs span_disabled minima.
    use nautilus_util::telemetry;
    let mut rng = seeded_rng(11);
    let a = randn([32, 32], 1.0, &mut rng);
    let b = randn([32, 32], 1.0, &mut rng);
    let mut group = c.benchmark_group("telemetry");
    telemetry::disable();
    group.bench_function("untraced/matmul32", |bch| bch.iter(|| matmul(&a, &b).unwrap()));
    group.bench_function("span_disabled/matmul32", |bch| {
        bch.iter(|| {
            let _sp = telemetry::span("bench", "bench.work");
            matmul(&a, &b).unwrap()
        })
    });
    telemetry::enable();
    group.bench_function("span_enabled/matmul32", |bch| {
        bch.iter(|| {
            let _sp = telemetry::span("bench", "bench.work");
            matmul(&a, &b).unwrap()
        })
    });
    telemetry::disable();
    telemetry::reset();
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(20);
    let root = std::env::temp_dir().join(format!("nautilus-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut store = TensorStore::open(&root, SharedIoStats::new()).unwrap();
    let mut rng = seeded_rng(2);
    let batch = randn([64, 32, 32], 1.0, &mut rng);
    store.append("warm", &batch).unwrap();
    group.bench_function("append/64x32x32", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.append(&format!("k{i}"), &batch).unwrap()
        })
    });
    group.bench_function("scan/64x32x32", |b| b.iter(|| store.read_all("warm").unwrap()));
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn bench_prefetch(c: &mut Criterion) {
    // Epoch scans with compute between reads: synchronous store reads vs
    // the double-buffered prefetcher (reads + decodes on I/O threads while
    // the "trainer" computes). scripts/verify.sh gates prefetched <= sync
    // (min-sample, with grace) via results/BENCH_prefetch.json.
    use nautilus_store::{EpochPrefetcher, IoPolicy};
    use nautilus_tensor::ops::matmul;
    use std::hint::black_box;

    const EPOCHS: usize = 4;
    let root = std::env::temp_dir().join(format!("nautilus-bench-prefetch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut store = TensorStore::open(&root, SharedIoStats::new()).unwrap();
    let mut rng = seeded_rng(5);
    let keys: Vec<String> = (0..2).map(|k| format!("feat{k}")).collect();
    for key in &keys {
        for _chunk in 0..2 {
            let batch = randn([128, 32, 32], 1.0, &mut rng);
            store.append(key, &batch).unwrap();
        }
    }
    // Stand-in for a training epoch's compute, sized on the order of the
    // epoch's read+decode work so there is something to overlap with.
    let a = randn([256, 256], 1.0, &mut rng);
    let b_mat = randn([256, 256], 1.0, &mut rng);
    let compute = |feeds: &[Tensor]| {
        black_box(feeds);
        black_box(matmul(&a, &b_mat).unwrap());
    };

    let mut group = c.benchmark_group("prefetch");
    group.sample_size(20);
    store.set_io_policy(IoPolicy { prefetch: false, ..IoPolicy::default() });
    group.bench_function("epoch_scan_sync", |bch| {
        bch.iter(|| {
            let mut pf = EpochPrefetcher::new(&store, &keys, &[], EPOCHS).unwrap();
            for e in 0..EPOCHS {
                compute(&pf.epoch(e).unwrap());
            }
        })
    });
    store.set_io_policy(IoPolicy { prefetch: true, io_threads: 2, ..IoPolicy::default() });
    group.bench_function("epoch_scan_prefetched", |bch| {
        bch.iter(|| {
            let mut pf = EpochPrefetcher::new(&store, &keys, &[], EPOCHS).unwrap();
            for e in 0..EPOCHS {
                compute(&pf.epoch(e).unwrap());
            }
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn bench_pagecache_ablation(c: &mut Criterion) {
    // MAT-ALL's repeated epoch reads: with a cache that fits the working
    // set vs one that thrashes (the Fig 6A mechanism).
    let mut group = c.benchmark_group("pagecache_epoch_reads");
    for (label, cache_bytes) in [("fits", 1u64 << 30), ("thrashes", 1u64 << 20)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let hw = HardwareProfile { page_cache_bytes: cache_bytes, ..Default::default() };
                let mut backend =
                    Backend::new(BackendKind::Simulated, hw, SharedIoStats::new());
                for _epoch in 0..5 {
                    for k in 0..8 {
                        backend.charge_read(&format!("feat{k}"), 4 << 20);
                    }
                }
                backend.elapsed_secs()
            })
        });
    }
    group.finish();
}

fn bench_serve(c: &mut Criterion) {
    use nautilus_dnn::exec::forward_batch;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_dnn::ModelGraph;

    // The shape a micro-batched serving forward pass sees: an MLP head of
    // the size `export_best` produces for small feature-transfer models.
    // Per-record work sits below the parallel-dispatch threshold, so the
    // batched-vs-unbatched ratio measures per-forward overhead
    // amortization (graph walk, allocation, dispatch), not parallelism —
    // which is exactly the win the micro-batcher exists to capture.
    const IN: usize = 16;
    const HIDDEN: usize = 16;
    const OUT: usize = 4;
    const BATCH: usize = 8;

    let mut rng = seeded_rng(9);
    let mut g = ModelGraph::new();
    let inp = g.add_input("features", [IN]);
    let hidden = g
        .add_layer(
            "hidden",
            LayerKind::Dense { in_dim: IN, out_dim: HIDDEN, act: Activation::Relu },
            &[inp],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    let head = g
        .add_layer(
            "head",
            LayerKind::Dense { in_dim: HIDDEN, out_dim: OUT, act: Activation::None },
            &[hidden],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    g.add_output(head).unwrap();

    let records: Vec<Vec<f32>> =
        (0..BATCH).map(|_| randn([IN], 1.0, &mut rng).data().to_vec()).collect();
    let singles: Vec<BatchInputs> = records
        .iter()
        .map(|r| {
            let mut bi = BatchInputs::new();
            bi.insert(inp, Tensor::from_vec([1, IN], r.clone()).unwrap());
            bi
        })
        .collect();
    let mut stacked = BatchInputs::new();
    stacked.insert(
        inp,
        Tensor::from_vec([BATCH, IN], records.iter().flatten().copied().collect::<Vec<f32>>())
            .unwrap(),
    );

    let mut group = c.benchmark_group("serve");
    group.bench_function("unbatched/8", |b| {
        b.iter(|| {
            for bi in &singles {
                forward_batch(&g, bi, 1).unwrap();
            }
        })
    });
    group.bench_function("batched/8", |b| {
        b.iter(|| forward_batch(&g, &stacked, BATCH).unwrap())
    });
    group.finish();
}

fn bench_multitenant(c: &mut Criterion) {
    use nautilus_dnn::exec::{forward_batch, forward_batch_shared_trunk, ParamOverrides, TrunkGroup};
    use nautilus_models::personalize;
    use nautilus_util::rng::Rng;
    use std::sync::Arc;

    // The multi-tenant serving batch shape: 16 adapter variants of one
    // frozen base at the scale a serving head sees (per-record work below
    // the parallel-dispatch threshold, so per-forward overhead matters —
    // the same regime as the `serve` gate). `solo/16` walks each tenant's
    // full standalone graph; `shared_trunk/16` runs the frozen trunk once
    // over the 16-row union batch and only the per-tenant adapter/head
    // suffixes separately — the serving dual of FUSE. scripts/verify.sh
    // gates shared_trunk faster than solo via
    // results/BENCH_multitenant.json.
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_dnn::ModelGraph;

    const TENANTS: usize = 16;
    const DIM: usize = 32;
    let mut grng = seeded_rng(19);
    let mut template = ModelGraph::new();
    let inp = template.add_input("features", [DIM]);
    let mut prev = inp;
    for i in 0..6 {
        prev = template
            .add_layer(
                &format!("trunk{i}"),
                LayerKind::Dense { in_dim: DIM, out_dim: DIM, act: Activation::Gelu },
                &[prev],
                true,
                ParamInit::Seeded(&mut grng),
            )
            .unwrap();
    }
    let ad = template
        .add_layer(
            "adapter",
            LayerKind::Adapter { dim: DIM, bottleneck: 4 },
            &[prev],
            false,
            ParamInit::Seeded(&mut grng),
        )
        .unwrap();
    let head = template
        .add_layer(
            "head",
            LayerKind::Dense { in_dim: DIM, out_dim: 4, act: Activation::None },
            &[ad],
            false,
            ParamInit::Seeded(&mut grng),
        )
        .unwrap();
    template.add_output(head).unwrap();

    let variants: Vec<_> =
        (0..TENANTS as u64).map(|t| personalize(&template, t).unwrap()).collect();
    let input = template.input_ids()[0];
    let output = template.outputs()[0];

    let mut rng = seeded_rng(23);
    let records: Vec<Vec<f32>> = (0..TENANTS)
        .map(|_| (0..DIM).map(|_| rng.gen_f32() * 2.0 - 1.0).collect())
        .collect();
    let singles: Vec<BatchInputs> = records
        .iter()
        .map(|r| {
            let mut bi = BatchInputs::new();
            bi.insert(input, Tensor::from_vec([1, DIM], r.clone()).unwrap());
            bi
        })
        .collect();
    let stacked = Tensor::from_vec(
        [TENANTS, DIM],
        records.iter().flatten().copied().collect::<Vec<f32>>(),
    )
    .unwrap();
    let overrides: Vec<ParamOverrides> = variants
        .iter()
        .map(|v| {
            v.ids()
                .filter(|&id| v.node(id).trainable())
                .map(|id| (id, Arc::new(v.node(id).params.clone())))
                .collect()
        })
        .collect();
    let groups: Vec<TrunkGroup> =
        overrides.iter().map(|o| TrunkGroup { rows: 1, overrides: Some(o) }).collect();

    let mut group = c.benchmark_group("multitenant");
    group.sample_size(15);
    group.bench_function("solo/16", |b| {
        b.iter(|| {
            for (v, bi) in variants.iter().zip(&singles) {
                forward_batch(v, bi, 1).unwrap();
            }
        })
    });
    group.bench_function("shared_trunk/16", |b| {
        b.iter(|| {
            forward_batch_shared_trunk(&template, input, output, stacked.clone(), &groups)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let cfg = BertConfig::tiny(8, 40);
    let graph =
        feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 5, BuildScale::Real).unwrap();
    let input = graph.input_ids()[0];
    let out = graph.outputs()[0];
    let mut rng = seeded_rng(3);
    use nautilus_util::rng::Rng;
    let ids: Vec<f32> = (0..8 * 8).map(|_| rng.gen_range(0..40) as f32).collect();
    let mut inputs = BatchInputs::new();
    inputs.insert(input, Tensor::from_vec([8, 8], ids).unwrap());
    let targets: Vec<i64> = (0..64).map(|i| (i % 5) as i64).collect();

    c.bench_function("train_step/tiny_bert_batch8", |b| {
        b.iter(|| {
            let fwd = forward(&graph, &inputs, true).unwrap();
            let (_, grad) =
                nautilus_tensor::ops::cross_entropy_logits(fwd.output(out), &targets).unwrap();
            let mut og = HashMap::new();
            og.insert(out, grad);
            backward(&graph, &fwd, og).unwrap()
        })
    });
    c.bench_function("inference/tiny_bert_batch8", |b| {
        b.iter(|| forward(&graph, &inputs, false).unwrap())
    });
}

criterion_group!(
    benches,
    bench_tensor_kernels,
    bench_gemm,
    bench_gemm_fma,
    bench_int8,
    bench_conv,
    bench_pool,
    bench_telemetry,
    bench_serve,
    bench_multitenant,
    bench_store,
    bench_prefetch,
    bench_pagecache_ablation,
    bench_training_step
);
criterion_main!(benches);
