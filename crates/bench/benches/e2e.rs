//! End-to-end benchmark: one full labeling cycle (materialize +
//! train + evaluate) on the real backend, per execution strategy — the
//! wall-clock ablation behind the quickstart example's numbers.

use nautilus_util::bench::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nautilus_core::session::{CycleInput, ModelSelection};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::{BackendKind, Strategy, SystemConfig};

fn bench_cycle(c: &mut Criterion) {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(4);
    let pool = spec.ner_config().generate(40);

    let mut group = c.benchmark_group("e2e_cycle_4_models");
    group.sample_size(10);
    for strategy in [Strategy::CurrentPractice, Strategy::MatOnly, Strategy::FuseOnly, Strategy::Nautilus] {
        group.bench_function(BenchmarkId::from_parameter(strategy.label()), |b| {
            b.iter_batched(
                || {
                    let workdir = std::env::temp_dir().join(format!(
                        "nautilus-bench-e2e-{}-{}",
                        strategy.label().replace('/', "_"),
                        std::process::id()
                    ));
                    let _ = std::fs::remove_dir_all(&workdir);
                    ModelSelection::new(
                        candidates.clone(),
                        SystemConfig::tiny(),
                        strategy,
                        BackendKind::Real,
                        workdir,
                    )
                    .expect("session initializes")
                },
                |mut session| {
                    let (train, valid) = pool.split_at(32);
                    session.fit(CycleInput::Real { train, valid }).expect("cycle runs")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
