//! End-to-end workload runner for the simulated backend.

use nautilus_core::metrics::{CycleReport, InitReport, RunStats};
use nautilus_core::session::{CycleInput, ModelSelection, SessionError};
use nautilus_core::spec::CandidateModel;
use nautilus_core::workloads::WorkloadSpec;
use nautilus_core::{BackendKind, Strategy, SystemConfig};
use nautilus_util::json_struct;

/// Knobs for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Execution strategy.
    pub strategy: Strategy,
    /// System configuration (budgets, hardware).
    pub config: SystemConfig,
    /// Labeling cycles to run.
    pub cycles: usize,
    /// `(train, valid)` records labeled per cycle.
    pub records_per_cycle: (usize, usize),
}

impl RunConfig {
    /// Paper defaults for a workload spec and strategy.
    pub fn paper(spec: &WorkloadSpec, strategy: Strategy) -> Self {
        RunConfig {
            strategy,
            config: SystemConfig::default(),
            cycles: spec.cycles(),
            records_per_cycle: spec.records_per_cycle(),
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Strategy label.
    pub strategy: String,
    /// Initialization report.
    pub init: InitReport,
    /// Per-cycle reports.
    pub cycles: Vec<CycleReport>,
    /// Final cumulative statistics.
    pub stats: RunStats,
    /// Total model-selection seconds (init + all cycles).
    pub total_secs: f64,
    /// MILP solve stats `(vars, constraints, nodes, millis)` when run.
    pub milp: Option<(usize, usize, u64, u128)>,
}

json_struct!(WorkloadRun { strategy, init, cycles, stats, total_secs, milp });

impl WorkloadRun {
    /// Sum of per-cycle model-selection seconds (excluding init).
    pub fn cycles_secs(&self) -> f64 {
        self.cycles.iter().map(|c| c.cycle_secs).sum()
    }
}

/// Runs `candidates` under `run` on the simulated backend.
pub fn run_workload(
    candidates: Vec<CandidateModel>,
    run: &RunConfig,
) -> Result<WorkloadRun, SessionError> {
    let workdir = std::env::temp_dir().join(format!(
        "nautilus-bench-{}-{}-{:?}",
        run.strategy.label().replace('/', "_"),
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&workdir);
    let mut session = ModelSelection::new(
        candidates,
        run.config.clone(),
        run.strategy,
        BackendKind::Simulated,
        &workdir,
    )?;
    let init = session.init_report();
    let milp = session
        .milp_stats()
        .map(|m| (m.num_vars, m.num_constraints, m.nodes, m.elapsed.as_millis()));
    let (tr, va) = run.records_per_cycle;
    let mut cycles = Vec::with_capacity(run.cycles);
    for _ in 0..run.cycles {
        cycles.push(session.fit(CycleInput::Virtual { n_train: tr, n_valid: va })?);
    }
    let stats = session.stats();
    let _ = std::fs::remove_dir_all(&workdir);
    Ok(WorkloadRun {
        strategy: run.strategy.label().to_string(),
        init,
        cycles,
        stats,
        total_secs: stats.elapsed_secs,
        milp,
    })
}
