//! Output helpers: aligned text tables and JSON result files.

use nautilus_util::json::{self, ToJson};
use std::path::PathBuf;

/// Directory where figure binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NAUTILUS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` to `results/<name>.json`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = json::to_string_pretty(value);
    std::fs::write(&path, json).expect("write results file");
    println!("\n[written {}]", path.display());
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{c:>w$}  ", w = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!("{}", widths.iter().map(|w| "-".repeat(*w + 2)).collect::<String>());
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats seconds as minutes with one decimal (the paper's figure axes).
pub fn mins(secs: f64) -> String {
    format!("{:.1}", secs / 60.0)
}

/// Formats a speedup factor.
pub fn speedup(baseline: f64, value: f64) -> String {
    if value <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}x", baseline / value)
    }
}

/// Formats bytes as GB.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(mins(90.0), "1.5");
        assert_eq!(speedup(100.0, 20.0), "5.0x");
        assert_eq!(speedup(100.0, 0.0), "-");
        assert_eq!(gb(2_500_000_000), "2.50");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".to_string()]);
    }
}
