//! Table 3: model-selection configurations of the five workloads.

use nautilus_bench::harness::{write_json, Table};
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_util::json_struct;

struct Table3Row {
    workload: String,
    approach: String,
    tuning: String,
    batch_sizes: Vec<usize>,
    learning_rates: Vec<f64>,
    epochs: Vec<usize>,
    num_models: usize,
    graph_groups: usize,
    merged_nodes: usize,
}

json_struct!(Table3Row { workload, approach, tuning, batch_sizes, learning_rates, epochs, num_models, graph_groups, merged_nodes });

fn main() {
    let mut table = Table::new(&[
        "workload",
        "transfer approach",
        "batch",
        "lr (x1e-5)",
        "epochs",
        "# models",
    ]);
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec { kind, scale: Scale::Paper };
        let candidates = spec.candidates().expect("workload builds");
        let multi = MultiModelGraph::build(&candidates);
        let (approach, tuning) = match kind {
            WorkloadKind::Ftr1 => (
                "feature transfer",
                "from {embedding, 2nd-last, last, sum-last-4, concat-last-4, sum-all}",
            ),
            WorkloadKind::Ftr2 => {
                ("feature transfer", "from {2nd-last, last, sum-last-4, concat-last-4}")
            }
            WorkloadKind::Ftr3 => ("feature transfer", "from {concat-last-4}"),
            WorkloadKind::Atr => ("adapter training", "adapters on last {1, 2, 3, 4} hidden"),
            WorkloadKind::Ftu => ("fine-tuning", "last {3, 6, 9, 12} residual blocks"),
        };
        let mut batches: Vec<usize> =
            candidates.iter().map(|c| c.hyper.batch_size).collect();
        batches.sort_unstable();
        batches.dedup();
        let mut lrs: Vec<f64> =
            candidates.iter().map(|c| c.hyper.optimizer.lr() as f64 * 1e5).collect();
        lrs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        lrs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut epochs: Vec<usize> = candidates.iter().map(|c| c.hyper.epochs).collect();
        epochs.sort_unstable();
        epochs.dedup();

        table.row(&[
            kind.name().to_string(),
            approach.to_string(),
            format!("{batches:?}"),
            format!("{:?}", lrs.iter().map(|x| x.round() as i64).collect::<Vec<_>>()),
            format!("{epochs:?}"),
            candidates.len().to_string(),
        ]);
        rows.push(Table3Row {
            workload: kind.name().to_string(),
            approach: approach.to_string(),
            tuning: tuning.to_string(),
            batch_sizes: batches,
            learning_rates: lrs,
            epochs,
            num_models: candidates.len(),
            graph_groups: multi.interchangeable_groups().len(),
            merged_nodes: multi.nodes.len(),
        });
    }
    println!("Table 3: model selection configurations\n");
    table.print();
    println!("\n(plus multi-model graph stats per workload: see JSON)");
    write_json("table3", &rows);
}
