//! Planner scalability drill-down (§4.2.2 / §5.3): optimizer cost as the
//! model-selection workload grows well past the paper's largest (36
//! models). Reports multi-model-graph construction, the materialization
//! MILP (grouped and raw per-model formulations), and the fusion pass.

use nautilus_bench::harness::{write_json, Table};
use nautilus_core::fusion::fuse_models;
use nautilus_core::mat_opt::choose_materialization_grouped;
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::spec::{expand_grid, CandidateModel, ParamAssignment, SearchGrid};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::SystemConfig;
use nautilus_util::json_struct;
use std::time::Instant;

fn candidates(n_lrs: usize) -> Vec<CandidateModel> {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let lrs: Vec<f64> = (0..n_lrs).map(|i| 5e-5 / (1.0 + i as f64 * 0.25)).collect();
    let grid = SearchGrid::new()
        .with_nums("batch", &[16.0, 32.0])
        .with_nums("lr", &lrs)
        .with_nums("epochs", &[5.0])
        .with_strs(
            "strategy",
            &["second-last-hidden", "last-hidden", "sum-last-4", "concat-last-4"],
        );
    expand_grid(&grid, &move |a: &ParamAssignment| spec.init_candidate(a))
        .expect("workload builds")
}

struct ScalingRow {
    num_models: usize,
    graph_groups: usize,
    merged_nodes: usize,
    build_ms: f64,
    milp_grouped_ms: f64,
    milp_grouped_vars: usize,
    milp_per_model_ms: f64,
    milp_per_model_vars: usize,
    fusion_ms: f64,
    fused_units: usize,
}

json_struct!(ScalingRow { num_models, graph_groups, merged_nodes, build_ms, milp_grouped_ms, milp_grouped_vars, milp_per_model_ms, milp_per_model_vars, fusion_ms, fused_units });

fn main() {
    let cfg = SystemConfig::default();
    let mut table = Table::new(&[
        "# models",
        "groups",
        "merged nodes",
        "graph build (ms)",
        "MILP grouped (ms / vars)",
        "MILP per-model (ms / vars)",
        "fusion (ms)",
        "units",
    ]);
    let mut rows = Vec::new();
    for n_lrs in [2usize, 3, 6, 12] {
        let cands = candidates(n_lrs);

        let t0 = Instant::now();
        let multi = MultiModelGraph::build(&cands);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let grouped = choose_materialization_grouped(&multi, &cands, &cfg, 10_000, true);
        let per_model = choose_materialization_grouped(&multi, &cands, &cfg, 10_000, false);
        assert_eq!(
            grouped.materialized, per_model.materialized,
            "grouping must not change the optimum"
        );

        let t0 = Instant::now();
        let units = fuse_models(&multi, &cands, &grouped.materialized, &cfg, true);
        let fusion_ms = t0.elapsed().as_secs_f64() * 1e3;

        table.row(&[
            cands.len().to_string(),
            grouped.groups.to_string(),
            multi.nodes.len().to_string(),
            format!("{build_ms:.1}"),
            format!(
                "{:.1} / {}",
                grouped.milp.elapsed.as_secs_f64() * 1e3,
                grouped.milp.num_vars
            ),
            format!(
                "{:.1} / {}",
                per_model.milp.elapsed.as_secs_f64() * 1e3,
                per_model.milp.num_vars
            ),
            format!("{fusion_ms:.1}"),
            units.len().to_string(),
        ]);
        rows.push(ScalingRow {
            num_models: cands.len(),
            graph_groups: grouped.groups,
            merged_nodes: multi.nodes.len(),
            build_ms,
            milp_grouped_ms: grouped.milp.elapsed.as_secs_f64() * 1e3,
            milp_grouped_vars: grouped.milp.num_vars,
            milp_per_model_ms: per_model.milp.elapsed.as_secs_f64() * 1e3,
            milp_per_model_vars: per_model.milp.num_vars,
            fusion_ms,
            fused_units: units.len(),
        });
    }
    println!("Planner scalability (FTR-2 architecture family, growing learning-rate grid)\n");
    table.print();
    println!(
        "\n(grouped and per-model MILPs agree on the optimum at every size; the \
         paper reports 'few 10s of seconds' for Gurobi at 36 models)"
    );
    write_json("planner_scaling", &rows);
}
