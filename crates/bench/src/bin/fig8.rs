//! Figure 8: contribution of each optimization — Nautilus with the
//! materialization (MAT OPT) or fusion (FUSE OPT) optimization disabled,
//! across all five workloads.

use nautilus_bench::harness::{write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig8Row {
    workload: String,
    nautilus_mins: f64,
    without_mat_mins: f64,
    without_fuse_mins: f64,
    slowdown_without_mat_pct: f64,
    slowdown_without_fuse_pct: f64,
}

json_struct!(Fig8Row { workload, nautilus_mins, without_mat_mins, without_fuse_mins, slowdown_without_mat_pct, slowdown_without_fuse_pct });

fn main() {
    let mut table = Table::new(&[
        "workload",
        "Nautilus (min)",
        "w/o MAT OPT (min)",
        "w/o FUSE OPT (min)",
        "w/o MAT slowdown",
        "w/o FUSE slowdown",
    ]);
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec { kind, scale: Scale::Paper };
        let candidates = spec.candidates().expect("workload builds");
        let mut t = std::collections::BTreeMap::new();
        for strategy in [Strategy::Nautilus, Strategy::FuseOnly, Strategy::MatOnly] {
            let run = run_workload(candidates.clone(), &RunConfig::paper(&spec, strategy))
                .expect("run completes");
            t.insert(strategy.label().to_string(), run.total_secs);
        }
        let full = t["nautilus"];
        let wo_mat = t["nautilus-w/o-mat"]; // fusion only
        let wo_fuse = t["nautilus-w/o-fuse"]; // materialization only
        table.row(&[
            kind.name().to_string(),
            format!("{:.1}", full / 60.0),
            format!("{:.1}", wo_mat / 60.0),
            format!("{:.1}", wo_fuse / 60.0),
            format!("{:+.1}%", (wo_mat / full - 1.0) * 100.0),
            format!("{:+.1}%", (wo_fuse / full - 1.0) * 100.0),
        ]);
        rows.push(Fig8Row {
            workload: kind.name().to_string(),
            nautilus_mins: full / 60.0,
            without_mat_mins: wo_mat / 60.0,
            without_fuse_mins: wo_fuse / 60.0,
            slowdown_without_mat_pct: (wo_mat / full - 1.0) * 100.0,
            slowdown_without_fuse_pct: (wo_fuse / full - 1.0) * 100.0,
        });
    }
    println!("Figure 8: model selection time with and without MAT/FUSE optimizations\n");
    table.print();
    println!(
        "\n(combining both optimizations always achieves the lowest runtime; the \
         dominant single optimization varies by workload, as in the paper)"
    );
    write_json("fig8", &rows);
}
