//! Runs every table/figure regenerator in sequence.
//!
//! `cargo run --release -p nautilus-bench --bin run_all`

use std::process::Command;

fn main() {
    let bins = [
        "table3", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10", "fig11",
        "milp_stats", "planner_scaling",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nall experiments completed; JSON results in ./results/");
}
