//! Figure 11: system resource utilization executing FTR-2 — average
//! compute ("GPU") utilization and cumulative disk reads/writes, Current
//! Practice versus Nautilus.

use nautilus_bench::harness::{gb, write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig11Row {
    strategy: String,
    utilization_pct: f64,
    disk_read_gb: f64,
    disk_write_gb: f64,
    cached_read_gb: f64,
}

json_struct!(Fig11Row { strategy, utilization_pct, disk_read_gb, disk_write_gb, cached_read_gb });

fn main() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let candidates = spec.candidates().expect("workload builds");

    let mut table = Table::new(&[
        "strategy",
        "avg compute util",
        "disk reads (GB)",
        "disk writes (GB)",
        "cache-served reads (GB)",
    ]);
    let mut rows = Vec::new();
    let mut by_label = std::collections::BTreeMap::new();
    for strategy in [Strategy::CurrentPractice, Strategy::Nautilus] {
        let run = run_workload(candidates.clone(), &RunConfig::paper(&spec, strategy))
            .expect("run completes");
        let s = run.stats;
        table.row(&[
            strategy.label().to_string(),
            format!("{:.0}%", s.utilization() * 100.0),
            gb(s.disk_read_bytes),
            gb(s.disk_write_bytes),
            gb(s.cached_read_bytes),
        ]);
        by_label.insert(strategy.label().to_string(), s);
        rows.push(Fig11Row {
            strategy: strategy.label().to_string(),
            utilization_pct: s.utilization() * 100.0,
            disk_read_gb: s.disk_read_bytes as f64 / 1e9,
            disk_write_gb: s.disk_write_bytes as f64 / 1e9,
            cached_read_gb: s.cached_read_bytes as f64 / 1e9,
        });
    }
    println!("Figure 11: FTR-2 resource utilization\n");
    table.print();
    let cp = &by_label["current-practice"];
    let na = &by_label["nautilus"];
    println!(
        "\nNautilus performs {:.1}x fewer disk writes and {:.1}x fewer disk reads than \
         Current Practice (paper: 4.3x / 11.8x), with higher average compute utilization \
         ({:.0}% vs {:.0}%; paper: 66% vs 57%).",
        cp.disk_write_bytes as f64 / na.disk_write_bytes.max(1) as f64,
        cp.disk_read_bytes as f64 / na.disk_read_bytes.max(1) as f64,
        na.utilization() * 100.0,
        cp.utilization() * 100.0,
    );
    write_json("fig11", &rows);
}
