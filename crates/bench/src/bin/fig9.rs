//! Figure 9: model-selection time versus the number of candidate models
//! (FTR-2 fixed to concat-last-4 at batch 16, varying the number of
//! explored learning rates), with and without each optimization.

use nautilus_bench::harness::{write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig9Row {
    num_models: usize,
    nautilus_mins: f64,
    without_mat_mins: f64,
    without_fuse_mins: f64,
    current_practice_mins: f64,
}

json_struct!(Fig9Row { num_models, nautilus_mins, without_mat_mins, without_fuse_mins, current_practice_mins });

fn main() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let mut table = Table::new(&[
        "# models",
        "current practice (min)",
        "w/o MAT (min)",
        "w/o FUSE (min)",
        "Nautilus (min)",
    ]);
    let mut rows = Vec::new();
    for n in [1usize, 2, 3, 4, 5, 6] {
        let candidates = spec.ftr2_vary_models(n).expect("workload builds");
        let mut t = std::collections::BTreeMap::new();
        for strategy in
            [Strategy::CurrentPractice, Strategy::FuseOnly, Strategy::MatOnly, Strategy::Nautilus]
        {
            let run = run_workload(candidates.clone(), &RunConfig::paper(&spec, strategy))
                .expect("run completes");
            t.insert(strategy.label().to_string(), run.total_secs);
        }
        table.row(&[
            n.to_string(),
            format!("{:.1}", t["current-practice"] / 60.0),
            format!("{:.1}", t["nautilus-w/o-mat"] / 60.0),
            format!("{:.1}", t["nautilus-w/o-fuse"] / 60.0),
            format!("{:.1}", t["nautilus"] / 60.0),
        ]);
        rows.push(Fig9Row {
            num_models: n,
            nautilus_mins: t["nautilus"] / 60.0,
            without_mat_mins: t["nautilus-w/o-mat"] / 60.0,
            without_fuse_mins: t["nautilus-w/o-fuse"] / 60.0,
            current_practice_mins: t["current-practice"] / 60.0,
        });
    }
    println!("Figure 9: model selection time vs number of models\n");
    table.print();
    println!(
        "\n(with 1 model FUSE OPT gives no benefit; as models grow, running \
         without FUSE OPT costs increasingly more than running without MAT OPT)"
    );
    write_json("fig9", &rows);
}
