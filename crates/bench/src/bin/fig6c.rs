//! Figure 6(C): total FTR-2 workload time (model selection + data
//! labeling) as the per-record labeling cost varies from 0.5 s (multi-
//! labeler) to 8 s (single labeler).

use nautilus_bench::harness::{write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig6cRow {
    secs_per_label: f64,
    current_practice_mins: f64,
    nautilus_mins: f64,
    speedup: f64,
}

json_struct!(Fig6cRow { secs_per_label, current_practice_mins, nautilus_mins, speedup });

fn main() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let candidates = spec.candidates().expect("workload builds");

    // Model selection time is independent of labeling cost: run each
    // strategy once and add labeling time analytically (labeling happens
    // between cycles, serial with selection, exactly as in §5.1).
    let mut selection = std::collections::BTreeMap::new();
    for strategy in [Strategy::CurrentPractice, Strategy::Nautilus] {
        let run = run_workload(candidates.clone(), &RunConfig::paper(&spec, strategy))
            .expect("run completes");
        selection.insert(strategy.label().to_string(), run.total_secs);
    }
    let (tr, va) = spec.records_per_cycle();
    let labels_total = (spec.cycles() * (tr + va)) as f64;

    let mut table = Table::new(&[
        "labeling (s/record)",
        "current practice (min)",
        "Nautilus (min)",
        "speedup",
    ]);
    let mut rows = Vec::new();
    for secs_per_label in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let labeling = labels_total * secs_per_label;
        let cp = selection["current-practice"] + labeling;
        let na = selection["nautilus"] + labeling;
        table.row(&[
            format!("{secs_per_label}"),
            format!("{:.1}", cp / 60.0),
            format!("{:.1}", na / 60.0),
            format!("{:.1}x", cp / na),
        ]);
        rows.push(Fig6cRow {
            secs_per_label,
            current_practice_mins: cp / 60.0,
            nautilus_mins: na / 60.0,
            speedup: cp / na,
        });
    }
    println!("Figure 6(C): FTR-2 total workload time including labeling\n");
    table.print();
    println!(
        "\n(the speedup decays from the pure model-selection ratio toward 1x as \
         labeling dominates, as in the paper: 3.9x at 0.5 s/label -> 1.5x at 8 s/label)"
    );
    write_json("fig6c", &rows);
}
