//! Figure 10: (A) MAT-OPT-only FTR-2 runtime versus the disk storage
//! budget `Bdisk`; (B) FUSE-OPT-only runtime versus the runtime memory
//! budget `Bmem`. Zero budget is equivalent to Current Practice; both
//! curves plateau once their budget stops binding.

use nautilus_bench::harness::{write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct SweepPoint {
    budget_gb: f64,
    mins: f64,
    speedup_vs_current_practice: f64,
}

json_struct!(SweepPoint { budget_gb, mins, speedup_vs_current_practice });

struct Fig10Out {
    current_practice_mins: f64,
    mat_sweep: Vec<SweepPoint>,
    fuse_sweep: Vec<SweepPoint>,
}

json_struct!(Fig10Out { current_practice_mins, mat_sweep, fuse_sweep });

fn main() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let candidates = spec.candidates().expect("workload builds");

    let cp = run_workload(
        candidates.clone(),
        &RunConfig::paper(&spec, Strategy::CurrentPractice),
    )
    .expect("run completes")
    .total_secs;

    println!("Figure 10(A): MAT OPT only, FTR-2 runtime vs storage budget Bdisk\n");
    let mut table_a = Table::new(&["Bdisk (GB)", "runtime (min)", "speedup"]);
    let mut mat_sweep = Vec::new();
    for gb in [0.0f64, 2.5, 5.0, 7.5, 10.0, 15.0, 25.0] {
        let mut rc = RunConfig::paper(&spec, Strategy::MatOnly);
        rc.config.disk_budget_bytes = (gb * 1e9) as u64;
        let t = run_workload(candidates.clone(), &rc).expect("run completes").total_secs;
        table_a.row(&[
            format!("{gb}"),
            format!("{:.1}", t / 60.0),
            format!("{:.1}x", cp / t),
        ]);
        mat_sweep.push(SweepPoint { budget_gb: gb, mins: t / 60.0, speedup_vs_current_practice: cp / t });
    }
    table_a.print();

    println!("\nFigure 10(B): FUSE OPT only, FTR-2 runtime vs memory budget Bmem\n");
    let mut table_b = Table::new(&["Bmem (GB)", "runtime (min)", "speedup"]);
    let mut fuse_sweep = Vec::new();
    for gb in [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0] {
        let mut rc = RunConfig::paper(&spec, Strategy::FuseOnly);
        rc.config.memory_budget_bytes = (gb * 1e9) as u64;
        let t = run_workload(candidates.clone(), &rc).expect("run completes").total_secs;
        table_b.row(&[
            format!("{gb}"),
            format!("{:.1}", t / 60.0),
            format!("{:.1}x", cp / t),
        ]);
        fuse_sweep.push(SweepPoint { budget_gb: gb, mins: t / 60.0, speedup_vs_current_practice: cp / t });
    }
    table_b.print();
    println!("\n(current practice: {:.1} min; fused plans never exceed Bmem — the memory \
         estimator's bound prevents OOM crashes, §5.3)", cp / 60.0);

    write_json(
        "fig10",
        &Fig10Out { current_practice_mins: cp / 60.0, mat_sweep, fuse_sweep },
    );
}
