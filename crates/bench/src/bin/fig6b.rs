//! Figure 6(B): FTR-2 model-selection time broken down by cycle (odd
//! cycles shown, as in the paper) plus the workload-initialization split.

use nautilus_bench::harness::{write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig6bOut {
    strategies: Vec<String>,
    init_secs: Vec<f64>,
    init_breakdown: Vec<(String, f64)>,
    per_cycle_secs: Vec<Vec<f64>>,
    per_cycle_speedup: Vec<f64>,
}

json_struct!(Fig6bOut { strategies, init_secs, init_breakdown, per_cycle_secs, per_cycle_speedup });

fn main() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let candidates = spec.candidates().expect("workload builds");

    let mut runs = Vec::new();
    for strategy in [Strategy::CurrentPractice, Strategy::Nautilus] {
        runs.push(
            run_workload(candidates.clone(), &RunConfig::paper(&spec, strategy))
                .expect("run completes"),
        );
    }
    let (cp, na) = (&runs[0], &runs[1]);

    println!("Figure 6(B): FTR-2 per-cycle model selection time\n");
    let mut table =
        Table::new(&["cycle", "current practice (min)", "Nautilus (min)", "speedup"]);
    table.row(&[
        "init".to_string(),
        format!("{:.1}", cp.init.total_secs / 60.0),
        format!("{:.1}", na.init.total_secs / 60.0),
        "-".to_string(),
    ]);
    let mut per_cycle = vec![Vec::new(), Vec::new()];
    let mut speedups = Vec::new();
    for i in 0..cp.cycles.len() {
        let a = cp.cycles[i].cycle_secs;
        let b = na.cycles[i].cycle_secs;
        per_cycle[0].push(a);
        per_cycle[1].push(b);
        speedups.push(a / b);
        if (i + 1) % 2 == 1 {
            table.row(&[
                format!("{}", i + 1),
                format!("{:.1}", a / 60.0),
                format!("{:.1}", b / 60.0),
                format!("{:.1}x", a / b),
            ]);
        }
    }
    table.print();

    let nb = &na.init;
    println!("\nNautilus workload-initialization breakdown:");
    let total = nb.total_secs.max(1e-9);
    let breakdown = vec![
        ("original model checkpoints".to_string(), nb.original_checkpoints_secs),
        ("profiling".to_string(), nb.profiling_secs),
        ("optimized plan generation".to_string(), nb.optimize_secs),
        ("optimized plan checkpoints".to_string(), nb.plan_checkpoints_secs),
    ];
    for (name, secs) in &breakdown {
        println!("  {name:32} {secs:7.2}s ({:4.1}%)", secs / total * 100.0);
    }
    println!(
        "  current-practice init: {:.2}s; Nautilus init: {:.2}s",
        cp.init.total_secs, nb.total_secs
    );

    write_json(
        "fig6b",
        &Fig6bOut {
            strategies: vec![cp.strategy.clone(), na.strategy.clone()],
            init_secs: vec![cp.init.total_secs, na.init.total_secs],
            init_breakdown: breakdown,
            per_cycle_secs: per_cycle,
            per_cycle_speedup: speedups,
        },
    );
}
