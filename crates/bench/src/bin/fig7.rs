//! Figure 7: best validation accuracy versus elapsed time, Current
//! Practice vs Nautilus, with (A) zero and (B) 4 seconds/label labeling
//! cost.
//!
//! This is the one runtime experiment that *must* train for real (accuracy
//! cannot be simulated), so it runs the FTR-2 workload at tiny scale on
//! the real backend. Both approaches reach identical accuracies at every
//! cycle (logical equivalence of the optimized plans); Nautilus gets there
//! faster.

use nautilus_bench::harness::{write_json, Table};
use nautilus_core::session::{CycleInput, ModelSelection};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::{BackendKind, Strategy, SystemConfig};
use nautilus_util::json_struct;

const CYCLES: usize = 5;
const TRAIN_PER_CYCLE: usize = 32;
const VALID_PER_CYCLE: usize = 8;
const MODELS: usize = 8;

struct CurvePoint {
    cycle: usize,
    elapsed_secs: f64,
    best_accuracy: f32,
}

json_struct!(CurvePoint { cycle, elapsed_secs, best_accuracy });

struct Fig7Out {
    labeling_secs_per_record: f64,
    current_practice: Vec<CurvePoint>,
    nautilus: Vec<CurvePoint>,
}

json_struct!(Fig7Out { labeling_secs_per_record, current_practice, nautilus });

fn run_strategy(strategy: Strategy) -> Vec<CurvePoint> {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(MODELS);
    let workdir = std::env::temp_dir().join(format!("nautilus-fig7-{}", strategy.label()));
    let _ = std::fs::remove_dir_all(&workdir);
    let mut session = ModelSelection::new(
        candidates,
        SystemConfig::tiny(),
        strategy,
        BackendKind::Real,
        &workdir,
    )
    .expect("session initializes");
    let pool = spec.ner_config().generate(CYCLES * (TRAIN_PER_CYCLE + VALID_PER_CYCLE));
    let t0 = std::time::Instant::now();
    let mut out = Vec::new();
    for cycle in 0..CYCLES {
        let n = TRAIN_PER_CYCLE + VALID_PER_CYCLE;
        let batch = pool.range(cycle * n, (cycle + 1) * n);
        let (train, valid) = batch.split_at(TRAIN_PER_CYCLE);
        let report = session.fit(CycleInput::Real { train, valid }).expect("cycle runs");
        out.push(CurvePoint {
            cycle: cycle + 1,
            elapsed_secs: t0.elapsed().as_secs_f64(),
            best_accuracy: report.best.expect("real backend reports accuracy").1,
        });
    }
    out
}

fn main() {
    println!(
        "Figure 7: learning curves (FTR-2, tiny scale, {MODELS} models, real training)\n"
    );
    let cp = run_strategy(Strategy::CurrentPractice);
    let na = run_strategy(Strategy::Nautilus);

    // (B)'s per-label cost is scaled to the tiny workload: model-selection
    // time here is ~100x faster than at paper scale, so 0.02 s/label plays
    // the role of the paper's 4 s/label (labeling comparable to selection).
    for (label, labeling) in
        [("(A) zero labeling cost", 0.0f64), ("(B) 0.02 s/label (= 4 s/label at paper scale)", 0.02)]
    {
        println!("{label}:");
        let mut table = Table::new(&[
            "cycle",
            "best val acc",
            "current practice elapsed (s)",
            "Nautilus elapsed (s)",
            "speedup",
        ]);
        for (a, b) in cp.iter().zip(&na) {
            assert_eq!(
                a.best_accuracy, b.best_accuracy,
                "logical equivalence: accuracies must match exactly"
            );
            let lab = labeling * ((TRAIN_PER_CYCLE + VALID_PER_CYCLE) * a.cycle) as f64;
            let ta = a.elapsed_secs + lab;
            let tb = b.elapsed_secs + lab;
            table.row(&[
                a.cycle.to_string(),
                format!("{:.3}", a.best_accuracy),
                format!("{ta:.1}"),
                format!("{tb:.1}"),
                format!("{:.1}x", ta / tb),
            ]);
        }
        table.print();
        println!();
        write_json(
            if labeling == 0.0 { "fig7a" } else { "fig7b" },
            &Fig7Out {
                labeling_secs_per_record: labeling,
                current_practice: cp
                    .iter()
                    .map(|p| CurvePoint {
                        cycle: p.cycle,
                        elapsed_secs: p.elapsed_secs
                            + labeling * ((TRAIN_PER_CYCLE + VALID_PER_CYCLE) * p.cycle) as f64,
                        best_accuracy: p.best_accuracy,
                    })
                    .collect(),
                nautilus: na
                    .iter()
                    .map(|p| CurvePoint {
                        cycle: p.cycle,
                        elapsed_secs: p.elapsed_secs
                            + labeling * ((TRAIN_PER_CYCLE + VALID_PER_CYCLE) * p.cycle) as f64,
                        best_accuracy: p.best_accuracy,
                    })
                    .collect(),
            },
        );
    }
    println!("(both curves reach identical accuracies every cycle — the Fig 7 claim — \
         with Nautilus ahead in elapsed time)");
}
