//! Figure 6(A): total model-selection time for Current Practice, MAT-ALL,
//! Nautilus, and FLOPs-Optimal across all five workloads (simulated
//! backend, paper scale: 10 cycles × 500 records, Bdisk 25 GB, Bmem 10 GB).
//!
//! Also reports the §5.1 cloud-cost estimate for FTR-1.

use nautilus_bench::harness::{mins, speedup, write_json, Table};
use nautilus_bench::{run_workload, RunConfig};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_util::json_struct;

struct Fig6aRow {
    workload: String,
    current_practice_mins: f64,
    mat_all_mins: f64,
    nautilus_mins: f64,
    flops_optimal_mins: f64,
    nautilus_speedup: f64,
    mat_all_speedup: f64,
    theoretical_speedup: f64,
}

json_struct!(Fig6aRow { workload, current_practice_mins, mat_all_mins, nautilus_mins, flops_optimal_mins, nautilus_speedup, mat_all_speedup, theoretical_speedup });

fn main() {
    let mut table = Table::new(&[
        "workload",
        "current practice (min)",
        "MAT-ALL (min)",
        "Nautilus (min)",
        "FLOPs optimal (min)",
        "Nautilus speedup",
    ]);
    let mut rows = Vec::new();

    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec { kind, scale: Scale::Paper };
        let candidates = spec.candidates().expect("workload builds");

        let mut times = std::collections::BTreeMap::new();
        let mut theoretical = 0.0;
        for strategy in [Strategy::CurrentPractice, Strategy::MatAll, Strategy::Nautilus] {
            let run = run_workload(
                candidates.clone(),
                &RunConfig::paper(&spec, strategy),
            )
            .expect("run completes");
            theoretical = run.init.theoretical_speedup;
            times.insert(strategy.label().to_string(), run.total_secs);
        }
        let cp = times["current-practice"];
        let ma = times["mat-all"];
        let na = times["nautilus"];
        let flops_optimal = cp / theoretical;

        table.row(&[
            kind.name().to_string(),
            mins(cp),
            mins(ma),
            mins(na),
            mins(flops_optimal),
            speedup(cp, na),
        ]);
        rows.push(Fig6aRow {
            workload: kind.name().to_string(),
            current_practice_mins: cp / 60.0,
            mat_all_mins: ma / 60.0,
            nautilus_mins: na / 60.0,
            flops_optimal_mins: flops_optimal / 60.0,
            nautilus_speedup: cp / na,
            mat_all_speedup: cp / ma,
            theoretical_speedup: theoretical,
        });
    }

    println!("Figure 6(A): total model selection time\n");
    table.print();

    // §5.1 cloud-cost estimate: DRAM-heavy MAT-ALL vs Nautilus hourly rate.
    // Google-cloud-style pricing: vCPU+GPU base plus per-GB-DRAM rate.
    let base = 0.35; // $/hr machine + accelerator
    let dram_rate = 0.0045; // $/GB/hr
    let mat_all_dram = 128.0; // hold all features in DRAM
    let nautilus_dram = 32.0; // paper's workstation profile
    let cost_mat_all = base + dram_rate * mat_all_dram * 1.08; // sustained-use uplift
    let cost_nautilus = base + dram_rate * nautilus_dram * 1.43;
    println!(
        "\n§5.1 cost estimate (FTR-1 at 10k records): {:.2} $/hr (all-in-DRAM MAT-ALL) vs {:.2} $/hr (Nautilus) -> {:.0}% cheaper",
        cost_mat_all,
        cost_nautilus,
        (1.0 - cost_nautilus / cost_mat_all) * 100.0
    );

    write_json("fig6a", &rows);
}
