//! §5.3 drill-down: MILP solver statistics across the workloads (the paper
//! reports optimal solutions "within a short execution time, e.g. a few
//! 10s of seconds" with Gurobi; our branch-and-bound closes these
//! structured instances far faster thanks to interchangeable-group
//! reduction).

use nautilus_bench::harness::{write_json, Table};
use nautilus_core::mat_opt::choose_materialization;
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::SystemConfig;
use nautilus_util::json_struct;

struct MilpRow {
    workload: String,
    num_models: usize,
    graph_groups: usize,
    milp_vars: usize,
    milp_constraints: usize,
    bb_nodes: u64,
    solve_millis: u128,
    status: String,
    materialized_layers: usize,
}

json_struct!(MilpRow { workload, num_models, graph_groups, milp_vars, milp_constraints, bb_nodes, solve_millis, status, materialized_layers });

fn main() {
    let cfg = SystemConfig::default();
    let mut table = Table::new(&[
        "workload",
        "# models",
        "groups",
        "vars",
        "constraints",
        "B&B nodes",
        "solve (ms)",
        "|V|",
    ]);
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec { kind, scale: Scale::Paper };
        let candidates = spec.candidates().expect("workload builds");
        let multi = MultiModelGraph::build(&candidates);
        let res = choose_materialization(&multi, &candidates, &cfg, cfg.max_records);
        table.row(&[
            kind.name().to_string(),
            candidates.len().to_string(),
            res.groups.to_string(),
            res.milp.num_vars.to_string(),
            res.milp.num_constraints.to_string(),
            res.milp.nodes.to_string(),
            res.milp.elapsed.as_millis().to_string(),
            res.materialized.len().to_string(),
        ]);
        rows.push(MilpRow {
            workload: kind.name().to_string(),
            num_models: candidates.len(),
            graph_groups: res.groups,
            milp_vars: res.milp.num_vars,
            milp_constraints: res.milp.num_constraints,
            bb_nodes: res.milp.nodes,
            solve_millis: res.milp.elapsed.as_millis(),
            status: format!("{:?}", res.milp.status),
            materialized_layers: res.materialized.len(),
        });
    }
    println!("§5.3: materialization-MILP solver statistics (paper scale)\n");
    table.print();
    write_json("milp_stats", &rows);
}
