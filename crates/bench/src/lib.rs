#![warn(missing_docs)]

//! Benchmark harness: shared machinery for regenerating every table and
//! figure of the paper's evaluation (§5).
//!
//! Each figure has a binary in `src/bin/` that prints the paper's
//! rows/series and writes machine-readable JSON under `results/`.
//! [`run_workload`] executes one (workload, strategy) pair end-to-end on
//! the simulated backend at paper scale; [`harness`] holds formatting and
//! output helpers shared by all binaries.

pub mod harness;
pub mod runner;

pub use harness::{results_dir, write_json, Table};
pub use runner::{run_workload, RunConfig, WorkloadRun};
