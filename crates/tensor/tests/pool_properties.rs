//! Pooled kernel execution is bit-identical to sequential execution.
//!
//! The shared pool's determinism contract (work is partitioned into
//! caller-chosen disjoint output regions, never thread-count-dependent
//! placements) means `matmul_ex` and `conv2d` must produce the *exact* same
//! bits at every parallelism level. This property test drives random shapes
//! — including shapes large enough to cross the parallel-dispatch threshold
//! — through thread limits 1, 2, and 8 and compares raw `f32` buffers.
//!
//! Everything lives in one `#[test]` so `NAUTILUS_THREADS` is set exactly
//! once, before the pool's first use, in a binary no other test shares.

use nautilus_tensor::ops::{conv2d, matmul_ex, MatmulSpec};
use nautilus_tensor::Tensor;
use nautilus_util::pool;
use nautilus_util::prop::{prop_check, Gen};
use nautilus_util::prop_assert;
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

fn filled(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    Tensor::from_vec(dims.to_vec(), data).unwrap()
}

/// Random matmul shapes with transpose flags. Roughly a quarter of cases
/// are sized past the parallel-dispatch threshold (`m*k*n >= 2^22`) so the
/// pool path genuinely runs; the rest stay small for shape diversity.
#[derive(Clone, Debug)]
struct MmCase {
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    seed: u64,
}

struct MmGen;

impl Gen for MmGen {
    type Value = MmCase;
    fn generate(&self, rng: &mut StdRng) -> MmCase {
        let large = rng.gen_range(0u32..4) == 0;
        let (m, k, n) = if large {
            (rng.gen_range(64usize..80), rng.gen_range(256usize..320), rng.gen_range(256usize..320))
        } else {
            (rng.gen_range(1usize..24), rng.gen_range(1usize..24), rng.gen_range(1usize..24))
        };
        MmCase { m, k, n, ta: rng.gen_bool(0.5), tb: rng.gen_bool(0.5), seed: rng.gen_range(0u64..1 << 32) }
    }
    fn shrink(&self, c: &MmCase) -> Vec<MmCase> {
        // Halve one extent at a time; data is regenerated from the seed.
        let mut out = Vec::new();
        for f in [
            |c: &mut MmCase| c.m /= 2,
            |c: &mut MmCase| c.k /= 2,
            |c: &mut MmCase| c.n /= 2,
        ] {
            let mut s = c.clone();
            f(&mut s);
            if s.m > 0 && s.k > 0 && s.n > 0 {
                out.push(s);
            }
        }
        out
    }
}

/// Random conv shapes; roughly a quarter cross the conv parallel threshold.
#[derive(Clone, Debug)]
struct ConvCase {
    b: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    seed: u64,
}

struct ConvGen;

impl Gen for ConvGen {
    type Value = ConvCase;
    fn generate(&self, rng: &mut StdRng) -> ConvCase {
        let large = rng.gen_range(0u32..4) == 0;
        let (b, c_in, c_out, hw) = if large {
            (8, 16, 16, rng.gen_range(16usize..20))
        } else {
            (
                rng.gen_range(1usize..4),
                rng.gen_range(1usize..6),
                rng.gen_range(1usize..6),
                rng.gen_range(4usize..12),
            )
        };
        let k = *[1usize, 3, 5].get(rng.gen_range(0usize..3)).unwrap();
        let k = k.min(hw);
        ConvCase {
            b,
            c_in,
            c_out,
            h: hw,
            w: hw,
            kh: k,
            kw: k,
            stride: rng.gen_range(1usize..3),
            pad: rng.gen_range(0usize..2),
            seed: rng.gen_range(0u64..1 << 32),
        }
    }
    fn shrink(&self, c: &ConvCase) -> Vec<ConvCase> {
        let mut out = Vec::new();
        if c.b > 1 {
            out.push(ConvCase { b: c.b / 2, ..c.clone() });
        }
        if c.c_out > 1 {
            out.push(ConvCase { c_out: c.c_out / 2, ..c.clone() });
        }
        out
    }
}

fn check_matmul(c: &MmCase) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(c.seed);
    let a_dims = if c.ta { [c.k, c.m] } else { [c.m, c.k] };
    let b_dims = if c.tb { [c.n, c.k] } else { [c.k, c.n] };
    let a = filled(&mut rng, &a_dims);
    let b = filled(&mut rng, &b_dims);
    let spec = MatmulSpec { transpose_a: c.ta, transpose_b: c.tb };
    let reference = pool::with_parallelism_limit(1, || matmul_ex(&a, &b, spec))
        .map_err(|e| e.to_string())?;
    for limit in [2usize, 8] {
        let got = pool::with_parallelism_limit(limit, || matmul_ex(&a, &b, spec))
            .map_err(|e| e.to_string())?;
        prop_assert!(
            reference.data() == got.data(),
            "matmul_ex bits diverged at limit {limit} for {c:?}"
        );
    }
    Ok(())
}

fn check_conv(c: &ConvCase) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(c.seed);
    let x = filled(&mut rng, &[c.b, c.c_in, c.h, c.w]);
    let wt = filled(&mut rng, &[c.c_out, c.c_in, c.kh, c.kw]);
    let bias = filled(&mut rng, &[c.c_out]);
    let reference = pool::with_parallelism_limit(1, || conv2d(&x, &wt, &bias, c.stride, c.pad))
        .map_err(|e| e.to_string())?;
    for limit in [2usize, 8] {
        let got = pool::with_parallelism_limit(limit, || conv2d(&x, &wt, &bias, c.stride, c.pad))
            .map_err(|e| e.to_string())?;
        prop_assert!(
            reference.data() == got.data(),
            "conv2d bits diverged at limit {limit} for {c:?}"
        );
    }
    Ok(())
}

#[test]
fn pooled_kernels_bit_identical_across_thread_limits() {
    // Before the pool's first use; this binary holds no other test.
    std::env::set_var("NAUTILUS_THREADS", "4");
    assert_eq!(pool::num_threads(), 4, "env override must win");
    prop_check(0x9001_0001, 16, &MmGen, check_matmul);
    prop_check(0x9001_0002, 12, &ConvGen, check_conv);
}
