//! Property-based tests for tensor algebra invariants.

use nautilus_tensor::ops::{add, hadamard, matmul, matmul_ta, matmul_tb, scale, softmax_last, sum_axis0};
use nautilus_tensor::ser;
use nautilus_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=3usize)
        .prop_flat_map(move |rank| proptest::collection::vec(1..=max_dim, rank))
        .prop_flat_map(|dims| {
            let n: usize = dims.iter().product();
            proptest::collection::vec(-10.0f32..10.0, n)
                .prop_map(move |data| Tensor::from_vec(dims.clone(), data).unwrap())
        })
}

fn matrix_pair(max: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max, 1..=max, 1..=max).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Tensor::from_vec([m, k], d).unwrap());
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Tensor::from_vec([k, n], d).unwrap());
        (a, b)
    })
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialization_round_trips(t in tensor_strategy(6)) {
        let back = ser::decode(ser::encode(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn add_is_commutative(t in tensor_strategy(5)) {
        let u = scale(&t, 0.5);
        prop_assert_eq!(add(&t, &u).unwrap(), add(&u, &t).unwrap());
    }

    #[test]
    fn hadamard_with_ones_is_identity(t in tensor_strategy(5)) {
        let ones = Tensor::ones(t.shape().clone());
        prop_assert_eq!(hadamard(&t, &ones).unwrap(), t);
    }

    #[test]
    fn scale_distributes_over_add(t in tensor_strategy(4)) {
        let u = scale(&t, -0.3);
        let lhs = scale(&add(&t, &u).unwrap(), 2.0);
        let rhs = add(&scale(&t, 2.0), &scale(&u, 2.0)).unwrap();
        assert_close(&lhs, &rhs, 1e-5);
    }

    #[test]
    fn matmul_identity((a, _) in matrix_pair(5)) {
        let k = a.shape().dim(1);
        let mut eye = Tensor::zeros([k, k]);
        for i in 0..k {
            eye.data_mut()[i * k + i] = 1.0;
        }
        assert_close(&matmul(&a, &eye).unwrap(), &a, 1e-5);
    }

    #[test]
    fn transposed_matmuls_consistent((a, b) in matrix_pair(5)) {
        // (A·B)ᵀ column check via matmul_ta/matmul_tb round trip:
        // matmul_ta(A, A·B) = Aᵀ·A·B and matmul(AᵀA, B) must agree.
        let ab = matmul(&a, &b).unwrap();
        let lhs = matmul_ta(&a, &ab).unwrap();
        let ata = matmul_ta(&a, &a).unwrap();
        let rhs = matmul(&ata, &b).unwrap();
        assert_close(&lhs, &rhs, 1e-3);

        // matmul_tb(A·B, B) = A·B·Bᵀ and matmul(A, B·Bᵀ) must agree.
        let lhs2 = matmul_tb(&ab, &b).unwrap();
        let bbt = matmul_tb(&b, &b).unwrap();
        let rhs2 = matmul(&a, &bbt).unwrap();
        assert_close(&lhs2, &rhs2, 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(6)) {
        let y = softmax_last(&t);
        let (rows, cols, data) = y.as_matrix();
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn sum_axis0_matches_manual(t in tensor_strategy(5)) {
        if t.shape().rank() >= 1 {
            let s = sum_axis0(&t).unwrap();
            let n = t.shape().dim(0);
            let manual = (0..n).fold(Tensor::zeros(t.shape().without_batch()), |acc, i| {
                add(&acc, &t.outer_slice(i)).unwrap()
            });
            assert_close(&s, &manual, 1e-4);
        }
    }

    #[test]
    fn stack_then_slice_round_trips(t in tensor_strategy(4)) {
        let parts: Vec<Tensor> = vec![t.clone(), scale(&t, 2.0), scale(&t, -1.0)];
        let stacked = Tensor::stack(&parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            prop_assert_eq!(&stacked.outer_slice(i), p);
        }
    }
}
