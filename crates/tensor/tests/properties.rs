//! Property-based tests for tensor algebra invariants, run under the
//! in-tree shrinking harness with fixed seeds for determinism.

use nautilus_tensor::ops::{
    add, hadamard, matmul, matmul_ta, matmul_tb, scale, softmax_last, sum_axis0,
};
use nautilus_tensor::ser;
use nautilus_tensor::Tensor;
use nautilus_util::prop::{prop_check, Gen};
use nautilus_util::rng::{Rng, StdRng};
use nautilus_util::{prop_assert, prop_assert_eq};

const CASES: u32 = 64;

/// Random tensors of rank 1..=3 with per-axis extents in `1..=max_dim`.
struct TensorGen {
    max_dim: usize,
}

fn random_tensor(rng: &mut StdRng, max_dim: usize, span: f32) -> Tensor {
    let rank = rng.gen_range(1usize..4);
    let dims: Vec<usize> = (0..rank).map(|_| rng.gen_range(1..=max_dim)).collect();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-span..span)).collect();
    Tensor::from_vec(dims, data).unwrap()
}

/// Zero out the first nonzero element — enough to make counterexamples
/// readable; structural (shape) shrinking is not needed for these
/// invariants.
fn shrink_tensor_data(t: &Tensor) -> Vec<Tensor> {
    match t.data().iter().position(|&x| x != 0.0) {
        Some(i) => {
            let mut copy = t.clone();
            copy.data_mut()[i] = 0.0;
            vec![copy]
        }
        None => Vec::new(),
    }
}

impl Gen for TensorGen {
    type Value = Tensor;
    fn generate(&self, rng: &mut StdRng) -> Tensor {
        random_tensor(rng, self.max_dim, 10.0)
    }
    fn shrink(&self, t: &Tensor) -> Vec<Tensor> {
        shrink_tensor_data(t)
    }
}

fn tensors(max_dim: usize) -> TensorGen {
    TensorGen { max_dim }
}

/// Multiplication-compatible matrix pairs `(m×k, k×n)` with extents in
/// `1..=max`.
struct MatrixPairGen {
    max: usize,
}

impl Gen for MatrixPairGen {
    type Value = (Tensor, Tensor);
    fn generate(&self, rng: &mut StdRng) -> (Tensor, Tensor) {
        let (m, k, n) = (
            rng.gen_range(1..=self.max),
            rng.gen_range(1..=self.max),
            rng.gen_range(1..=self.max),
        );
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        (
            Tensor::from_vec([m, k], a).unwrap(),
            Tensor::from_vec([k, n], b).unwrap(),
        )
    }
    fn shrink(&self, (a, b): &(Tensor, Tensor)) -> Vec<(Tensor, Tensor)> {
        let mut out: Vec<(Tensor, Tensor)> =
            shrink_tensor_data(a).into_iter().map(|sa| (sa, b.clone())).collect();
        out.extend(shrink_tensor_data(b).into_iter().map(|sb| (a.clone(), sb)));
        out
    }
}

fn matrix_pairs(max: usize) -> MatrixPairGen {
    MatrixPairGen { max }
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
    }
}

#[test]
fn serialization_round_trips() {
    prop_check(0x7E50_0001, CASES, &tensors(6), |t| {
        let back = ser::decode(&ser::encode(t)).unwrap();
        prop_assert_eq!(back, t.clone());
        Ok(())
    });
}

#[test]
fn add_is_commutative() {
    prop_check(0x7E50_0002, CASES, &tensors(5), |t| {
        let u = scale(t, 0.5);
        prop_assert_eq!(add(t, &u).unwrap(), add(&u, t).unwrap());
        Ok(())
    });
}

#[test]
fn hadamard_with_ones_is_identity() {
    prop_check(0x7E50_0003, CASES, &tensors(5), |t| {
        let ones = Tensor::ones(t.shape().clone());
        prop_assert_eq!(hadamard(t, &ones).unwrap(), t.clone());
        Ok(())
    });
}

#[test]
fn scale_distributes_over_add() {
    prop_check(0x7E50_0004, CASES, &tensors(4), |t| {
        let u = scale(t, -0.3);
        let lhs = scale(&add(t, &u).unwrap(), 2.0);
        let rhs = add(&scale(t, 2.0), &scale(&u, 2.0)).unwrap();
        assert_close(&lhs, &rhs, 1e-5);
        Ok(())
    });
}

#[test]
fn matmul_identity() {
    prop_check(0x7E50_0005, CASES, &matrix_pairs(5), |(a, _)| {
        let k = a.shape().dim(1);
        let mut eye = Tensor::zeros([k, k]);
        for i in 0..k {
            eye.data_mut()[i * k + i] = 1.0;
        }
        assert_close(&matmul(a, &eye).unwrap(), a, 1e-5);
        Ok(())
    });
}

#[test]
fn transposed_matmuls_consistent() {
    prop_check(0x7E50_0006, CASES, &matrix_pairs(5), |(a, b)| {
        // (A·B)ᵀ column check via matmul_ta/matmul_tb round trip:
        // matmul_ta(A, A·B) = Aᵀ·A·B and matmul(AᵀA, B) must agree.
        let ab = matmul(a, b).unwrap();
        let lhs = matmul_ta(a, &ab).unwrap();
        let ata = matmul_ta(a, a).unwrap();
        let rhs = matmul(&ata, b).unwrap();
        assert_close(&lhs, &rhs, 1e-3);

        // matmul_tb(A·B, B) = A·B·Bᵀ and matmul(A, B·Bᵀ) must agree.
        let lhs2 = matmul_tb(&ab, b).unwrap();
        let bbt = matmul_tb(b, b).unwrap();
        let rhs2 = matmul(a, &bbt).unwrap();
        assert_close(&lhs2, &rhs2, 1e-3);
        Ok(())
    });
}

#[test]
fn softmax_rows_are_distributions() {
    prop_check(0x7E50_0007, CASES, &tensors(6), |t| {
        let y = softmax_last(t);
        let (rows, cols, data) = y.as_matrix();
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
        Ok(())
    });
}

#[test]
fn sum_axis0_matches_manual() {
    prop_check(0x7E50_0008, CASES, &tensors(5), |t| {
        if t.shape().rank() >= 1 {
            let s = sum_axis0(t).unwrap();
            let n = t.shape().dim(0);
            let manual = (0..n).fold(Tensor::zeros(t.shape().without_batch()), |acc, i| {
                add(&acc, &t.outer_slice(i)).unwrap()
            });
            assert_close(&s, &manual, 1e-4);
        }
        Ok(())
    });
}

#[test]
fn stack_then_slice_round_trips() {
    prop_check(0x7E50_0009, CASES, &tensors(4), |t| {
        let parts: Vec<Tensor> = vec![t.clone(), scale(t, 2.0), scale(t, -1.0)];
        let stacked = Tensor::stack(&parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            prop_assert_eq!(&stacked.outer_slice(i), p);
        }
        Ok(())
    });
}
