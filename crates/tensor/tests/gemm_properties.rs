//! Differential and determinism properties of the blocked GEMM engine.
//!
//! Two families of properties, per ISSUE 4's acceptance criteria:
//!
//! * **Accuracy** — the cache-blocked packed kernel re-associates the
//!   k-summation (KC-sized register-resident partials), so it is allowed to
//!   differ from the naive triple loop only by rounding: every element must
//!   match within `1e-4` relative tolerance, across random shapes and all
//!   four transpose combinations. The same contract holds between im2col
//!   and direct convolution (forward and backward).
//! * **Determinism** — within one strategy, results are *bit-identical* at
//!   every parallelism level (`with_parallelism_limit` 1/2/8), because the
//!   pool only ever partitions output rows on MC-aligned boundaries and each
//!   element is accumulated k-ascending by exactly one task.
//! * **Kernel differential** (ISSUE 9) — on hosts with AVX2+FMA, the
//!   explicit-FMA microkernel must agree with the safe kernel within the
//!   same `1e-4` relative tolerance on every shape/transpose case, and be
//!   bit-identical across pool widths 1/2/8 (same blocking ⇒ same partial
//!   sums per element regardless of how rows are partitioned).
//!
//! `gemm::gemm` itself resolves its kernel from `NAUTILUS_GEMM_KERNEL`, so
//! `verify.sh` runs this whole binary once per kernel path; the explicit
//! `gemm_with` differential below runs whenever the CPU supports FMA, no
//! matter the env.
//!
//! Everything lives in one `#[test]` so `NAUTILUS_THREADS` is set exactly
//! once, before the pool's first use, in a binary no other test shares.

use nautilus_tensor::ops::conv::{
    conv2d_backward_direct, conv2d_backward_im2col, conv2d_direct, conv2d_im2col,
};
use nautilus_tensor::ops::gemm::{self, MatRef};
use nautilus_tensor::Tensor;
use nautilus_util::pool;
use nautilus_util::prop::{prop_check, Gen};
use nautilus_util::prop_assert;
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

const REL_TOL: f32 = 1e-4;

fn filled_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

fn filled(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let data = filled_vec(rng, dims.iter().product());
    Tensor::from_vec(dims.to_vec(), data).unwrap()
}

/// Element-wise relative comparison with an absolute floor of 1.0, so tiny
/// sums near cancellation do not demand impossible precision.
fn assert_close(a: &[f32], b: &[f32], what: &str, ctx: &str) -> Result<(), String> {
    prop_assert!(a.len() == b.len(), "{what} length mismatch for {ctx}");
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        prop_assert!(
            (x - y).abs() <= REL_TOL * scale,
            "{what}[{i}] diverged past tolerance: {x} vs {y} for {ctx}"
        );
    }
    Ok(())
}

/// Random GEMM shapes with transpose flags. Roughly a quarter of cases are
/// sized past the parallel-dispatch threshold (`m*k*n >= 2^22`) so the
/// pooled blocked path genuinely runs; the rest stay small and awkward
/// (non-multiples of MR/NR/KC) for edge coverage.
#[derive(Clone, Debug)]
struct GemmCase {
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    seed: u64,
}

struct GemmGen;

impl Gen for GemmGen {
    type Value = GemmCase;
    fn generate(&self, rng: &mut StdRng) -> GemmCase {
        let large = rng.gen_range(0u32..4) == 0;
        let (m, k, n) = if large {
            (rng.gen_range(64usize..80), rng.gen_range(256usize..300), rng.gen_range(256usize..300))
        } else {
            (rng.gen_range(1usize..48), rng.gen_range(1usize..300), rng.gen_range(1usize..48))
        };
        GemmCase { m, k, n, ta: rng.gen_bool(0.5), tb: rng.gen_bool(0.5), seed: rng.gen_range(0u64..1 << 32) }
    }
    fn shrink(&self, c: &GemmCase) -> Vec<GemmCase> {
        let mut out = Vec::new();
        for f in [
            |c: &mut GemmCase| c.m /= 2,
            |c: &mut GemmCase| c.k /= 2,
            |c: &mut GemmCase| c.n /= 2,
        ] {
            let mut s = c.clone();
            f(&mut s);
            if s.m > 0 && s.k > 0 && s.n > 0 {
                out.push(s);
            }
        }
        out
    }
}

/// Blocked vs naive within tolerance, and blocked bit-identical across
/// thread limits, for one random shape/transpose combo.
fn check_gemm(c: &GemmCase) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(c.seed);
    // Storage shapes honour the transpose flags; views fold them back.
    let a = filled_vec(&mut rng, c.m * c.k);
    let b = filled_vec(&mut rng, c.k * c.n);
    let aref = if c.ta { MatRef::transposed(&a, c.m) } else { MatRef::row_major(&a, c.k) };
    let bref = if c.tb { MatRef::transposed(&b, c.k) } else { MatRef::row_major(&b, c.n) };

    let mut naive = vec![0.0f32; c.m * c.n];
    gemm::gemm_naive(c.m, c.k, c.n, aref, bref, &mut naive);

    let reference = pool::with_parallelism_limit(1, || {
        let mut out = vec![0.0f32; c.m * c.n];
        gemm::gemm(c.m, c.k, c.n, aref, bref, &mut out);
        out
    });
    assert_close(&reference, &naive, "gemm", &format!("{c:?}"))?;

    for limit in [2usize, 8] {
        let got = pool::with_parallelism_limit(limit, || {
            let mut out = vec![0.0f32; c.m * c.n];
            gemm::gemm(c.m, c.k, c.n, aref, bref, &mut out);
            out
        });
        prop_assert!(reference == got, "gemm bits diverged at limit {limit} for {c:?}");
    }

    // FMA-vs-safe differential, independent of NAUTILUS_GEMM_KERNEL: the
    // explicit microkernel fuses the multiply-add (one rounding instead of
    // two) and runs under auto-tuned blocking, so it may drift from the
    // safe kernel only within rounding tolerance — while staying
    // bit-identical to itself at every pool width.
    if gemm::fma_supported() {
        let safe = pool::with_parallelism_limit(1, || {
            let mut out = vec![0.0f32; c.m * c.n];
            gemm::gemm_with(gemm::KernelKind::Safe, c.m, c.k, c.n, aref, bref, &mut out);
            out
        });
        // The default-resolved gemm above must be exactly one of the two
        // explicit kernels (whichever NAUTILUS_GEMM_KERNEL picked).
        if gemm::resolved_kernel() == gemm::KernelKind::Safe {
            prop_assert!(safe == reference, "explicit Safe != default-resolved gemm for {c:?}");
        }
        let fma = pool::with_parallelism_limit(1, || {
            let mut out = vec![0.0f32; c.m * c.n];
            gemm::gemm_with(gemm::KernelKind::Fma, c.m, c.k, c.n, aref, bref, &mut out);
            out
        });
        assert_close(&fma, &safe, "gemm[fma-vs-safe]", &format!("{c:?}"))?;
        for limit in [2usize, 8] {
            let got = pool::with_parallelism_limit(limit, || {
                let mut out = vec![0.0f32; c.m * c.n];
                gemm::gemm_with(gemm::KernelKind::Fma, c.m, c.k, c.n, aref, bref, &mut out);
                out
            });
            prop_assert!(fma == got, "fma gemm bits diverged at limit {limit} for {c:?}");
        }
    }
    Ok(())
}

/// Random conv shapes; roughly a quarter cross [`IM2COL_THRESHOLD`] so the
/// lowered path is what `conv2d` itself would pick, but both strategies are
/// always invoked explicitly here.
#[derive(Clone, Debug)]
struct ConvCase {
    b: usize,
    c_in: usize,
    c_out: usize,
    hw: usize,
    k: usize,
    stride: usize,
    pad: usize,
    seed: u64,
}

struct ConvGen;

impl Gen for ConvGen {
    type Value = ConvCase;
    fn generate(&self, rng: &mut StdRng) -> ConvCase {
        let large = rng.gen_range(0u32..4) == 0;
        let (b, c_in, c_out, hw) = if large {
            (rng.gen_range(2usize..5), 8, 8, rng.gen_range(12usize..16))
        } else {
            (
                rng.gen_range(1usize..3),
                rng.gen_range(1usize..6),
                rng.gen_range(1usize..6),
                rng.gen_range(3usize..10),
            )
        };
        let k = (*[1usize, 3, 5].get(rng.gen_range(0usize..3)).unwrap()).min(hw);
        ConvCase {
            b,
            c_in,
            c_out,
            hw,
            k,
            stride: rng.gen_range(1usize..3),
            pad: rng.gen_range(0usize..2),
            seed: rng.gen_range(0u64..1 << 32),
        }
    }
    fn shrink(&self, c: &ConvCase) -> Vec<ConvCase> {
        let mut out = Vec::new();
        if c.b > 1 {
            out.push(ConvCase { b: c.b / 2, ..c.clone() });
        }
        if c.c_in > 1 {
            out.push(ConvCase { c_in: c.c_in / 2, ..c.clone() });
        }
        if c.c_out > 1 {
            out.push(ConvCase { c_out: c.c_out / 2, ..c.clone() });
        }
        out
    }
}

/// im2col vs direct within tolerance (forward and backward), and the im2col
/// strategy bit-identical across thread limits.
fn check_conv(c: &ConvCase) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(c.seed);
    let x = filled(&mut rng, &[c.b, c.c_in, c.hw, c.hw]);
    let wt = filled(&mut rng, &[c.c_out, c.c_in, c.k, c.k]);
    let bias = filled(&mut rng, &[c.c_out]);
    let ctx = format!("{c:?}");

    let direct = conv2d_direct(&x, &wt, &bias, c.stride, c.pad).map_err(|e| e.to_string())?;
    let lowered = pool::with_parallelism_limit(1, || conv2d_im2col(&x, &wt, &bias, c.stride, c.pad))
        .map_err(|e| e.to_string())?;
    assert_close(lowered.data(), direct.data(), "conv2d", &ctx)?;
    for limit in [2usize, 8] {
        let got = pool::with_parallelism_limit(limit, || conv2d_im2col(&x, &wt, &bias, c.stride, c.pad))
            .map_err(|e| e.to_string())?;
        prop_assert!(lowered.data() == got.data(), "conv2d_im2col bits diverged at limit {limit} for {ctx}");
    }

    let grad = filled(&mut rng, &lowered.shape().0);
    let (dxd, dwd, dbd) =
        conv2d_backward_direct(&x, &wt, &grad, c.stride, c.pad).map_err(|e| e.to_string())?;
    let (dxi, dwi, dbi) =
        pool::with_parallelism_limit(1, || conv2d_backward_im2col(&x, &wt, &grad, c.stride, c.pad))
            .map_err(|e| e.to_string())?;
    assert_close(dxi.data(), dxd.data(), "conv dX", &ctx)?;
    assert_close(dwi.data(), dwd.data(), "conv dW", &ctx)?;
    assert_close(dbi.data(), dbd.data(), "conv db", &ctx)?;
    for limit in [2usize, 8] {
        let (gx, gw, gb) = pool::with_parallelism_limit(limit, || {
            conv2d_backward_im2col(&x, &wt, &grad, c.stride, c.pad)
        })
        .map_err(|e| e.to_string())?;
        prop_assert!(
            dxi.data() == gx.data() && dwi.data() == gw.data() && dbi.data() == gb.data(),
            "conv2d_backward_im2col bits diverged at limit {limit} for {ctx}"
        );
    }
    Ok(())
}

#[test]
fn blocked_kernels_match_naive_and_stay_deterministic() {
    // Before the pool's first use; this binary holds no other test.
    std::env::set_var("NAUTILUS_THREADS", "8");
    assert_eq!(pool::num_threads(), 8, "env override must win");
    prop_check(0x6e40_0001, 24, &GemmGen, check_gemm);
    prop_check(0x6e40_0002, 12, &ConvGen, check_conv);
}
