use nautilus_tensor::ops::gemm;
use std::time::Instant;

fn main() {
    for &n in &[64usize, 256, 512] {
        let a: Vec<f32> = (0..n * n).map(|i| ((i * 37 % 97) as f32) * 0.013 - 0.5).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i * 61 % 89) as f32) * 0.011 - 0.4).collect();
        let mut out = vec![0.0f32; n * n];
        // warmup
        gemm::gemm_serial(n, n, n, gemm::MatRef::row_major(&a, n), gemm::MatRef::row_major(&b, n), &mut out);
        gemm::gemm_naive(n, n, n, gemm::MatRef::row_major(&a, n), gemm::MatRef::row_major(&b, n), &mut out);
        let reps = if n <= 64 { 200 } else if n <= 256 { 20 } else { 5 };
        let t = Instant::now();
        for _ in 0..reps {
            out.fill(0.0);
            gemm::gemm_serial(n, n, n, gemm::MatRef::row_major(&a, n), gemm::MatRef::row_major(&b, n), &mut out);
        }
        let blocked = t.elapsed().as_secs_f64() / reps as f64;
        let t = Instant::now();
        for _ in 0..reps {
            out.fill(0.0);
            gemm::gemm_naive(n, n, n, gemm::MatRef::row_major(&a, n), gemm::MatRef::row_major(&b, n), &mut out);
        }
        let naive = t.elapsed().as_secs_f64() / reps as f64;
        let flops = 2.0 * (n as f64).powi(3);
        println!(
            "n={n}: naive {:.3} ms ({:.2} GFLOP/s)  blocked {:.3} ms ({:.2} GFLOP/s)  speedup {:.2}x",
            naive * 1e3, flops / naive / 1e9, blocked * 1e3, flops / blocked / 1e9, naive / blocked
        );
    }
}
