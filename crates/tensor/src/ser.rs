//! Compact binary serialization for tensors.
//!
//! Format (little-endian):
//! `magic "NTSR" | u32 version | u32 rank | u64 dim... | f32 data...`
//!
//! Used by the checkpoint store and the materialized-feature store. The
//! format is deliberately self-describing so that a store chunk can be read
//! back without consulting its manifest.

use crate::{Shape, Tensor, TensorError};
use nautilus_util::bytesio::{PutBytes, TakeBytes};

const MAGIC: &[u8; 4] = b"NTSR";
const VERSION: u32 = 1;

/// Errors produced when decoding serialized tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The version field is not supported by this build.
    BadVersion(u32),
    /// The buffer ended before the declared payload.
    Truncated,
    /// The declared shape implies an implausibly large payload.
    TooLarge(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad tensor magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported tensor format version {v}"),
            DecodeError::Truncated => write!(f, "truncated tensor buffer"),
            DecodeError::TooLarge(n) => write!(f, "declared tensor size {n} too large"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on a single serialized tensor's element count (16 Gi elements),
/// guarding decode against corrupt headers.
const MAX_ELEMENTS: u64 = 1 << 34;

/// Serialized size in bytes of a tensor of the given shape.
pub fn encoded_len(shape: &Shape) -> usize {
    4 + 4 + 4 + 8 * shape.rank() + crate::ELEM_BYTES * shape.num_elements()
}

/// Appends the tensor's serialized form to `buf`.
pub fn encode_into(t: &Tensor, buf: &mut Vec<u8>) {
    buf.reserve(encoded_len(t.shape()));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(t.shape().rank() as u32);
    for &d in &t.shape().0 {
        buf.put_u64_le(d as u64);
    }
    for &x in t.data() {
        buf.put_f32_le(x);
    }
}

/// Serializes one tensor into a fresh buffer.
pub fn encode(t: &Tensor) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_len(t.shape()));
    encode_into(t, &mut buf);
    buf
}

/// Decodes one tensor from the front of `buf`, advancing it past the payload.
pub fn decode_from(buf: &mut &[u8]) -> Result<Tensor, DecodeError> {
    let magic = buf.take_slice(4).ok_or(DecodeError::Truncated)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.take_u32_le().ok_or(DecodeError::Truncated)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let rank = buf.take_u32_le().ok_or(DecodeError::Truncated)? as usize;
    let mut dims = Vec::with_capacity(rank);
    let mut elems: u64 = 1;
    for _ in 0..rank {
        let d = buf.take_u64_le().ok_or(DecodeError::Truncated)?;
        elems = elems.saturating_mul(d);
        dims.push(d as usize);
    }
    if elems > MAX_ELEMENTS {
        return Err(DecodeError::TooLarge(elems));
    }
    let n = elems as usize;
    if buf.remaining() < n * crate::ELEM_BYTES {
        return Err(DecodeError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.take_f32_le().ok_or(DecodeError::Truncated)?);
    }
    Tensor::from_vec(dims, data).map_err(|_| DecodeError::Truncated)
}

/// Decodes a single tensor that occupies the whole buffer.
pub fn decode(bytes: &[u8]) -> Result<Tensor, DecodeError> {
    let mut cur = bytes;
    decode_from(&mut cur)
}

/// Serializes a sequence of tensors back-to-back.
pub fn encode_many(tensors: &[Tensor]) -> Vec<u8> {
    let total: usize = tensors.iter().map(|t| encoded_len(t.shape())).sum();
    let mut buf = Vec::with_capacity(total);
    for t in tensors {
        encode_into(t, &mut buf);
    }
    buf
}

/// Decodes back-to-back tensors until the buffer is exhausted.
pub fn decode_many(bytes: &[u8]) -> Result<Vec<Tensor>, DecodeError> {
    let mut cur = bytes;
    let mut out = Vec::new();
    while cur.remaining() > 0 {
        out.push(decode_from(&mut cur)?);
    }
    Ok(out)
}

impl From<DecodeError> for TensorError {
    fn from(e: DecodeError) -> Self {
        TensorError::Incompatible(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};

    #[test]
    fn round_trip_single() {
        let t = randn([3, 4, 5], 1.0, &mut seeded_rng(1));
        let b = encode(&t);
        assert_eq!(b.len(), encoded_len(t.shape()));
        assert_eq!(decode(&b).unwrap(), t);
    }

    #[test]
    fn round_trip_scalar_and_empty() {
        let s = Tensor::scalar(3.5);
        assert_eq!(decode(&encode(&s)).unwrap(), s);
        let e = Tensor::zeros([0]);
        assert_eq!(decode(&encode(&e)).unwrap(), e);
    }

    #[test]
    fn round_trip_many() {
        let ts: Vec<Tensor> =
            (0..5).map(|i| randn([2, i + 1], 1.0, &mut seeded_rng(i as u64))).collect();
        let b = encode_many(&ts);
        assert_eq!(decode_many(&b).unwrap(), ts);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = Vec::new();
        b.put_slice(b"XXXX");
        b.put_u32_le(1);
        b.put_u32_le(0);
        assert_eq!(decode(&b), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let t = randn([4, 4], 1.0, &mut seeded_rng(2));
        let b = encode(&t);
        assert_eq!(decode(&b[..b.len() - 3]), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_oversized_header() {
        let mut b = Vec::new();
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_u32_le(2);
        b.put_u64_le(1 << 40);
        b.put_u64_le(1 << 40);
        assert!(matches!(decode(&b), Err(DecodeError::TooLarge(_))));
    }
}
