//! Tensor shapes and shape arithmetic.

use nautilus_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Errors produced by shape construction and compatibility checks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs describe the self-named fields
pub enum ShapeError {
    /// Two shapes that must match element-wise do not.
    Mismatch { left: Vec<usize>, right: Vec<usize> },
    /// A reshape target has a different element count than the source.
    ElementCount { from: Vec<usize>, to: Vec<usize> },
    /// An axis index is out of range for the shape's rank.
    AxisOutOfRange { axis: usize, rank: usize },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Mismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            ShapeError::ElementCount { from, to } => {
                write!(f, "reshape element count mismatch: {from:?} -> {to:?}")
            }
            ShapeError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// A tensor shape: the extent of every axis, outermost first.
///
/// Shapes are cheap to clone (a single small `Vec`) and are used pervasively
/// for size/FLOP estimation in the profiler, so the helper methods here return
/// plain integers rather than iterators.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl ToJson for Shape {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Shape {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Vec::<usize>::from_json(j).map(Shape)
    }
}

impl Shape {
    /// Creates a shape from axis extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of axis `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of all extents; 1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size in bytes when stored as f32.
    pub fn num_bytes(&self) -> usize {
        self.num_elements() * crate::ELEM_BYTES
    }

    /// Extent of the innermost (last) axis; 1 for a scalar.
    pub fn last_dim(&self) -> usize {
        *self.0.last().unwrap_or(&1)
    }

    /// All extents except the innermost axis, i.e. the number of "rows" when
    /// the tensor is viewed as a matrix of `last_dim()`-length vectors.
    pub fn outer_elements(&self) -> usize {
        if self.0.is_empty() {
            1
        } else {
            self.0[..self.0.len() - 1].iter().product()
        }
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (s, d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= *d;
        }
        strides
    }

    /// Returns the shape with a batch axis of extent `n` prepended.
    pub fn with_batch(&self, n: usize) -> Shape {
        let mut dims = Vec::with_capacity(self.0.len() + 1);
        dims.push(n);
        dims.extend_from_slice(&self.0);
        Shape(dims)
    }

    /// Returns the shape with the outermost axis removed.
    ///
    /// Used to go from a batched shape back to the per-record shape.
    pub fn without_batch(&self) -> Shape {
        Shape(self.0.get(1..).unwrap_or(&[]).to_vec())
    }

    /// Returns a copy with the innermost axis replaced by `d`.
    pub fn with_last_dim(&self, d: usize) -> Shape {
        let mut dims = self.0.clone();
        if let Some(last) = dims.last_mut() {
            *last = d;
        } else {
            dims.push(d);
        }
        Shape(dims)
    }

    /// Checks element-wise equality, returning a descriptive error otherwise.
    pub fn expect_eq(&self, other: &Shape) -> Result<(), ShapeError> {
        if self == other {
            Ok(())
        } else {
            Err(ShapeError::Mismatch { left: self.0.clone(), right: other.0.clone() })
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_and_bytes() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.num_bytes(), 96);
        assert_eq!(Shape::scalar().num_elements(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn batch_round_trip() {
        let s = Shape::new([3, 4]);
        let b = s.with_batch(8);
        assert_eq!(b, Shape::new([8, 3, 4]));
        assert_eq!(b.without_batch(), s);
    }

    #[test]
    fn outer_and_last() {
        let s = Shape::new([2, 5, 7]);
        assert_eq!(s.last_dim(), 7);
        assert_eq!(s.outer_elements(), 10);
        assert_eq!(s.with_last_dim(3), Shape::new([2, 5, 3]));
    }

    #[test]
    fn expect_eq_reports_mismatch() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([3, 2]);
        assert!(a.expect_eq(&a).is_ok());
        let err = a.expect_eq(&b).unwrap_err();
        assert!(matches!(err, ShapeError::Mismatch { .. }));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
