//! The core dense tensor type.

use crate::shape::{Shape, ShapeError};
use nautilus_util::scratch;
use std::fmt;

/// Errors produced by tensor construction and operations.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the self-named fields
pub enum TensorError {
    /// Shape-level problem (mismatch, bad reshape, bad axis).
    Shape(ShapeError),
    /// The provided data buffer does not match the shape's element count.
    DataLength { expected: usize, actual: usize },
    /// Operation-specific incompatibility with a human-readable description.
    Incompatible(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => write!(f, "{e}"),
            TensorError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match shape ({expected} elements)")
            }
            TensorError::Incompatible(msg) => write!(f, "incompatible operands: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}

/// A dense, row-major, contiguous f32 tensor.
///
/// This is the only runtime data representation in the reproduction: model
/// parameters, activations, gradients, materialized features, and dataset
/// records are all `Tensor`s. Integer payloads (token ids, class labels) are
/// stored as exact small floats, mirroring how the paper's Keras pipeline
/// feeds ids through `float32` placeholders.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching data buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::DataLength {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros (scratch-arena backed, see [`Drop`] impl notes).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor { shape, data: scratch::take_vec(n) }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        let mut data = scratch::take_vec(n);
        if value != 0.0 {
            data.fill(value);
        }
        Tensor { shape, data }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer (which then bypasses the
    /// drop-time scratch recycling — the caller owns it).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The single value of a rank-0 or single-element tensor.
    pub fn item(&self) -> f32 {
        debug_assert_eq!(self.data.len(), 1, "item() on multi-element tensor");
        self.data[0]
    }

    /// Returns a reshaped copy sharing no storage; element count must match.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::Shape(ShapeError::ElementCount {
                from: self.shape.0.clone(),
                to: shape.0.clone(),
            }));
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// In-place reshape; element count must match.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<(), TensorError> {
        let shape = shape.into();
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::Shape(ShapeError::ElementCount {
                from: self.shape.0.clone(),
                to: shape.0.clone(),
            }));
        }
        self.shape = shape;
        Ok(())
    }

    /// Views the tensor as a `(rows, cols)` matrix where `cols` is the
    /// innermost axis extent. Panics in debug builds if the tensor is a scalar.
    pub fn as_matrix(&self) -> (usize, usize, &[f32]) {
        (self.shape.outer_elements(), self.shape.last_dim(), &self.data)
    }

    /// Returns the `i`-th outermost slice (e.g. record `i` of a batch) as a
    /// new tensor with the leading axis removed.
    pub fn outer_slice(&self, i: usize) -> Tensor {
        debug_assert!(self.shape.rank() >= 1);
        let inner = self.shape.without_batch();
        let n = inner.num_elements();
        let start = i * n;
        Tensor { shape: inner, data: self.data[start..start + n].to_vec() }
    }

    /// Stacks per-record tensors (all of identical shape) into one batched
    /// tensor with a new leading axis.
    pub fn stack(records: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = records.first().ok_or_else(|| {
            TensorError::Incompatible("stack of zero tensors".to_string())
        })?;
        let inner = first.shape.clone();
        let mut data = Vec::with_capacity(records.len() * first.len());
        for r in records {
            r.shape.expect_eq(&inner)?;
            data.extend_from_slice(&r.data);
        }
        Ok(Tensor { shape: inner.with_batch(records.len()), data })
    }

    /// Concatenates tensors along the outermost axis (they must agree on all
    /// inner axes).
    pub fn concat_outer(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = parts.first().ok_or_else(|| {
            TensorError::Incompatible("concat of zero tensors".to_string())
        })?;
        let inner = first.shape.without_batch();
        let mut total = 0usize;
        for p in parts {
            p.shape.without_batch().expect_eq(&inner)?;
            total += p.shape.dim(0);
        }
        let mut data = Vec::with_capacity(total * inner.num_elements());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { shape: inner.with_batch(total), data })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Dropping a tensor recycles its backing buffer into the thread-local
/// [`scratch`] arena, so the training loop's short-lived activations and
/// gradients feed the next step's kernel outputs instead of the allocator.
/// Tiny buffers bypass the arena and retention is bounded (see `scratch`).
impl Drop for Tensor {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::DataLength { expected: 4, actual: 3 }));
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros([2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full([2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.shape(), &Shape::new([3, 2]));
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn stack_and_outer_slice_round_trip() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &Shape::new([2, 3]));
        assert_eq!(s.outer_slice(0), a);
        assert_eq!(s.outer_slice(1), b);
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::zeros([3]);
        let b = Tensor::zeros([4]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn concat_outer_appends_batches() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([1, 2], vec![5.0, 6.0]).unwrap();
        let c = Tensor::concat_outer(&[a, b]).unwrap();
        assert_eq!(c.shape(), &Shape::new([3, 2]));
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn map_and_stats() {
        let t = Tensor::from_vec([2, 2], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        assert_eq!(t.map(f32::abs).sum(), 10.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max_abs(), 4.0);
        assert!(t.all_finite());
        let mut u = t.clone();
        u.map_in_place(|x| x * 2.0);
        assert_eq!(u.sum(), 4.0);
        let nan = Tensor::from_vec([1], vec![f32::NAN]).unwrap();
        assert!(!nan.all_finite());
    }

    #[test]
    fn as_matrix_view() {
        let t = Tensor::zeros([2, 3, 4]);
        let (rows, cols, data) = t.as_matrix();
        assert_eq!((rows, cols), (6, 4));
        assert_eq!(data.len(), 24);
    }
}
