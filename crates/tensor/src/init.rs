//! Deterministic random initialization.
//!
//! All "pre-trained" weights in the reproduction are generated from seeded
//! RNGs so that two invocations of a model-init function produce *identical*
//! parameters — the property the multi-model graph relies on when deciding two
//! layers are identical (Def 4.3 in the paper).

use crate::{Shape, Tensor};
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

/// Creates the standard seeded RNG used across the workspace.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard-normal samples scaled by `std`.
pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.num_elements();
    let mut data = Vec::with_capacity(n);
    // Box-Muller transform; avoids a dependency on rand_distr.
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data).expect("randn length matches shape by construction")
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.num_elements();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("uniform length matches shape by construction")
}

/// Glorot/Xavier-uniform initialization for a weight matrix with the given
/// fan-in and fan-out, the default for dense and attention projections.
pub fn glorot(shape: impl Into<Shape>, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = randn([4, 4], 1.0, &mut seeded_rng(7));
        let b = randn([4, 4], 1.0, &mut seeded_rng(7));
        assert_eq!(a, b);
        let c = randn([4, 4], 1.0, &mut seeded_rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_unit_std() {
        let t = randn([10_000], 1.0, &mut seeded_rng(1));
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform([1000], -0.5, 0.5, &mut seeded_rng(2));
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        let small = glorot([4, 4], 2, 2, &mut seeded_rng(3));
        let large = glorot([4, 4], 2000, 2000, &mut seeded_rng(3));
        assert!(large.max_abs() < small.max_abs());
    }
}
