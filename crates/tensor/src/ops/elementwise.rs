//! Elementwise arithmetic with limited broadcasting.
//!
//! Broadcasting is restricted to the one pattern the model zoo needs: a
//! right-hand operand whose shape is a *suffix* of the left-hand shape (e.g.
//! adding a `[dim]` bias to a `[batch, seq, dim]` activation). This keeps the
//! kernels branch-free and easy to verify.

use crate::{Tensor, TensorError};

fn suffix_broadcast_len(a: &Tensor, b: &Tensor) -> Result<usize, TensorError> {
    let an = a.len();
    let bn = b.len();
    if bn == 0 || !an.is_multiple_of(bn) {
        return Err(TensorError::Incompatible(format!(
            "cannot broadcast {} elements over {}",
            bn, an
        )));
    }
    let a_dims = &a.shape().0;
    let b_dims = &b.shape().0;
    if b_dims.len() > a_dims.len() || a_dims[a_dims.len() - b_dims.len()..] != b_dims[..] {
        return Err(TensorError::Incompatible(format!(
            "shape {:?} is not a suffix of {:?}",
            b_dims, a_dims
        )));
    }
    Ok(bn)
}

/// `a + b`, where `b`'s shape must equal `a`'s or be a suffix of it.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = a.clone();
    add_assign(&mut out, b)?;
    Ok(out)
}

/// `a += b` with suffix broadcasting.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<(), TensorError> {
    let bn = suffix_broadcast_len(a, b)?;
    let bd = b.data();
    for (i, x) in a.data_mut().iter_mut().enumerate() {
        *x += bd[i % bn];
    }
    Ok(())
}

/// `a - b` with suffix broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let bn = suffix_broadcast_len(a, b)?;
    let bd = b.data();
    let mut out = a.clone();
    for (i, x) in out.data_mut().iter_mut().enumerate() {
        *x -= bd[i % bn];
    }
    Ok(out)
}

/// Elementwise product (no broadcasting; shapes must match).
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    a.shape().expect_eq(b.shape())?;
    let mut out = a.clone();
    for (x, &y) in out.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
    Ok(out)
}

/// `a * s` for a scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// `y += alpha * x` (shapes must match) — the SGD update kernel.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<(), TensorError> {
    x.shape().expect_eq(y.shape())?;
    for (yv, &xv) in y.data_mut().iter_mut().zip(x.data()) {
        *yv += alpha * xv;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn add_broadcasts_suffix() {
        let a = Tensor::from_vec([2, 3], vec![0.0; 6]).unwrap();
        let bias = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let c = add(&a, &bias).unwrap();
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_rejects_non_suffix() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2]);
        assert!(add(&a, &b).is_err());
        // Same element count but wrong placement: [2] is not a suffix of [2,3].
        let c = Tensor::zeros([6]);
        assert!(add(&a, &c).is_err());
    }

    #[test]
    fn sub_and_scale() {
        let a = Tensor::from_vec([2], vec![5.0, 7.0]).unwrap();
        let b = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        assert_eq!(sub(&a, &b).unwrap().data(), &[4.0, 5.0]);
        assert_eq!(scale(&a, 2.0).data(), &[10.0, 14.0]);
    }

    #[test]
    fn hadamard_requires_exact_shape() {
        let a = Tensor::from_vec([2], vec![3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2], vec![2.0, 0.5]).unwrap();
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[6.0, 2.0]);
        assert!(hadamard(&a, &Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let mut y = Tensor::from_vec([2], vec![0.5, 0.5]).unwrap();
        axpy(-0.5, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[0.0, 1.0]);
    }
}
