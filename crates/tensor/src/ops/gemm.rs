//! Cache-blocked packed GEMM engine with runtime kernel dispatch.
//!
//! This is the physical operator under every large matmul and (via im2col)
//! every large convolution in the workspace: a BLIS-style MC/KC/NC loop
//! nest over *packed* operand panels with a fixed-size [`MR`]×[`NR`]
//! register microkernel. The interesting properties:
//!
//! * **Strided inputs.** Operands are [`MatRef`]s — a data slice plus
//!   row/column strides — so all four transpose combinations of
//!   [`crate::ops::MatmulSpec`] are handled by *packing*, never by an
//!   explicit transpose pass or a strided inner loop. The microkernel only
//!   ever sees contiguous panels.
//! * **Deterministic summation.** Each output element is accumulated over
//!   `k` strictly ascending, in KC-sized register-resident partial sums,
//!   by exactly one task. The order is a function of the blocking
//!   parameters and kernel kind only — never of the worker count — so
//!   results are bit-identical at any thread width *within one kernel*.
//! * **No per-call allocation.** Packing panels come from the thread-local
//!   [`nautilus_util::scratch`] arena (32-byte aligned via
//!   [`scratch::take_aligned`]) and are reused across calls.
//! * **Two microkernels behind one dispatch layer.**
//!   - [`KernelKind::Safe`]: the portable default — fixed-trip-count array
//!     arithmetic over `[[f32; NR]; MR]` accumulators that rustc
//!     auto-vectorizes without FMA contraction. It runs on the *legacy*
//!     blocking constants ([`MC`]/[`KC`]/[`NC`]) so its results stay
//!     bit-identical to every release since the blocked engine landed.
//!   - [`KernelKind::Fma`]: an explicit AVX2+FMA `std::arch` microkernel
//!     (`_mm256_fmadd_ps` over a 6×16 register tile — [`MR_FMA`]×
//!     [`NR_FMA`] — two 8-lane accumulators per output row),
//!     selected at runtime via `is_x86_feature_detected!` and opt-in per
//!     backend (`SystemConfig.gemm_kernel` or `NAUTILUS_GEMM_KERNEL=fma`).
//!     It runs on an auto-tuned `(MC, KC, NC)` blocking chosen from the
//!     detected cache geometry at first use. Fused multiply-adds round
//!     once instead of twice, so FMA results differ from Safe in rounding
//!     (bounded by the `gemm_properties` differential suite), which is
//!     exactly why it is opt-in — see DESIGN.md "Determinism policy".
//!
//! Parallelism partitions output rows into MC-aligned macro-tile runs via
//! [`pool::aligned_chunk_len`]; each task packs its own panels. Telemetry
//! (PR 3 conventions): a `gemm` span with `gemm.pack` / `gemm.compute`
//! children, `gemm.pack_bytes` and `gemm.microkernel_calls` counters, and
//! a one-shot `gemm.kernel_selected` event recording the resolved kernel
//! and blocking.

use nautilus_util::{eventlog, pool, scratch, telemetry};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Microkernel register-tile rows.
pub const MR: usize = 8;
/// Microkernel register-tile columns.
pub const NR: usize = 8;
/// Rows of A per packed panel for the safe kernel (multiple of [`MR`]).
pub const MC: usize = 64;
/// Shared dimension per packed panel pair for the safe kernel.
pub const KC: usize = 256;
/// Columns of B per packed panel for the safe kernel (multiple of [`NR`]).
pub const NC: usize = 256;
/// FMA microkernel register-tile rows (6×16 tile: 12 `__m256`
/// accumulators saturate both FMA ports while hiding FMA latency).
pub const MR_FMA: usize = 6;
/// FMA microkernel register-tile columns (two 8-lane vectors).
pub const NR_FMA: usize = 16;

/// Above this many multiply-adds a GEMM fans out over the shared pool
/// (mirrors the matmul/conv thresholds).
const PAR_THRESHOLD: usize = 1 << 22;

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

/// Which register microkernel a GEMM runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable auto-vectorized kernel, no FMA contraction. Deterministic
    /// default: bit-identical across releases and thread widths.
    Safe,
    /// Explicit AVX2+FMA microkernel. Opt-in; requires runtime AVX2+FMA.
    Fma,
}

impl KernelKind {
    /// Parses the `NAUTILUS_GEMM_KERNEL` / `SystemConfig.gemm_kernel`
    /// spellings. Unknown strings resolve to `None` (treated as unset).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "safe" => Some(KernelKind::Safe),
            "fma" => Some(KernelKind::Fma),
            _ => None,
        }
    }

    /// Stable lowercase name, used in telemetry labels and events.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Safe => "safe",
            KernelKind::Fma => "fma",
        }
    }
}

/// Whether the explicit FMA microkernel can run on this host. Detection is
/// cached by `std` behind an atomic, so this is cheap to call per-GEMM.
pub fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Programmatic kernel preference (from `SystemConfig.gemm_kernel` via the
/// backend): 0 = unset, 1 = safe, 2 = fma.
static KERNEL_PREF: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide kernel preference. The `NAUTILUS_GEMM_KERNEL`
/// environment override, when present and valid, still wins.
pub fn set_kernel_preference(kind: KernelKind) {
    let v = match kind {
        KernelKind::Safe => 1,
        KernelKind::Fma => 2,
    };
    KERNEL_PREF.store(v, Ordering::Relaxed);
}

fn kernel_preference() -> Option<KernelKind> {
    match KERNEL_PREF.load(Ordering::Relaxed) {
        1 => Some(KernelKind::Safe),
        2 => Some(KernelKind::Fma),
        _ => None,
    }
}

fn env_kernel() -> Option<KernelKind> {
    static ENV: OnceLock<Option<KernelKind>> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("NAUTILUS_GEMM_KERNEL").ok().as_deref().and_then(KernelKind::parse))
}

/// Pure resolution order: env override > programmatic preference > safe
/// default; an FMA request degrades to Safe when the host lacks AVX2+FMA.
/// Split out (and given `supported` explicitly) so the routing is unit
/// testable on every architecture, including the non-x86 fallback.
fn resolve(env: Option<KernelKind>, pref: Option<KernelKind>, supported: bool) -> KernelKind {
    match env.or(pref).unwrap_or(KernelKind::Safe) {
        KernelKind::Fma if supported => KernelKind::Fma,
        _ => KernelKind::Safe,
    }
}

/// The kernel the next [`gemm`] / [`gemm_serial`] call will run, after env
/// override, configured preference, and feature detection.
pub fn resolved_kernel() -> KernelKind {
    resolve(env_kernel(), kernel_preference(), fma_supported())
}

// ---------------------------------------------------------------------------
// Blocking
// ---------------------------------------------------------------------------

/// Cache-blocking parameters for one kernel: rows of A per L2 panel,
/// shared-dim extent per panel pair, columns of B per L3 panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of A per packed macro-panel (multiple of [`MR`]).
    pub mc: usize,
    /// Shared dimension per packed panel pair.
    pub kc: usize,
    /// Columns of B per packed macro-panel (multiple of [`NR`]).
    pub nc: usize,
}

/// Legacy blocking: what the safe kernel has always used. Kept verbatim so
/// the safe path stays bit-identical to prior releases (changing KC would
/// move the partial-sum boundaries and change rounding).
pub const SAFE_BLOCKING: Blocking = Blocking { mc: MC, kc: KC, nc: NC };

fn round_down_to(v: usize, step: usize) -> usize {
    (v / step) * step
}

/// Chooses `(MC, KC, NC)` for the FMA kernel's 6×16 tile from detected
/// cache sizes (bytes). The targets follow the classic BLIS sizing
/// argument:
///
/// * `KC` — one A micro-strip (`MR_FMA×KC`) plus one B micro-strip
///   (`KC×NR_FMA`) should occupy at most half of L1d, leaving room for the
///   output tile and streaming loads: `KC = l1d / (2·(MR_FMA+NR_FMA)·4)`,
///   in 64-step granularity, clamped to `[128, 512]`.
/// * `MC` — the packed A panel (`MC×KC`) should fit in half of L2:
///   `MC = l2 / (2·KC·4)`, a multiple of `MR_FMA`, clamped to `[66, 510]`
///   (the nearest `MR_FMA` multiples of the safe kernel's 64/512 range).
/// * `NC` — the packed B panel (`KC×NC`) should fit in a quarter of L3
///   (shared with other cores and the output): `NC = l3 / (4·KC·4)`, a
///   multiple of `NR_FMA`, clamped to `[256, 4096]`.
///
/// With the common 32 KiB / 512 KiB / 8 MiB geometry this lands on
/// `(510, 128, 4096)`. Pure so the table is testable without sysfs.
fn tuned_blocking(l1d: usize, l2: usize, l3: usize) -> Blocking {
    let kc = round_down_to(l1d / (2 * (MR_FMA + NR_FMA) * 4), 64).clamp(128, 512);
    let mc = round_down_to(l2 / (2 * kc * 4), MR_FMA).clamp(66, 510);
    let nc = round_down_to(l3 / (4 * kc * 4), NR_FMA).clamp(256, 4096);
    Blocking { mc, kc, nc }
}

/// Parses a sysfs cache size string like `32K`, `1024K`, or `8M` to bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024usize),
        b'M' | b'm' => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|v| v * mult)
}

/// Detected `(l1d, l2, l3)` cache sizes in bytes, from
/// `/sys/devices/system/cpu/cpu0/cache/index*`. Missing levels fall back
/// to a conservative 32 KiB / 512 KiB / 8 MiB geometry.
fn detected_cache_sizes() -> (usize, usize, usize) {
    let (mut l1d, mut l2, mut l3) = (None, None, None);
    for idx in 0..6 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let read = |leaf: &str| std::fs::read_to_string(format!("{base}/{leaf}")).ok();
        let (Some(level), Some(size)) = (read("level"), read("size")) else { continue };
        let Some(bytes) = parse_cache_size(&size) else { continue };
        let ty = read("type").unwrap_or_default();
        let ty = ty.trim();
        match level.trim() {
            "1" if ty != "Instruction" => l1d = l1d.or(Some(bytes)),
            "2" => l2 = l2.or(Some(bytes)),
            "3" => l3 = l3.or(Some(bytes)),
            _ => {}
        }
    }
    (l1d.unwrap_or(32 << 10), l2.unwrap_or(512 << 10), l3.unwrap_or(8 << 20))
}

/// Blocking for the FMA kernel: auto-tuned from the cache geometry once at
/// first use, then cached for the process lifetime.
fn fma_blocking() -> Blocking {
    static TUNED: OnceLock<Blocking> = OnceLock::new();
    *TUNED.get_or_init(|| {
        let (l1d, l2, l3) = detected_cache_sizes();
        tuned_blocking(l1d, l2, l3)
    })
}

/// Blocking parameters a given kernel runs with.
pub fn blocking_for(kind: KernelKind) -> Blocking {
    match kind {
        KernelKind::Safe => SAFE_BLOCKING,
        KernelKind::Fma => fma_blocking(),
    }
}

/// `(resolved kernel, its blocking)` — the exact configuration the next
/// dispatched GEMM runs with. Used by telemetry, matmul threshold
/// validation, and tests.
pub fn kernel_info() -> (KernelKind, Blocking) {
    let kind = resolved_kernel();
    (kind, blocking_for(kind))
}

/// Work threshold (in multiply-adds, `m·k·n`) above which the blocked
/// engine beats the naive row kernel for the given microkernel. The FMA
/// kernel amortizes packing sooner (its compute loop is ~2× denser), so
/// its crossover sits one octave below the safe kernel's. Both values are
/// validated against the kernel table by the `gemm_fma` bench gate.
pub fn dispatch_threshold(kind: KernelKind) -> usize {
    match kind {
        KernelKind::Safe => 1 << 17,
        KernelKind::Fma => 1 << 16,
    }
}

/// Bitmask of kernel kinds whose selection was already logged.
static SELECTION_LOGGED: AtomicU8 = AtomicU8::new(0);

/// Records the resolved kernel + blocking once per kind per process: a
/// `gemm.kernel_selected` event and a `gemm.kernel_blocking` labeled gauge
/// family would be overkill — the event carries the numbers.
fn record_selection(kind: KernelKind, blk: Blocking) {
    let bit = match kind {
        KernelKind::Safe => 1u8,
        KernelKind::Fma => 2u8,
    };
    if SELECTION_LOGGED.fetch_or(bit, Ordering::Relaxed) & bit != 0 {
        return;
    }
    eventlog::info(
        "gemm.kernel_selected",
        &[
            ("kernel", eventlog::Value::Str(kind.as_str())),
            ("mc", eventlog::Value::U64(blk.mc as u64)),
            ("kc", eventlog::Value::U64(blk.kc as u64)),
            ("nc", eventlog::Value::U64(blk.nc as u64)),
            ("fma_supported", eventlog::Value::Bool(fma_supported())),
        ],
    );
}

// ---------------------------------------------------------------------------
// Views and packing
// ---------------------------------------------------------------------------

/// A strided matrix view: element `(i, j)` lives at `data[i*rs + j*cs]`.
///
/// A plain row-major `(rows, cols)` matrix is `rs = cols, cs = 1`; its
/// transpose is the same slice with `rs = 1, cs = cols`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    /// Backing element slice.
    pub data: &'a [f32],
    /// Row stride.
    pub rs: usize,
    /// Column stride.
    pub cs: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major `(rows, cols)` view of `data`.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: cols, cs: 1 }
    }

    /// Transposed view of a row-major `(rows, cols)` buffer: the result
    /// reads as the `(cols, rows)` transpose without moving data.
    pub fn transposed(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: 1, cs: cols }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Packs `A[row0 .. row0+mc, p0 .. p0+kc]` into `SR`-row strips:
/// `apack[s*kc*SR + k*SR + r] == A[row0 + s*SR + r, p0 + k]`, rows past
/// `mc` zero-padded so the microkernel never branches on the edge. The
/// safe kernel packs `SR = MR` strips, the FMA kernel `SR = MR_FMA`.
fn pack_a<const SR: usize>(apack: &mut [f32], a: MatRef, row0: usize, mc: usize, p0: usize, kc: usize) {
    let strips = mc.div_ceil(SR);
    for s in 0..strips {
        let strip = &mut apack[s * kc * SR..(s + 1) * kc * SR];
        let r0 = s * SR;
        let rows = SR.min(mc - r0);
        for k in 0..kc {
            let dst = &mut strip[k * SR..k * SR + SR];
            for r in 0..rows {
                dst[r] = a.at(row0 + r0 + r, p0 + k);
            }
            for d in dst[rows..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Packs `B[p0 .. p0+kc, col0 .. col0+nc]` into `SC`-column strips:
/// `bpack[s*kc*SC + k*SC + c] == B[p0 + k, col0 + s*SC + c]`, columns past
/// `nc` zero-padded. `SC = NR` for the safe kernel, `NR_FMA` for FMA.
fn pack_b<const SC: usize>(bpack: &mut [f32], b: MatRef, p0: usize, kc: usize, col0: usize, nc: usize) {
    let strips = nc.div_ceil(SC);
    for s in 0..strips {
        let strip = &mut bpack[s * kc * SC..(s + 1) * kc * SC];
        let c0 = s * SC;
        let cols = SC.min(nc - c0);
        for k in 0..kc {
            let dst = &mut strip[k * SC..k * SC + SC];
            for c in 0..cols {
                dst[c] = b.at(p0 + k, col0 + c0 + c);
            }
            for d in dst[cols..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernels
// ---------------------------------------------------------------------------

/// The safe register microkernel:
/// `acc[r][c] += sum_k ap[k*MR+r] * bp[k*NR+c]`.
///
/// `k` ascends sequentially with one scalar accumulator chain per output
/// element; vectorization happens across the NR columns, so reordering
/// never touches the per-element summation order, and the separate
/// multiply and add round twice per step (no FMA contraction).
#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for k in 0..kc {
        let a = &ap[k * MR..k * MR + MR];
        let b = &bp[k * NR..k * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
}

/// The explicit AVX2+FMA microkernel over a 6-row × 16-column tile: two
/// `__m256` accumulators per output row (12 total), so the 2-per-cycle FMA
/// ports stay saturated while each chain's 4-5 cycle latency hides behind
/// the other eleven — the classic sgemm register shape. An 8×8 tile (one
/// accumulator per row) is latency-bound instead: eight chains is exactly
/// the latency×throughput product, so any stall drains the pipeline.
///
/// Per element the summation is one chain with k strictly ascending, same
/// order as the safe kernel; only the rounding differs — each FMA rounds
/// once where mul+add round twice.
///
/// Loads are `loadu`: the packed panels come from
/// [`scratch::take_aligned`] so they are 32-byte aligned in practice (no
/// split-load penalty), but alignment is a performance property, not a
/// safety requirement.
///
/// # Safety
/// Caller must ensure the host supports AVX2 and FMA
/// ([`fma_supported`]), and that `ap`/`bp` hold at least `kc*MR_FMA` /
/// `kc*NR_FMA` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR_FMA]; MR_FMA]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR_FMA && bp.len() >= kc * NR_FMA);
    let mut rows: [[__m256; 2]; MR_FMA] = [[_mm256_setzero_ps(); 2]; MR_FMA];
    for (r, row) in rows.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(acc[r].as_ptr());
        row[1] = _mm256_loadu_ps(acc[r].as_ptr().add(8));
    }
    let ap = ap.as_ptr();
    let bp = bp.as_ptr();
    for k in 0..kc {
        let bv0 = _mm256_loadu_ps(bp.add(k * NR_FMA));
        let bv1 = _mm256_loadu_ps(bp.add(k * NR_FMA + 8));
        let av = ap.add(k * MR_FMA);
        for (r, row) in rows.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*av.add(r));
            row[0] = _mm256_fmadd_ps(a, bv0, row[0]);
            row[1] = _mm256_fmadd_ps(a, bv1, row[1]);
        }
    }
    for (r, row) in rows.iter().enumerate() {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), row[0]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), row[1]);
    }
}

// ---------------------------------------------------------------------------
// Blocked loop nest
// ---------------------------------------------------------------------------

/// One task's full blocked loop nest over `rows` output rows starting at
/// global row `row0`, writing `out` (the task's exclusive `rows × n`
/// slice). `out` must be zeroed; tiles accumulate across KC blocks.
/// `kind` must already be sanitized.
fn gemm_task(
    kind: KernelKind,
    blk: Blocking,
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    a: MatRef,
    b: MatRef,
    out: &mut [f32],
) {
    match kind {
        KernelKind::Safe => gemm_task_safe(blk, row0, rows, k, n, a, b, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Fma => gemm_task_fma(blk, row0, rows, k, n, a, b, out),
        #[cfg(not(target_arch = "x86_64"))]
        // Unreachable: `sanitize` degrades Fma to Safe off x86_64.
        KernelKind::Fma => gemm_task_safe(blk, row0, rows, k, n, a, b, out),
    }
}

/// The safe kernel's loop nest: MR×NR tiles over MR/NR-strip panels. This
/// body (and its packing layout) is byte-for-byte the pre-dispatch blocked
/// engine, pinned by `safe_path_bit_pattern_is_pinned`.
fn gemm_task_safe(
    blk: Blocking,
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    a: MatRef,
    b: MatRef,
    out: &mut [f32],
) {
    let mut apack = scratch::take_aligned(blk.mc.div_ceil(MR) * MR * blk.kc);
    let mut bpack = scratch::take_aligned(blk.kc * blk.nc.div_ceil(NR) * NR);
    let mut pack_bytes = 0u64;
    let mut mk_calls = 0u64;
    let mut jc = 0;
    while jc < n {
        let nc = blk.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = blk.kc.min(k - pc);
            {
                let _sp = telemetry::span("tensor", "gemm.pack");
                pack_b::<NR>(&mut bpack, b, pc, kc, jc, nc);
                pack_bytes += (kc * nc * 4) as u64;
            }
            let mut ic = 0;
            while ic < rows {
                let mc = blk.mc.min(rows - ic);
                {
                    let _sp = telemetry::span("tensor", "gemm.pack");
                    pack_a::<MR>(&mut apack, a, row0 + ic, mc, pc, kc);
                    pack_bytes += (mc * kc * 4) as u64;
                }
                let _sp = telemetry::span("tensor", "gemm.compute");
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bstrip = &bpack[(jr / NR) * kc * NR..(jr / NR + 1) * kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let astrip = &apack[(ir / MR) * kc * MR..(ir / MR + 1) * kc * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        microkernel(kc, astrip, bstrip, &mut acc);
                        mk_calls += 1;
                        let base = (ic + ir) * n + jc + jr;
                        for r in 0..mr {
                            let crow = &mut out[base + r * n..base + r * n + nr];
                            for (c, &v) in crow.iter_mut().zip(acc[r].iter()) {
                                *c += v;
                            }
                        }
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += blk.mc;
            }
            pc += blk.kc;
        }
        jc += blk.nc;
    }
    if telemetry::enabled() {
        telemetry::GEMM_PACK_BYTES.add(pack_bytes);
        telemetry::GEMM_MICROKERNEL_CALLS.add(mk_calls);
    }
}

/// The FMA kernel's loop nest: the same MC/KC/NC structure as
/// [`gemm_task_safe`] but over MR_FMA/NR_FMA-strip panels feeding the
/// 6×16 register tile.
#[cfg(target_arch = "x86_64")]
fn gemm_task_fma(
    blk: Blocking,
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    a: MatRef,
    b: MatRef,
    out: &mut [f32],
) {
    let mut apack = scratch::take_aligned(blk.mc.div_ceil(MR_FMA) * MR_FMA * blk.kc);
    let mut bpack = scratch::take_aligned(blk.kc * blk.nc.div_ceil(NR_FMA) * NR_FMA);
    let mut pack_bytes = 0u64;
    let mut mk_calls = 0u64;
    let mut jc = 0;
    while jc < n {
        let nc = blk.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = blk.kc.min(k - pc);
            {
                let _sp = telemetry::span("tensor", "gemm.pack");
                pack_b::<NR_FMA>(&mut bpack, b, pc, kc, jc, nc);
                pack_bytes += (kc * nc * 4) as u64;
            }
            let mut ic = 0;
            while ic < rows {
                let mc = blk.mc.min(rows - ic);
                {
                    let _sp = telemetry::span("tensor", "gemm.pack");
                    pack_a::<MR_FMA>(&mut apack, a, row0 + ic, mc, pc, kc);
                    pack_bytes += (mc * kc * 4) as u64;
                }
                let _sp = telemetry::span("tensor", "gemm.compute");
                let mut jr = 0;
                while jr < nc {
                    let nr = NR_FMA.min(nc - jr);
                    let bstrip =
                        &bpack[(jr / NR_FMA) * kc * NR_FMA..(jr / NR_FMA + 1) * kc * NR_FMA];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR_FMA.min(mc - ir);
                        let astrip =
                            &apack[(ir / MR_FMA) * kc * MR_FMA..(ir / MR_FMA + 1) * kc * MR_FMA];
                        let mut acc = [[0.0f32; NR_FMA]; MR_FMA];
                        // SAFETY: `gemm_task` routes here only for a
                        // sanitized Fma kind (host has AVX2+FMA); the
                        // strips are sized `kc*MR_FMA` / `kc*NR_FMA` by
                        // the packers.
                        unsafe { microkernel_fma(kc, astrip, bstrip, &mut acc) };
                        mk_calls += 1;
                        let base = (ic + ir) * n + jc + jr;
                        for r in 0..mr {
                            let crow = &mut out[base + r * n..base + r * n + nr];
                            for (c, &v) in crow.iter_mut().zip(acc[r].iter()) {
                                *c += v;
                            }
                        }
                        ir += MR_FMA;
                    }
                    jr += NR_FMA;
                }
                ic += blk.mc;
            }
            pc += blk.kc;
        }
        jc += blk.nc;
    }
    if telemetry::enabled() {
        telemetry::GEMM_PACK_BYTES.add(pack_bytes);
        telemetry::GEMM_MICROKERNEL_CALLS.add(mk_calls);
    }
}

/// Degrades an explicit FMA request to Safe when the host can't run it, so
/// `gemm_with(Fma, ..)` is callable unconditionally (tests, benches).
fn sanitize(kind: KernelKind) -> KernelKind {
    match kind {
        KernelKind::Fma if !fma_supported() => KernelKind::Safe,
        k => k,
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Blocked packed GEMM: `out[m × n] += A[m × k] · B[k × n]` with arbitrary
/// operand strides, run with an explicitly chosen kernel (degraded to
/// [`KernelKind::Safe`] when FMA is unsupported). `out` is row-major and
/// must be zero-initialized.
///
/// Large products partition output rows into MC-aligned runs on the shared
/// pool; results are bit-identical at any thread width for a fixed kernel.
pub fn gemm_with(kind: KernelKind, m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    let _sp = telemetry::span("tensor", "gemm");
    if m == 0 || n == 0 {
        return;
    }
    let kind = sanitize(kind);
    let blk = blocking_for(kind);
    record_selection(kind, blk);
    let work = m * k * n;
    if work < PAR_THRESHOLD || pool::num_threads() <= 1 {
        gemm_task(kind, blk, 0, m, k, n, a, b, out);
        return;
    }
    let chunk_rows = pool::aligned_chunk_len(m, blk.mc);
    pool::scope_chunks(out, chunk_rows * n, |ci, ochunk| {
        gemm_task(kind, blk, ci * chunk_rows, ochunk.len() / n, k, n, a, b, ochunk);
    });
}

/// Blocked packed GEMM with the runtime-resolved kernel (env override >
/// configured preference > safe default). See [`gemm_with`].
pub fn gemm(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    gemm_with(resolved_kernel(), m, k, n, a, b, out);
}

/// Single-task blocked GEMM with an explicit kernel, bypassing the pool.
/// Used where the caller already owns the parallel partitioning (e.g.
/// per-image im2col tasks) and by benches isolating single-core kernel
/// quality. Bit-identical to [`gemm_with`] for the same kernel by the
/// fixed-summation-order contract.
pub fn gemm_serial_with(
    kind: KernelKind,
    m: usize,
    k: usize,
    n: usize,
    a: MatRef,
    b: MatRef,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let kind = sanitize(kind);
    let blk = blocking_for(kind);
    record_selection(kind, blk);
    gemm_task(kind, blk, 0, m, k, n, a, b, out);
}

/// Single-task blocked GEMM with the runtime-resolved kernel. See
/// [`gemm_serial_with`].
pub fn gemm_serial(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    gemm_serial_with(resolved_kernel(), m, k, n, a, b, out);
}

/// Unblocked i-p-j reference kernel over the same strided views. This is
/// the rounding reference the blocked kernel is validated against, and the
/// "naive" side of the `gemm` bench group / `BENCH_gemm.json` gate.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a.at(i, p);
            if av == 0.0 {
                continue;
            }
            let bbase = p * b.rs;
            if b.cs == 1 {
                let brow = &b.data[bbase..bbase + n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            } else {
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += av * b.data[bbase + j * b.cs];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};
    use nautilus_util::pool::with_parallelism_limit;

    fn rel_close(x: f32, y: f32) -> bool {
        (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs()))
    }

    #[test]
    fn blocked_matches_naive_on_awkward_sizes() {
        // Sizes straddling every edge case: below MR/NR, non-multiples of
        // the tile sizes, and spans crossing MC/KC/NC boundaries.
        let mut rng = seeded_rng(41);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 7), (8, 8, 8), (13, 300, 17), (70, 70, 70), (65, 257, 259)]
        {
            let a = randn([m, k], 1.0, &mut rng);
            let b = randn([k, n], 1.0, &mut rng);
            let ar = MatRef::row_major(a.data(), k);
            let br = MatRef::row_major(b.data(), n);
            let mut naive = vec![0.0f32; m * n];
            gemm_naive(m, k, n, ar, br, &mut naive);
            for kind in [KernelKind::Safe, KernelKind::Fma] {
                let mut blocked = vec![0.0f32; m * n];
                gemm_with(kind, m, k, n, ar, br, &mut blocked);
                for (i, (&x, &y)) in blocked.iter().zip(naive.iter()).enumerate() {
                    assert!(rel_close(x, y), "({m},{k},{n})[{i}] {kind:?}: blocked {x} vs naive {y}");
                }
            }
        }
    }

    #[test]
    fn transposed_views_match_materialized_transpose() {
        let mut rng = seeded_rng(42);
        let (m, k, n) = (20usize, 33usize, 41usize);
        let at = randn([k, m], 1.0, &mut rng); // A stored transposed
        let bt = randn([n, k], 1.0, &mut rng); // B stored transposed
        // Materialize the plain operands.
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at.data()[p * m + i];
            }
        }
        let mut b = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = bt.data()[j * k + p];
            }
        }
        for kind in [KernelKind::Safe, KernelKind::Fma] {
            let mut want = vec![0.0f32; m * n];
            gemm_with(kind, m, k, n, MatRef::row_major(&a, k), MatRef::row_major(&b, n), &mut want);
            let mut got = vec![0.0f32; m * n];
            gemm_with(
                kind,
                m,
                k,
                n,
                MatRef::transposed(at.data(), m),
                MatRef::transposed(bt.data(), k),
                &mut got,
            );
            assert_eq!(got, want, "{kind:?}: strided packing must fold the transposes exactly");
        }
    }

    #[test]
    fn parallel_gemm_bit_identical_across_limits() {
        let mut rng = seeded_rng(43);
        // 192*256*192 ≈ 9.4M multiply-adds: crosses PAR_THRESHOLD.
        let (m, k, n) = (192usize, 256usize, 192usize);
        let a = randn([m, k], 1.0, &mut rng);
        let b = randn([k, n], 1.0, &mut rng);
        for kind in [KernelKind::Safe, KernelKind::Fma] {
            let run = |limit: usize| {
                with_parallelism_limit(limit, || {
                    let mut out = vec![0.0f32; m * n];
                    gemm_with(
                        kind,
                        m,
                        k,
                        n,
                        MatRef::row_major(a.data(), k),
                        MatRef::row_major(b.data(), n),
                        &mut out,
                    );
                    out
                })
            };
            let reference = run(1);
            let mut serial = vec![0.0f32; m * n];
            gemm_serial_with(
                kind,
                m,
                k,
                n,
                MatRef::row_major(a.data(), k),
                MatRef::row_major(b.data(), n),
                &mut serial,
            );
            assert_eq!(reference, serial, "{kind:?}: serial entry point diverged");
            for limit in [2usize, 8] {
                assert_eq!(run(limit), reference, "{kind:?}: limit {limit} diverged");
            }
        }
    }

    #[test]
    fn packing_reuses_scratch_buffers() {
        let (h0, _) = nautilus_util::scratch::thread_stats();
        let mut rng = seeded_rng(44);
        let a = randn([64, 64], 1.0, &mut rng);
        let b = randn([64, 64], 1.0, &mut rng);
        let mut out = vec![0.0f32; 64 * 64];
        for _ in 0..3 {
            out.iter_mut().for_each(|x| *x = 0.0);
            gemm_serial(64, 64, 64, MatRef::row_major(a.data(), 64), MatRef::row_major(b.data(), 64), &mut out);
        }
        let (h1, _) = nautilus_util::scratch::thread_stats();
        assert!(h1 > h0, "repeated gemms must hit the scratch arena");
    }

    #[test]
    fn resolution_order_env_then_pref_then_safe() {
        use KernelKind::*;
        // Env wins over preference; Fma degrades without support.
        assert_eq!(resolve(Some(Safe), Some(Fma), true), Safe);
        assert_eq!(resolve(Some(Fma), Some(Safe), true), Fma);
        assert_eq!(resolve(None, Some(Fma), true), Fma);
        assert_eq!(resolve(None, Some(Fma), false), Safe);
        assert_eq!(resolve(Some(Fma), None, false), Safe);
        assert_eq!(resolve(None, None, true), Safe, "FMA must stay opt-in");
        assert_eq!(KernelKind::parse("FMA"), Some(Fma));
        assert_eq!(KernelKind::parse(" safe "), Some(Safe));
        assert_eq!(KernelKind::parse("avx512"), None);
    }

    /// The non-x86 fallback contract: feature detection is compile-time
    /// false, so every request — env, preference, or explicit `gemm_with`
    /// — routes to the safe kernel.
    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn non_x86_always_routes_to_safe() {
        assert!(!fma_supported());
        assert_eq!(resolve(Some(KernelKind::Fma), Some(KernelKind::Fma), fma_supported()), KernelKind::Safe);
        assert_eq!(sanitize(KernelKind::Fma), KernelKind::Safe);
    }

    #[test]
    fn tuned_blocking_respects_cache_budgets_and_granularity() {
        // The canonical desktop geometry lands on the documented table.
        assert_eq!(tuned_blocking(32 << 10, 512 << 10, 8 << 20), Blocking { mc: 510, kc: 128, nc: 4096 });
        for &(l1, l2, l3) in &[
            (16usize << 10, 256usize << 10, 2usize << 20),
            (48 << 10, 1 << 20, 32 << 20),
            (64 << 10, 2 << 20, 64 << 20),
            (1 << 10, 1 << 10, 1 << 10), // degenerate: clamps hold
        ] {
            let b = tuned_blocking(l1, l2, l3);
            assert_eq!(b.mc % MR_FMA, 0);
            assert_eq!(b.nc % NR_FMA, 0);
            assert_eq!(b.kc % 64, 0);
            assert!((128..=512).contains(&b.kc));
            assert!((66..=510).contains(&b.mc));
            assert!((256..=4096).contains(&b.nc));
        }
        assert_eq!(parse_cache_size("32K"), Some(32 << 10));
        assert_eq!(parse_cache_size("8M\n"), Some(8 << 20));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("zap"), None);
    }

    /// Safe-path regression pin: the safe kernel's exact bit pattern on a
    /// fixed seed must never drift, because serving determinism is
    /// promised across releases. The reference below re-implements the
    /// pre-dispatch engine's summation order from scratch (legacy KC,
    /// k-ascending, separate mul and add); any change to safe-path
    /// blocking or summation order breaks bit equality.
    #[test]
    fn safe_path_bit_pattern_is_pinned() {
        let mut rng = seeded_rng(4242);
        let (m, k, n) = (65usize, 300usize, 67usize);
        let a = randn([m, k], 1.0, &mut rng);
        let b = randn([k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        gemm_with(
            KernelKind::Safe,
            m,
            k,
            n,
            MatRef::row_major(a.data(), k),
            MatRef::row_major(b.data(), n),
            &mut out,
        );
        let mut reference = vec![0.0f32; m * n];
        legacy_reference(m, k, n, a.data(), b.data(), &mut reference);
        let same = out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "safe path diverged bitwise from the legacy engine");
    }

    /// Faithful scalar re-implementation of the pre-dispatch engine's
    /// summation order: KC=256 partials accumulated k-ascending with
    /// separate mul and add, per element. Blocking in m/n does not affect
    /// values (each element's chain is independent), so plain loops with a
    /// KC-partial split reproduce the exact floats.
    fn legacy_reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut total = 0.0f32;
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    let mut part = 0.0f32;
                    for p in pc..pc + kc {
                        part += a[i * k + p] * b[p * n + j];
                    }
                    total += part;
                    pc += KC;
                }
                out[i * n + j] = total;
            }
        }
    }
}
