//! Cache-blocked packed GEMM engine.
//!
//! This is the physical operator under every large matmul and (via im2col)
//! every large convolution in the workspace: a BLIS-style MC/KC/NC loop
//! nest over *packed* operand panels with a fixed-size [`MR`]×[`NR`]
//! register microkernel. The interesting properties:
//!
//! * **Strided inputs.** Operands are [`MatRef`]s — a data slice plus
//!   row/column strides — so all four transpose combinations of
//!   [`crate::ops::MatmulSpec`] are handled by *packing*, never by an
//!   explicit transpose pass or a strided inner loop. The microkernel only
//!   ever sees contiguous panels.
//! * **Deterministic summation.** Each output element is accumulated over
//!   `k` strictly ascending, in [`KC`]-sized register-resident partial
//!   sums, by exactly one task. The order is a function of the (constant)
//!   blocking parameters only — never of the worker count — so results are
//!   bit-identical at any thread width. They may differ from the naive
//!   reference kernels in rounding (validated within tolerance by the
//!   `gemm_properties` suite).
//! * **No per-call allocation.** Packing panels come from the thread-local
//!   [`nautilus_util::scratch`] arena and are reused across calls.
//! * **Auto-vectorized microkernel.** The inner loop is written as
//!   fixed-trip-count array arithmetic over `[[f32; NR]; MR]` accumulators
//!   so rustc vectorizes it; no `unsafe` SIMD intrinsics.
//!
//! Parallelism partitions output rows into [`MC`]-aligned macro-tile runs
//! via [`pool::aligned_chunk_len`]; each task packs its own panels.
//! Telemetry (PR 3 conventions): a `gemm` span with `gemm.pack` /
//! `gemm.compute` children, plus `gemm.pack_bytes` and
//! `gemm.microkernel_calls` counters.

use nautilus_util::{pool, scratch, telemetry};

/// Microkernel register-tile rows.
pub const MR: usize = 8;
/// Microkernel register-tile columns.
pub const NR: usize = 8;
/// Rows of A per packed panel (L2-resident; multiple of [`MR`]).
pub const MC: usize = 64;
/// Shared dimension per packed panel pair.
pub const KC: usize = 256;
/// Columns of B per packed panel (multiple of [`NR`]).
pub const NC: usize = 256;

/// Above this many multiply-adds a GEMM fans out over the shared pool
/// (mirrors the matmul/conv thresholds).
const PAR_THRESHOLD: usize = 1 << 22;

/// A strided matrix view: element `(i, j)` lives at `data[i*rs + j*cs]`.
///
/// A plain row-major `(rows, cols)` matrix is `rs = cols, cs = 1`; its
/// transpose is the same slice with `rs = 1, cs = cols`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    /// Backing element slice.
    pub data: &'a [f32],
    /// Row stride.
    pub rs: usize,
    /// Column stride.
    pub cs: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major `(rows, cols)` view of `data`.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: cols, cs: 1 }
    }

    /// Transposed view of a row-major `(rows, cols)` buffer: the result
    /// reads as the `(cols, rows)` transpose without moving data.
    pub fn transposed(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: 1, cs: cols }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Packs `A[row0 .. row0+mc, p0 .. p0+kc]` into MR-row strips:
/// `apack[s*kc*MR + k*MR + r] == A[row0 + s*MR + r, p0 + k]`, rows past
/// `mc` zero-padded so the microkernel never branches on the edge.
fn pack_a(apack: &mut [f32], a: MatRef, row0: usize, mc: usize, p0: usize, kc: usize) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let strip = &mut apack[s * kc * MR..(s + 1) * kc * MR];
        let r0 = s * MR;
        let rows = MR.min(mc - r0);
        for k in 0..kc {
            let dst = &mut strip[k * MR..k * MR + MR];
            for r in 0..rows {
                dst[r] = a.at(row0 + r0 + r, p0 + k);
            }
            for d in dst[rows..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Packs `B[p0 .. p0+kc, col0 .. col0+nc]` into NR-column strips:
/// `bpack[s*kc*NR + k*NR + c] == B[p0 + k, col0 + s*NR + c]`, columns past
/// `nc` zero-padded.
fn pack_b(bpack: &mut [f32], b: MatRef, p0: usize, kc: usize, col0: usize, nc: usize) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let strip = &mut bpack[s * kc * NR..(s + 1) * kc * NR];
        let c0 = s * NR;
        let cols = NR.min(nc - c0);
        for k in 0..kc {
            let dst = &mut strip[k * NR..k * NR + NR];
            for c in 0..cols {
                dst[c] = b.at(p0 + k, col0 + c0 + c);
            }
            for d in dst[cols..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// The register microkernel: `acc[r][c] += sum_k ap[k*MR+r] * bp[k*NR+c]`.
///
/// `k` ascends sequentially with one scalar accumulator chain per output
/// element; vectorization happens across the NR columns, so reordering
/// never touches the per-element summation order.
#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for k in 0..kc {
        let a = &ap[k * MR..k * MR + MR];
        let b = &bp[k * NR..k * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
}

/// One task's full blocked loop nest over `rows` output rows starting at
/// global row `row0`, writing `out` (the task's exclusive `rows × n`
/// slice). `out` must be zeroed; tiles accumulate across KC blocks.
fn gemm_task(row0: usize, rows: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    let mut apack = scratch::take(MC.div_ceil(MR) * MR * KC);
    let mut bpack = scratch::take(KC * NC.div_ceil(NR) * NR);
    let mut pack_bytes = 0u64;
    let mut mk_calls = 0u64;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            {
                let _sp = telemetry::span("tensor", "gemm.pack");
                pack_b(&mut bpack, b, pc, kc, jc, nc);
                pack_bytes += (kc * nc * 4) as u64;
            }
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                {
                    let _sp = telemetry::span("tensor", "gemm.pack");
                    pack_a(&mut apack, a, row0 + ic, mc, pc, kc);
                    pack_bytes += (mc * kc * 4) as u64;
                }
                let _sp = telemetry::span("tensor", "gemm.compute");
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bstrip = &bpack[(jr / NR) * kc * NR..(jr / NR + 1) * kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let astrip = &apack[(ir / MR) * kc * MR..(ir / MR + 1) * kc * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        microkernel(kc, astrip, bstrip, &mut acc);
                        mk_calls += 1;
                        let base = (ic + ir) * n + jc + jr;
                        for r in 0..mr {
                            let crow = &mut out[base + r * n..base + r * n + nr];
                            for (c, &v) in crow.iter_mut().zip(acc[r].iter()) {
                                *c += v;
                            }
                        }
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
    if telemetry::enabled() {
        telemetry::GEMM_PACK_BYTES.add(pack_bytes);
        telemetry::GEMM_MICROKERNEL_CALLS.add(mk_calls);
    }
}

/// Blocked packed GEMM: `out[m × n] += A[m × k] · B[k × n]` with arbitrary
/// operand strides. `out` is row-major and must be zero-initialized (the
/// scratch arena's [`scratch::take_vec`] returns exactly that).
///
/// Large products partition output rows into MC-aligned runs on the shared
/// pool; results are bit-identical at any thread width.
pub fn gemm(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    let _sp = telemetry::span("tensor", "gemm");
    if m == 0 || n == 0 {
        return;
    }
    let work = m * k * n;
    if work < PAR_THRESHOLD || pool::num_threads() <= 1 {
        gemm_task(0, m, k, n, a, b, out);
        return;
    }
    let chunk_rows = pool::aligned_chunk_len(m, MC);
    pool::scope_chunks(out, chunk_rows * n, |ci, ochunk| {
        gemm_task(ci * chunk_rows, ochunk.len() / n, k, n, a, b, ochunk);
    });
}

/// Single-task blocked GEMM, bypassing the pool. Used where the caller
/// already owns the parallel partitioning (e.g. per-image im2col tasks)
/// and by benches isolating single-core kernel quality. Bit-identical to
/// [`gemm`] by the fixed-summation-order contract.
pub fn gemm_serial(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    gemm_task(0, m, k, n, a, b, out);
}

/// Unblocked i-p-j reference kernel over the same strided views. This is
/// the rounding reference the blocked kernel is validated against, and the
/// "naive" side of the `gemm` bench group / `BENCH_gemm.json` gate.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a.at(i, p);
            if av == 0.0 {
                continue;
            }
            let bbase = p * b.rs;
            if b.cs == 1 {
                let brow = &b.data[bbase..bbase + n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            } else {
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += av * b.data[bbase + j * b.cs];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};
    use nautilus_util::pool::with_parallelism_limit;

    fn rel_close(x: f32, y: f32) -> bool {
        (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs()))
    }

    #[test]
    fn blocked_matches_naive_on_awkward_sizes() {
        // Sizes straddling every edge case: below MR/NR, non-multiples of
        // the tile sizes, and spans crossing MC/KC/NC boundaries.
        let mut rng = seeded_rng(41);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 7), (8, 8, 8), (13, 300, 17), (70, 70, 70), (65, 257, 259)]
        {
            let a = randn([m, k], 1.0, &mut rng);
            let b = randn([k, n], 1.0, &mut rng);
            let ar = MatRef::row_major(a.data(), k);
            let br = MatRef::row_major(b.data(), n);
            let mut blocked = vec![0.0f32; m * n];
            gemm(m, k, n, ar, br, &mut blocked);
            let mut naive = vec![0.0f32; m * n];
            gemm_naive(m, k, n, ar, br, &mut naive);
            for (i, (&x, &y)) in blocked.iter().zip(naive.iter()).enumerate() {
                assert!(rel_close(x, y), "({m},{k},{n})[{i}]: blocked {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn transposed_views_match_materialized_transpose() {
        let mut rng = seeded_rng(42);
        let (m, k, n) = (20usize, 33usize, 41usize);
        let at = randn([k, m], 1.0, &mut rng); // A stored transposed
        let bt = randn([n, k], 1.0, &mut rng); // B stored transposed
        // Materialize the plain operands.
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at.data()[p * m + i];
            }
        }
        let mut b = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = bt.data()[j * k + p];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm(m, k, n, MatRef::row_major(&a, k), MatRef::row_major(&b, n), &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm(
            m,
            k,
            n,
            MatRef::transposed(at.data(), m),
            MatRef::transposed(bt.data(), k),
            &mut got,
        );
        assert_eq!(got, want, "strided packing must fold the transposes exactly");
    }

    #[test]
    fn parallel_gemm_bit_identical_across_limits() {
        let mut rng = seeded_rng(43);
        // 192*256*192 ≈ 9.4M multiply-adds: crosses PAR_THRESHOLD.
        let (m, k, n) = (192usize, 256usize, 192usize);
        let a = randn([m, k], 1.0, &mut rng);
        let b = randn([k, n], 1.0, &mut rng);
        let run = |limit: usize| {
            with_parallelism_limit(limit, || {
                let mut out = vec![0.0f32; m * n];
                gemm(m, k, n, MatRef::row_major(a.data(), k), MatRef::row_major(b.data(), n), &mut out);
                out
            })
        };
        let reference = run(1);
        let mut serial = vec![0.0f32; m * n];
        gemm_serial(m, k, n, MatRef::row_major(a.data(), k), MatRef::row_major(b.data(), n), &mut serial);
        assert_eq!(reference, serial, "serial entry point diverged");
        for limit in [2usize, 8] {
            assert_eq!(run(limit), reference, "limit {limit} diverged");
        }
    }

    #[test]
    fn packing_reuses_scratch_buffers() {
        let (h0, _) = nautilus_util::scratch::thread_stats();
        let mut rng = seeded_rng(44);
        let a = randn([64, 64], 1.0, &mut rng);
        let b = randn([64, 64], 1.0, &mut rng);
        let mut out = vec![0.0f32; 64 * 64];
        for _ in 0..3 {
            out.iter_mut().for_each(|x| *x = 0.0);
            gemm_serial(64, 64, 64, MatRef::row_major(a.data(), 64), MatRef::row_major(b.data(), 64), &mut out);
        }
        let (h1, _) = nautilus_util::scratch::thread_stats();
        assert!(h1 > h0, "repeated gemms must hit the scratch arena");
    }
}
