//! Neural-network primitives: activations, softmax, layer norm, and the
//! cross-entropy loss, each paired with its backward function.
//!
//! All "last"-suffixed functions operate independently on every
//! innermost-axis vector, treating the tensor as `(outer, last)` rows.

use super::reduce::sum_rows;
use crate::{Tensor, TensorError};

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Gradient of [`relu`]: passes `grad` where the *input* was positive.
pub fn relu_backward(input: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    input.shape().expect_eq(grad.shape())?;
    let mut out = grad.clone();
    for (g, &x) in out.data_mut().iter_mut().zip(input.data()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    Ok(out)
}

/// GELU activation (tanh approximation, as used by BERT).
pub fn gelu(a: &Tensor) -> Tensor {
    a.map(gelu_scalar)
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Gradient of [`gelu`] with respect to its input.
pub fn gelu_backward(input: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    input.shape().expect_eq(grad.shape())?;
    let mut out = grad.clone();
    for (g, &x) in out.data_mut().iter_mut().zip(input.data()) {
        *g *= gelu_grad_scalar(x);
    }
    Ok(out)
}

/// Hyperbolic-tangent activation.
pub fn tanh_act(a: &Tensor) -> Tensor {
    a.map(f32::tanh)
}

/// Gradient of [`tanh_act`] given the *output* `y = tanh(x)`.
pub fn tanh_backward(output: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    output.shape().expect_eq(grad.shape())?;
    let mut out = grad.clone();
    for (g, &y) in out.data_mut().iter_mut().zip(output.data()) {
        *g *= 1.0 - y * y;
    }
    Ok(out)
}

/// Numerically stable softmax over the innermost axis.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let (rows, cols, data) = a.as_matrix();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let orow = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = (x - max).exp();
            sum += *o;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    Tensor::from_vec(a.shape().clone(), out).expect("softmax preserves shape")
}

/// Gradient of [`softmax_last`] given the softmax *output* `y` and upstream
/// gradient: `dx = y ⊙ (dy − ⟨dy, y⟩)` per row.
pub fn softmax_last_backward(output: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    output.shape().expect_eq(grad.shape())?;
    let (rows, cols, y) = output.as_matrix();
    let g = grad.data();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let yr = &y[r * cols..(r + 1) * cols];
        let gr = &g[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        let orow = &mut out[r * cols..(r + 1) * cols];
        for ((o, &yv), &gv) in orow.iter_mut().zip(yr).zip(gr) {
            *o = yv * (gv - dot);
        }
    }
    Tensor::from_vec(output.shape().clone(), out)
}

/// Layer normalization over the innermost axis with scale `gamma` and shift
/// `beta` (both `[d]`). Returns `(output, x_hat, inv_std)` — the latter two
/// are the cache the backward pass needs.
pub fn layer_norm(
    a: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, Tensor, Vec<f32>), TensorError> {
    let (rows, cols, data) = a.as_matrix();
    if gamma.len() != cols || beta.len() != cols {
        return Err(TensorError::Incompatible(format!(
            "layer_norm params length {} / {} vs dim {}",
            gamma.len(),
            beta.len(),
            cols
        )));
    }
    let gd = gamma.data();
    let bd = beta.data();
    let mut out = vec![0.0f32; rows * cols];
    let mut xhat = vec![0.0f32; rows * cols];
    let mut inv_std = vec![0.0f32; rows];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
        let istd = 1.0 / (var + eps).sqrt();
        inv_std[r] = istd;
        let xr = &mut xhat[r * cols..(r + 1) * cols];
        let orow = &mut out[r * cols..(r + 1) * cols];
        for (((x, o), &v), (&g, &b)) in
            xr.iter_mut().zip(orow.iter_mut()).zip(row).zip(gd.iter().zip(bd))
        {
            *x = (v - mean) * istd;
            *o = g * *x + b;
        }
    }
    Ok((
        Tensor::from_vec(a.shape().clone(), out)?,
        Tensor::from_vec(a.shape().clone(), xhat)?,
        inv_std,
    ))
}

/// Backward pass of [`layer_norm`].
///
/// Returns `(d_input, d_gamma, d_beta)`.
pub fn layer_norm_backward(
    xhat: &Tensor,
    inv_std: &[f32],
    gamma: &Tensor,
    grad: &Tensor,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    xhat.shape().expect_eq(grad.shape())?;
    let (rows, cols, xh) = xhat.as_matrix();
    let g = grad.data();
    let gd = gamma.data();
    let mut dx = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let xr = &xh[r * cols..(r + 1) * cols];
        let gr = &g[r * cols..(r + 1) * cols];
        // dxhat = dy * gamma
        let mut mean_dxhat = 0.0f32;
        let mut mean_dxhat_xhat = 0.0f32;
        for i in 0..cols {
            let dxh = gr[i] * gd[i];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xr[i];
        }
        mean_dxhat /= cols as f32;
        mean_dxhat_xhat /= cols as f32;
        let orow = &mut dx[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let dxh = gr[i] * gd[i];
            orow[i] = inv_std[r] * (dxh - mean_dxhat - xr[i] * mean_dxhat_xhat);
        }
    }
    let dgamma = sum_rows(&hadamard_flat(grad, xhat)?)?;
    let dbeta = sum_rows(grad)?;
    Ok((Tensor::from_vec(xhat.shape().clone(), dx)?, dgamma, dbeta))
}

fn hadamard_flat(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    super::elementwise::hadamard(a, b)
}

/// Softmax cross-entropy over logits with integer targets.
///
/// `logits` is `(outer, classes)`; `targets` holds one class index per outer
/// row, with `-1` meaning "ignore this row" (padding tokens). Returns the
/// mean loss over counted rows and the gradient with respect to the logits
/// (already divided by the counted-row count).
pub fn cross_entropy_logits(
    logits: &Tensor,
    targets: &[i64],
) -> Result<(f32, Tensor), TensorError> {
    let (rows, cols, _) = logits.as_matrix();
    if targets.len() != rows {
        return Err(TensorError::Incompatible(format!(
            "targets length {} vs rows {}",
            targets.len(),
            rows
        )));
    }
    let probs = softmax_last(logits);
    let p = probs.data();
    let mut counted = 0usize;
    let mut loss = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        if t < 0 {
            continue;
        }
        let t = t as usize;
        if t >= cols {
            return Err(TensorError::Incompatible(format!(
                "target {} out of range for {} classes",
                t, cols
            )));
        }
        counted += 1;
        loss -= (p[r * cols + t].max(1e-12) as f64).ln();
    }
    let denom = counted.max(1) as f32;
    let mut grad = probs;
    {
        let gd = grad.data_mut();
        for (r, &t) in targets.iter().enumerate() {
            let row = &mut gd[r * cols..(r + 1) * cols];
            if t < 0 {
                row.iter_mut().for_each(|x| *x = 0.0);
            } else {
                row[t as usize] -= 1.0;
                row.iter_mut().for_each(|x| *x /= denom);
            }
        }
    }
    Ok((loss as f32 / denom, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};

    fn finite_diff_check(
        f: &dyn Fn(&Tensor) -> f32,
        grad: &dyn Fn(&Tensor) -> Tensor,
        x: &Tensor,
        tol: f32,
    ) {
        let g = grad(x);
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            let ana = g.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = Tensor::ones([4]);
        assert_eq!(relu_backward(&x, &g).unwrap().data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn gelu_matches_finite_difference() {
        let x = randn([6], 1.0, &mut seeded_rng(3));
        finite_diff_check(
            &|t| gelu(t).sum(),
            &|t| gelu_backward(t, &Tensor::ones(t.shape().clone())).unwrap(),
            &x,
            2e-2,
        );
    }

    #[test]
    fn tanh_matches_finite_difference() {
        let x = randn([6], 1.0, &mut seeded_rng(4));
        finite_diff_check(
            &|t| tanh_act(t).sum(),
            &|t| tanh_backward(&tanh_act(t), &Tensor::ones(t.shape().clone())).unwrap(),
            &x,
            1e-2,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = randn([3, 5], 2.0, &mut seeded_rng(5));
        let y = softmax_last(&x);
        for r in 0..3 {
            let s: f32 = y.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y1 = softmax_last(&x);
        let shifted = x.map(|v| v + 100.0);
        let y2 = softmax_last(&shifted);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        // Loss: weighted sum of softmax outputs with fixed weights.
        let w: Vec<f32> = vec![0.3, -0.7, 1.1, 0.2];
        let wt = Tensor::from_vec([1, 4], w.clone()).unwrap();
        let x = randn([1, 4], 1.0, &mut seeded_rng(6));
        finite_diff_check(
            &|t| {
                softmax_last(t)
                    .data()
                    .iter()
                    .zip(&w)
                    .map(|(&y, &wi)| y * wi)
                    .sum()
            },
            &|t| softmax_last_backward(&softmax_last(t), &wt).unwrap(),
            &x,
            1e-2,
        );
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let x = randn([4, 8], 3.0, &mut seeded_rng(7));
        let gamma = Tensor::ones([8]);
        let beta = Tensor::zeros([8]);
        let (y, _, _) = layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        for r in 0..4 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let gamma = Tensor::from_vec([6], vec![1.0, 0.5, 2.0, 1.5, 0.8, 1.2]).unwrap();
        let beta = Tensor::zeros([6]);
        let x = randn([2, 6], 1.0, &mut seeded_rng(8));
        let loss = |t: &Tensor| layer_norm(t, &gamma, &beta, 1e-5).unwrap().0.sum();
        let grad = |t: &Tensor| {
            let (y, xhat, istd) = layer_norm(t, &gamma, &beta, 1e-5).unwrap();
            let ones = Tensor::ones(y.shape().clone());
            layer_norm_backward(&xhat, &istd, &gamma, &ones).unwrap().0
        };
        finite_diff_check(&loss, &grad, &x, 2e-2);
    }

    #[test]
    fn cross_entropy_known_value() {
        // Uniform logits over 4 classes: loss = ln(4).
        let logits = Tensor::zeros([2, 4]);
        let (loss, grad) = cross_entropy_logits(&logits, &[0, 3]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..2 {
            let s: f32 = grad.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_ignores_padding() {
        let logits = Tensor::from_vec([2, 3], vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0]).unwrap();
        let (loss_all, _) = cross_entropy_logits(&logits, &[0, 1]).unwrap();
        let (loss_pad, grad) = cross_entropy_logits(&logits, &[0, -1]).unwrap();
        assert!((loss_all - loss_pad).abs() < 1e-6); // both rows have identical loss
        assert!(grad.data()[3..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let x = randn([2, 5], 1.0, &mut seeded_rng(9));
        let targets = vec![2i64, 4];
        finite_diff_check(
            &|t| cross_entropy_logits(t, &targets).unwrap().0,
            &|t| cross_entropy_logits(t, &targets).unwrap().1,
            &x,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_rejects_bad_targets() {
        let logits = Tensor::zeros([2, 3]);
        assert!(cross_entropy_logits(&logits, &[0]).is_err());
        assert!(cross_entropy_logits(&logits, &[0, 3]).is_err());
    }
}
