//! Batch-invariant kernel dispatch.
//!
//! [`crate::ops::matmul::matmul_ex`] and [`crate::ops::conv2d`] pick
//! between a naive kernel and a blocked/lowered one by comparing the
//! *total* multiply-add count against a threshold. The total scales with
//! the leading batch axis, so the same record can take different kernel
//! paths depending on how many records ride along in the batch — and the
//! two paths legitimately differ in floating-point rounding (the blocked
//! GEMM accumulates in KC-sized partials).
//!
//! Online inference micro-batches requests and promises that batched
//! outputs are **bit-identical** to single-request outputs. To keep that
//! promise, [`with_batch_invariant_dispatch`] installs a divisor for the
//! duration of a closure: every dispatch site divides its work estimate by
//! the batch size before comparing against its threshold, making the
//! kernel choice a function of *per-record* work only. Each record's rows
//! are then computed by the same kernel whether it runs alone or stacked
//! with others (both the naive loops and the blocked GEMM compute each
//! output row independently of the row count).
//!
//! The divisor describes the logical computation, not the thread, so it
//! must follow work onto the shared pool. The slot itself lives in
//! [`nautilus_util::pool`], which captures the spawner's divisor into
//! every job and reinstalls it around execution: jobs spawned inside a
//! batch-invariant scope keep the scope's divisor on any worker, and a
//! scope-holding thread that executes unrelated jobs while help-first
//! waiting does not leak its divisor into them. Code that fans out
//! *per-record* tasks (each task's tensors span one record, so its
//! dispatch-site estimates are already per-record) re-enters
//! [`with_batch_invariant_dispatch`] with a batch of 1 inside each task.

use nautilus_util::pool;

/// Runs `f` with kernel-dispatch work estimates divided by `batch`
/// (clamped to at least 1), restoring the previous divisor afterwards.
/// The divisor propagates into pool jobs spawned inside `f` (captured at
/// spawn time; see the module docs).
///
/// Used by batched inference so the naive-vs-blocked kernel choice — and
/// therefore the bitwise result of each record — does not depend on how
/// many records are stacked into the batch.
pub fn with_batch_invariant_dispatch<R>(batch: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            pool::set_dispatch_divisor(self.0);
        }
    }
    let _restore = Restore(pool::set_dispatch_divisor(batch.max(1)));
    f()
}

/// The work estimate a dispatch site should compare against its
/// threshold: `total_work` divided by the installed batch divisor
/// (1 outside [`with_batch_invariant_dispatch`], i.e. a no-op).
#[inline]
pub(crate) fn effective_work(total_work: usize) -> usize {
    let d = pool::dispatch_divisor();
    if d == 1 {
        total_work
    } else {
        total_work / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_scopes_and_restores() {
        assert_eq!(effective_work(1000), 1000);
        let inner = with_batch_invariant_dispatch(8, || {
            let nested = with_batch_invariant_dispatch(2, || effective_work(1000));
            assert_eq!(nested, 500);
            effective_work(1000)
        });
        assert_eq!(inner, 125);
        assert_eq!(effective_work(1000), 1000, "divisor restored on exit");
    }

    #[test]
    fn zero_batch_clamps_to_one() {
        let w = with_batch_invariant_dispatch(0, || effective_work(42));
        assert_eq!(w, 42);
    }

    #[test]
    fn divisor_follows_work_onto_the_pool() {
        // Pool tasks spawned inside a batch-invariant scope must see the
        // scope's divisor no matter which thread executes them; a nested
        // batch-of-1 scope inside a task pins it back to per-record
        // dispatch (the per-record fan-out pattern in dnn::exec).
        let seen = with_batch_invariant_dispatch(8, || {
            pool::join_all(
                (0..32usize)
                    .map(|i| {
                        Box::new(move || {
                            let mut acc = i;
                            for _ in 0..2_000 {
                                acc = std::hint::black_box(acc + 1) - 1;
                            }
                            let _ = acc;
                            let scoped = effective_work(1000);
                            let pinned =
                                with_batch_invariant_dispatch(1, || effective_work(1000));
                            (scoped, pinned)
                        })
                            as Box<dyn FnOnce() -> (usize, usize) + Send>
                    })
                    .collect(),
            )
        });
        for (i, (scoped, pinned)) in seen.into_iter().enumerate() {
            assert_eq!(scoped, 125, "task {i} lost the scope divisor");
            assert_eq!(pinned, 1000, "task {i} could not pin back to per-record");
        }
        assert_eq!(effective_work(1000), 1000, "divisor restored on exit");
    }
}
