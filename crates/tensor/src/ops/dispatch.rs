//! Batch-invariant kernel dispatch.
//!
//! [`crate::ops::matmul::matmul_ex`] and [`crate::ops::conv2d`] pick
//! between a naive kernel and a blocked/lowered one by comparing the
//! *total* multiply-add count against a threshold. The total scales with
//! the leading batch axis, so the same record can take different kernel
//! paths depending on how many records ride along in the batch — and the
//! two paths legitimately differ in floating-point rounding (the blocked
//! GEMM accumulates in KC-sized partials).
//!
//! Online inference micro-batches requests and promises that batched
//! outputs are **bit-identical** to single-request outputs. To keep that
//! promise, [`with_batch_invariant_dispatch`] installs a thread-local
//! divisor for the duration of a closure: every dispatch site divides its
//! work estimate by the batch size before comparing against its
//! threshold, making the kernel choice a function of *per-record* work
//! only. Each record's rows are then computed by the same kernel whether
//! it runs alone or stacked with others (both the naive loops and the
//! blocked GEMM compute each output row independently of the row count).
//!
//! The divisor is thread-local and the decision happens at the dispatch
//! site on the calling thread — pool workers spawned *inside* a kernel
//! inherit the already-made decision, so the shared pool needs no
//! propagation.

use std::cell::Cell;

thread_local! {
    static DISPATCH_BATCH: Cell<usize> = const { Cell::new(1) };
}

/// Runs `f` with kernel-dispatch work estimates divided by `batch`
/// (clamped to at least 1), restoring the previous divisor afterwards.
///
/// Used by batched inference so the naive-vs-blocked kernel choice — and
/// therefore the bitwise result of each record — does not depend on how
/// many records are stacked into the batch.
pub fn with_batch_invariant_dispatch<R>(batch: usize, f: impl FnOnce() -> R) -> R {
    let prev = DISPATCH_BATCH.with(|c| c.replace(batch.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            DISPATCH_BATCH.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The work estimate a dispatch site should compare against its
/// threshold: `total_work` divided by the installed batch divisor
/// (1 outside [`with_batch_invariant_dispatch`], i.e. a no-op).
#[inline]
pub(crate) fn effective_work(total_work: usize) -> usize {
    let d = DISPATCH_BATCH.with(|c| c.get());
    if d == 1 {
        total_work
    } else {
        total_work / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_scopes_and_restores() {
        assert_eq!(effective_work(1000), 1000);
        let inner = with_batch_invariant_dispatch(8, || {
            let nested = with_batch_invariant_dispatch(2, || effective_work(1000));
            assert_eq!(nested, 500);
            effective_work(1000)
        });
        assert_eq!(inner, 125);
        assert_eq!(effective_work(1000), 1000, "divisor restored on exit");
    }

    #[test]
    fn zero_batch_clamps_to_one() {
        let w = with_batch_invariant_dispatch(0, || effective_work(42));
        assert_eq!(w, 42);
    }
}
