//! int8 row-quantized GEMM for the serving path.
//!
//! Weights are quantized **once** at export/publish time with per-row
//! symmetric scales ([`quantize_rows`]): row `r`'s scale is
//! `maxabs(row)/127` and every element is `round(v/scale)` clamped to
//! `[-127, 127]` (the `-128` code is unused so negation stays exact).
//! Activations are quantized **dynamically** per input row at call time
//! with the same scheme, so no calibration pass is needed.
//!
//! The microkernel accumulates `i8×i8` products in `i32` — exactly, in
//! any order, because integer addition is associative — and dequantizes
//! once per output element: `y = sx · sw[o] · Σ qx[i]·qw[o][i]`. That
//! makes the int8 path *batch-invariant by construction*: each input
//! row's scale and dot products depend only on that row, so a record's
//! outputs are bit-identical whether it is served alone or stacked in a
//! micro-batch, with no dispatch pinning needed.
//!
//! On AVX2 hosts the dot kernel sign-extends 16 `i8` lanes to `i16`
//! (`_mm256_cvtepi8_epi16`) and uses `_mm256_madd_epi16` — 16
//! multiply-adds per instruction, products bounded by `127² = 16129` so
//! the pairwise `i16×i16 → i32` sums can never overflow. A scalar
//! fallback keeps every other architecture correct (and bit-identical:
//! integer math has no rounding to diverge on).

use nautilus_util::telemetry;

/// Largest quantized magnitude: symmetric range `[-127, 127]`.
pub const QMAX: f32 = 127.0;

/// A per-row symmetrically quantized matrix, row-major `rows × cols`.
///
/// For the serving path this holds a dense layer's weights *transposed*
/// to `[out_channel][in_dim]` so each output channel's weights are one
/// contiguous strip for the dot kernel.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Number of rows (output channels for a dense layer).
    pub rows: usize,
    /// Number of columns (the reduction dimension).
    pub cols: usize,
    /// Row-major `i8` codes, `rows * cols` of them.
    pub data: Vec<i8>,
    /// Per-row dequantization scale: `value ≈ code · scales[row]`.
    pub scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Heap bytes held by the quantized representation (codes + scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

/// Quantizes one row of `cols` f32 values into `dst`, returning the
/// dequantization scale. An all-zero (or empty) row gets scale 0 and
/// all-zero codes.
fn quantize_row(src: &[f32], dst: &mut [i8]) -> f32 {
    let maxabs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if maxabs == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let inv = QMAX / maxabs;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round().clamp(-QMAX, QMAX) as i8;
    }
    maxabs / QMAX
}

/// Per-row symmetric quantization of a row-major `rows × cols` matrix.
pub fn quantize_rows(rows: usize, cols: usize, src: &[f32]) -> QuantizedMatrix {
    assert_eq!(src.len(), rows * cols, "quantize_rows: shape mismatch");
    let mut data = vec![0i8; rows * cols];
    let mut scales = vec![0.0f32; rows];
    for r in 0..rows {
        scales[r] = quantize_row(&src[r * cols..(r + 1) * cols], &mut data[r * cols..(r + 1) * cols]);
    }
    QuantizedMatrix { rows, cols, data, scales }
}

/// Exact `i8·i8 → i32` dot product, scalar reference. Integer math: the
/// result is identical on every architecture and in every order.
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// AVX2 `i8·i8 → i32` dot product: 16 lanes sign-extended to `i16`,
/// `madd` pairs into `i32`, accumulated across the row, scalar tail.
/// Computes exactly the same integer as [`dot_i8_scalar`].
///
/// # Safety
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    let hi = _mm256_extracti128_si256(acc, 1);
    let lo = _mm256_castsi256_si128(acc);
    let s = _mm_add_epi32(hi, lo);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        i += 1;
    }
    total
}

/// AVX2 row kernel: computes one input row's whole output strip,
/// `orow[o] = sx · sw[o] · (qx · w[o])`, four output channels at a time
/// so each 16-lane activation load is shared by four weight rows and the
/// `madd` chains stay independent. One `target_feature` region spanning
/// the full loop lets the dot bodies inline (the per-output
/// [`dot_i8_avx2`] cannot inline into non-AVX2 callers and pays a call
/// plus horizontal reduction per element). Same exact integers as the
/// scalar path — only the schedule differs, and integer addition is
/// associative.
///
/// # Safety
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_row_avx2(k: usize, qx: &[i8], w: &QuantizedMatrix, sx: f32, orow: &mut [f32]) {
    use std::arch::x86_64::*;
    #[inline(always)]
    unsafe fn hsum_i32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_extracti128_si256(v, 1), _mm256_castsi256_si128(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
        _mm_cvtsi128_si32(s)
    }
    let nout = w.rows;
    let wp = w.data.as_ptr();
    let xp = qx.as_ptr();
    let simd_k = k & !15;
    let mut o = 0;
    while o + 4 <= nout {
        let mut acc = [_mm256_setzero_si256(); 4];
        let mut i = 0;
        while i < simd_k {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(xp.add(i) as *const __m128i));
            for (j, a) in acc.iter_mut().enumerate() {
                let vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    wp.add((o + j) * k + i) as *const __m128i,
                ));
                *a = _mm256_add_epi32(*a, _mm256_madd_epi16(va, vw));
            }
            i += 16;
        }
        for (j, a) in acc.iter().enumerate() {
            let mut dot = hsum_i32(*a);
            for i in simd_k..k {
                dot += *xp.add(i) as i32 * *wp.add((o + j) * k + i) as i32;
            }
            *orow.get_unchecked_mut(o + j) = sx * w.scales[o + j] * dot as f32;
        }
        o += 4;
    }
    while o < nout {
        let dot = dot_i8_avx2(qx, &w.data[o * k..(o + 1) * k]);
        *orow.get_unchecked_mut(o) = sx * w.scales[o] * dot as f32;
        o += 1;
    }
}

/// Whether the AVX2 dot kernel can run on this host (cached by `std`).
fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn dot_i8(use_avx2: bool, a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` is only true when `avx2_supported()` held.
        return unsafe { dot_i8_avx2(a, b) };
    }
    let _ = use_avx2;
    dot_i8_scalar(a, b)
}

/// Dynamic-activation int8 GEMM: `out[m × w.rows] = X[m × k] · Wᵀ` where
/// `w` holds the weight matrix as `w.rows` quantized rows of length
/// `k = w.cols` (one per output channel).
///
/// Each input row is quantized on the fly (per-row symmetric scale), the
/// `i8` dot accumulates exactly in `i32`, and the only float rounding is
/// the final `sx · sw[o] · dot` dequantization — two multiplies per
/// output element. `out` is overwritten, not accumulated into.
pub fn qgemm_dyn(m: usize, k: usize, x: &[f32], w: &QuantizedMatrix, out: &mut [f32]) {
    assert_eq!(w.cols, k, "qgemm_dyn: reduction dim mismatch");
    assert_eq!(x.len(), m * k, "qgemm_dyn: input shape mismatch");
    assert_eq!(out.len(), m * w.rows, "qgemm_dyn: output shape mismatch");
    let _sp = telemetry::span("tensor", "qgemm");
    let use_avx2 = avx2_supported();
    let mut qx = vec![0i8; k];
    for r in 0..m {
        let sx = quantize_row(&x[r * k..(r + 1) * k], &mut qx);
        let orow = &mut out[r * w.rows..(r + 1) * w.rows];
        if sx == 0.0 {
            orow.fill(0.0);
            continue;
        }
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: `use_avx2` is only true when `avx2_supported()` held.
            unsafe { qgemm_row_avx2(k, &qx, w, sx, orow) };
            continue;
        }
        for (o, orv) in orow.iter_mut().enumerate() {
            let wrow = &w.data[o * k..(o + 1) * k];
            let dot = dot_i8(use_avx2, &qx, wrow);
            *orv = sx * w.scales[o] * dot as f32;
        }
    }
    if telemetry::enabled() {
        telemetry::QGEMM_CALLS.add(1);
        telemetry::QGEMM_ROWS.add(m as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};
    use nautilus_util::rng::Rng;

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let mut rng = seeded_rng(7);
        let t = randn([16, 64], 1.0, &mut rng);
        let q = quantize_rows(16, 64, t.data());
        for r in 0..16 {
            let s = q.scales[r];
            for c in 0..64 {
                let orig = t.data()[r * 64 + c];
                let deq = q.data[r * 64 + c] as f32 * s;
                // Symmetric rounding error is at most half a step.
                assert!(
                    (orig - deq).abs() <= s * 0.5 + 1e-7,
                    "[{r},{c}] {orig} vs {deq} (scale {s})"
                );
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale() {
        let q = quantize_rows(2, 4, &[0.0, 0.0, 0.0, 0.0, 1.0, -2.0, 0.5, 0.0]);
        assert_eq!(q.scales[0], 0.0);
        assert!(q.data[..4].iter().all(|&v| v == 0));
        assert!(q.scales[1] > 0.0);
        assert_eq!(q.data[4..8][1], -127, "maxabs element must hit the full range");
    }

    #[test]
    fn simd_dot_matches_scalar_exactly() {
        let mut rng = seeded_rng(8);
        for len in [1usize, 15, 16, 17, 48, 100, 257] {
            let a: Vec<i8> =
                (0..len).map(|_| (rng.gen_range(-127.0f32..128.0)) as i8).collect();
            let b: Vec<i8> =
                (0..len).map(|_| (rng.gen_range(-127.0f32..128.0)) as i8).collect();
            let want = dot_i8_scalar(&a, &b);
            assert_eq!(dot_i8(avx2_supported(), &a, &b), want, "len {len}");
        }
    }

    /// The 4-wide AVX2 row kernel must produce bit-identical floats to
    /// the scalar path: both compute the same exact integer dots, and the
    /// dequantization expression is the same two multiplies. Shapes are
    /// chosen to exercise both tails (k % 16 != 0, n_out % 4 != 0).
    #[test]
    fn qgemm_simd_path_matches_scalar_path_exactly() {
        let mut rng = seeded_rng(11);
        for (m, k, n) in [(3usize, 100usize, 7usize), (4, 16, 4), (1, 33, 9), (5, 256, 32)] {
            let x = randn([m, k], 1.0, &mut rng);
            let wt = randn([n, k], 1.0, &mut rng);
            let q = quantize_rows(n, k, wt.data());
            let mut got = vec![0.0f32; m * n];
            qgemm_dyn(m, k, x.data(), &q, &mut got);
            // Scalar reference: same quantization, scalar dots.
            let mut qx = vec![0i8; k];
            for r in 0..m {
                let sx = quantize_row(&x.data()[r * k..(r + 1) * k], &mut qx);
                for o in 0..n {
                    let dot = dot_i8_scalar(&qx, &q.data[o * k..(o + 1) * k]);
                    let want = sx * q.scales[o] * dot as f32;
                    assert_eq!(got[r * n + o], want, "({m},{k},{n}) row {r} out {o}");
                }
            }
        }
    }

    #[test]
    fn qgemm_matches_f32_within_quant_tolerance() {
        use crate::ops::gemm::{gemm_naive, MatRef};
        let mut rng = seeded_rng(9);
        let (m, k, n) = (7usize, 96usize, 33usize);
        let x = randn([m, k], 1.0, &mut rng);
        let wt = randn([n, k], 1.0, &mut rng); // weights already [out][in]
        let q = quantize_rows(n, k, wt.data());
        let mut got = vec![0.0f32; m * n];
        qgemm_dyn(m, k, x.data(), &q, &mut got);
        let mut want = vec![0.0f32; m * n];
        gemm_naive(m, k, n, MatRef::row_major(x.data(), k), MatRef::transposed(wt.data(), k), &mut want);
        // Quantization error is *absolute* per product (~step/√12 each
        // side) and accumulates as √k across the reduction, so the bound
        // is 5% relative plus a √k-scaled floor — near-cancellation
        // outputs are small while their error budget is not.
        let abs_tol = 0.05 * (k as f32).sqrt();
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 0.05 * w.abs() + abs_tol,
                "[{i}] int8 {g} vs f32 {w}"
            );
        }
    }

    /// Batch invariance for free: quantizing row-by-row means a record's
    /// outputs are exactly the same floats however it is batched.
    #[test]
    fn qgemm_rows_are_batch_invariant() {
        let mut rng = seeded_rng(10);
        let (m, k, n) = (5usize, 40usize, 12usize);
        let x = randn([m, k], 1.0, &mut rng);
        let wt = randn([n, k], 1.0, &mut rng);
        let q = quantize_rows(n, k, wt.data());
        let mut batched = vec![0.0f32; m * n];
        qgemm_dyn(m, k, x.data(), &q, &mut batched);
        for r in 0..m {
            let mut solo = vec![0.0f32; n];
            qgemm_dyn(1, k, &x.data()[r * k..(r + 1) * k], &q, &mut solo);
            assert_eq!(&batched[r * n..(r + 1) * n], &solo[..], "row {r} diverged");
        }
    }
}
