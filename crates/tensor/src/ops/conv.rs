//! 2-D convolution and pooling kernels (NCHW layout).
//!
//! Inputs are `[batch, channels, height, width]`; convolution weights are
//! `[out_c, in_c, kh, kw]`. Two physical execution strategies back
//! [`conv2d`] / [`conv2d_backward`]:
//!
//! * **im2col + packed GEMM** at and above [`IM2COL_THRESHOLD`]
//!   multiply-adds: each image's receptive fields are unrolled into a
//!   `(c_in·kh·kw) × (oh·ow)` column matrix (scratch-arena backed, reused
//!   across calls) and the convolution becomes one blocked GEMM per image
//!   against the `(c_out) × (c_in·kh·kw)` weight view — forward multiplies
//!   the weights into the columns, backward recovers `dW` via `dY · colᵀ`
//!   and `dX` via col2im of `Wᵀ · dY`. Bias is added after the GEMM, so
//!   rounding may differ from the direct loops (validated within tolerance
//!   by `gemm_properties`); im2col copy traffic is *not* counted as FLOPs.
//! * **Direct loops** below the threshold ([`conv2d_direct`]), where the
//!   column-matrix build would dominate: tiny shapes keep the trivially
//!   auditable nested loops.
//!
//! Both strategies partition work per `(image, out-channel)` plane or per
//! image — caller-chosen boundaries on the shared pool — so results are
//! bit-identical at any thread width within a strategy.

use crate::ops::gemm::{self, MatRef};
use crate::{Tensor, TensorError};
use nautilus_util::{pool, scratch};

/// Above this many multiply-adds, conv kernels fan out over the shared
/// thread pool (same rationale as the matmul threshold).
const PAR_THRESHOLD: usize = 1 << 22;

/// Multiply-add count at and above which convolutions lower to im2col +
/// packed GEMM; below it the direct loops win (mirrors
/// [`crate::ops::matmul::GEMM_THRESHOLD`]).
pub const IM2COL_THRESHOLD: usize = 1 << 17;

fn dims4(t: &Tensor, what: &str) -> Result<(usize, usize, usize, usize), TensorError> {
    let s = &t.shape().0;
    if s.len() != 4 {
        return Err(TensorError::Incompatible(format!(
            "{what} must be rank-4 NCHW, got {:?}",
            s
        )));
    }
    Ok((s[0], s[1], s[2], s[3]))
}

/// Output spatial extent for a convolution/pool axis.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad).saturating_sub(kernel) / stride + 1
}

/// 2-D convolution with stride and symmetric zero padding.
///
/// `weight` is `[out_c, in_c, kh, kw]`; `bias` is `[out_c]`. Dispatches to
/// [`conv2d_im2col`] at and above [`IM2COL_THRESHOLD`] multiply-adds and to
/// [`conv2d_direct`] below it.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    if crate::ops::dispatch::effective_work(conv_work(input, weight, stride, pad)?)
        >= IM2COL_THRESHOLD
    {
        conv2d_im2col(input, weight, bias, stride, pad)
    } else {
        conv2d_direct(input, weight, bias, stride, pad)
    }
}

/// Multiply-add count of a convolution: one multiply + add per (output
/// element × weight tap). Used for kernel dispatch; matches the dnn-layer
/// FLOP estimate of `2 * work` FLOPs.
fn conv_work(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<usize, TensorError> {
    let (b, c_in, h, w) = dims4(input, "conv input")?;
    let (c_out, _, kh, kw) = dims4(weight, "conv weight")?;
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    Ok(b * c_out * oh * ow * c_in * kh * kw)
}

/// Direct (non-im2col) convolution: nested loops, used for tiny shapes.
#[allow(clippy::needless_range_loop)]
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    let (b, c_in, h, w) = dims4(input, "conv input")?;
    let (c_out, wc_in, kh, kw) = dims4(weight, "conv weight")?;
    if wc_in != c_in {
        return Err(TensorError::Incompatible(format!(
            "conv channels: input {c_in} vs weight {wc_in}"
        )));
    }
    if bias.len() != c_out {
        return Err(TensorError::Incompatible(format!(
            "conv bias length {} vs out channels {c_out}",
            bias.len()
        )));
    }
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    let x = input.data();
    let wt = weight.data();
    let bs = bias.data();
    let mut out = vec![0.0f32; b * c_out * oh * ow];

    // Each (n, co) output plane is an independent, exclusively-owned region,
    // so plane-partitioned parallel execution is bit-identical to the
    // sequential loop. `planes` are chunked so the pool gets roughly one
    // task per thread.
    let plane = oh * ow;
    let total_planes = b * c_out;
    let work = total_planes * plane * c_in * kh * kw * 2;
    let tasks = if work < PAR_THRESHOLD { 1 } else { pool::num_threads().min(total_planes.max(1)) };
    let planes_per = total_planes.div_ceil(tasks);
    let compute_planes = |plane0: usize, ochunk: &mut [f32]| {
        for (pi, oplane) in ochunk.chunks_exact_mut(plane).enumerate() {
            let gi = plane0 + pi;
            let n = gi / c_out;
            let co = gi % c_out;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bs[co];
                    for ci in 0..c_in {
                        let ibase = ((n * c_in) + ci) * h * w;
                        let wbase = ((co * c_in) + ci) * kh * kw;
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += x[ibase + iy as usize * w + ix as usize]
                                    * wt[wbase + ky * kw + kx];
                            }
                        }
                    }
                    oplane[oy * ow + ox] = acc;
                }
            }
        }
    };
    if tasks <= 1 {
        compute_planes(0, &mut out);
    } else {
        pool::scope_chunks(&mut out, planes_per * plane, |ci, ochunk| {
            compute_planes(ci * planes_per, ochunk);
        });
    }
    Tensor::from_vec([b, c_out, oh, ow], out)
}

/// Geometry of one image's im2col lowering.
#[derive(Clone, Copy)]
struct ColShape {
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: usize,
    pad: usize,
}

impl ColShape {
    /// Rows of the column matrix: one per weight tap.
    fn ckk(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Columns of the column matrix: one per output position.
    fn len(&self) -> usize {
        self.oh * self.ow
    }
}

/// Unrolls one NCHW image into a `(c_in·kh·kw) × (oh·ow)` row-major column
/// matrix: `col[(ci·kh+ky)·kw+kx][oy·ow+ox] = x[ci, oy·s+ky-pad, ox·s+kx-pad]`
/// (zero where the tap falls in padding). Every element is written, so the
/// scratch buffer needs no re-zeroing between images.
fn im2col(x_img: &[f32], col: &mut [f32], cs: ColShape) {
    let ColShape { c_in, h, w, kh, kw, oh, ow, stride, pad } = cs;
    let l = cs.len();
    for ci in 0..c_in {
        let xc = &x_img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let r = (ci * kh + ky) * kw + kx;
                let row = &mut col[r * l..(r + 1) * l];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst = &mut row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        *d = if ix < 0 || ix >= w as isize { 0.0 } else { xrow[ix as usize] };
                    }
                }
            }
        }
    }
}

/// Scatter-adds a `(c_in·kh·kw) × (oh·ow)` gradient column matrix back into
/// one image's input gradient (the adjoint of [`im2col`]). Accumulation
/// order is a function of the geometry only, so results are thread-width
/// independent.
fn col2im_add(dcol: &[f32], dx_img: &mut [f32], cs: ColShape) {
    let ColShape { c_in, h, w, kh, kw, oh, ow, stride, pad } = cs;
    let l = cs.len();
    for ci in 0..c_in {
        let dxc = &mut dx_img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let r = (ci * kh + ky) * kw + kx;
                let row = &dcol[r * l..(r + 1) * l];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = &row[oy * ow..(oy + 1) * ow];
                    for (ox, &g) in src.iter().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dxc[iy as usize * w + ix as usize] += g;
                    }
                }
            }
        }
    }
}

/// Convolution lowered to im2col + packed GEMM: per image, the receptive
/// fields become a column matrix and the output plane is one GEMM
/// `W(c_out × c_in·kh·kw) · col(c_in·kh·kw × oh·ow)`, bias added after.
///
/// Images partition across the shared pool (single-image batches let the
/// GEMM itself parallelize instead); column buffers come from the scratch
/// arena. Results are bit-identical at any thread width.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    let (b, c_in, h, w) = dims4(input, "conv input")?;
    let (c_out, wc_in, kh, kw) = dims4(weight, "conv weight")?;
    if wc_in != c_in {
        return Err(TensorError::Incompatible(format!(
            "conv channels: input {c_in} vs weight {wc_in}"
        )));
    }
    if bias.len() != c_out {
        return Err(TensorError::Incompatible(format!(
            "conv bias length {} vs out channels {c_out}",
            bias.len()
        )));
    }
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    let cs = ColShape { c_in, h, w, kh, kw, oh, ow, stride, pad };
    let (ckk, l) = (cs.ckk(), cs.len());
    let x = input.data();
    let wt = weight.data();
    let bs = bias.data();
    let image_in = c_in * h * w;
    let image_out = c_out * l;
    let mut out = scratch::take_vec(b * image_out);
    let run_image = |n: usize, ochunk: &mut [f32], par_gemm: bool| {
        let mut col = scratch::take(ckk * l);
        im2col(&x[n * image_in..(n + 1) * image_in], &mut col, cs);
        let wref = MatRef::row_major(wt, ckk);
        let cref = MatRef::row_major(&col, l);
        if par_gemm {
            gemm::gemm(c_out, ckk, l, wref, cref, ochunk);
        } else {
            gemm::gemm_serial(c_out, ckk, l, wref, cref, ochunk);
        }
        for (co, oplane) in ochunk.chunks_exact_mut(l).enumerate() {
            let bv = bs[co];
            if bv != 0.0 {
                for o in oplane.iter_mut() {
                    *o += bv;
                }
            }
        }
    };
    if b == 1 {
        // One image: the blocked GEMM owns the parallelism.
        run_image(0, &mut out, true);
    } else {
        pool::scope_chunks(&mut out, image_out, |n, ochunk| run_image(n, ochunk, false));
    }
    Tensor::from_vec([b, c_out, oh, ow], out)
}

/// Backward pass of [`conv2d`].
///
/// Returns `(d_input, d_weight, d_bias)` for the upstream gradient `grad`
/// shaped like the convolution output. Above [`IM2COL_THRESHOLD`]
/// multiply-adds each image's gradients are computed with two packed GEMMs
/// (`dW = dY · colᵀ`, `dX = col2im(Wᵀ · dY)`); below it the direct
/// scatter loops run. Per-image partials merge in image order either way,
/// so results are bit-identical at any thread width.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_impl(input, weight, grad, stride, pad, None)
}

/// [`conv2d_backward`] forced onto the direct scatter-loop strategy,
/// regardless of problem size. Exposed for differential tests and benches.
pub fn conv2d_backward_direct(
    input: &Tensor,
    weight: &Tensor,
    grad: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_impl(input, weight, grad, stride, pad, Some(false))
}

/// [`conv2d_backward`] forced onto the im2col + GEMM strategy, regardless
/// of problem size. Exposed for differential tests and benches.
pub fn conv2d_backward_im2col(
    input: &Tensor,
    weight: &Tensor,
    grad: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_impl(input, weight, grad, stride, pad, Some(true))
}

#[allow(clippy::needless_range_loop)]
fn conv2d_backward_impl(
    input: &Tensor,
    weight: &Tensor,
    grad: &Tensor,
    stride: usize,
    pad: usize,
    force_im2col: Option<bool>,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (b, c_in, h, w) = dims4(input, "conv input")?;
    let (c_out, _, kh, kw) = dims4(weight, "conv weight")?;
    let (gb, gc, oh, ow) = dims4(grad, "conv grad")?;
    if gb != b || gc != c_out {
        return Err(TensorError::Incompatible(format!(
            "conv grad shape {:?} does not match output ({b},{c_out},..)",
            grad.shape().0
        )));
    }
    let x = input.data();
    let wt = weight.data();
    let g = grad.data();
    let mut dx = vec![0.0f32; x.len()];
    let mut dw = vec![0.0f32; wt.len()];
    let mut db = vec![0.0f32; c_out];

    let oh_ow = oh * ow;
    let cs = ColShape { c_in, h, w, kh, kw, oh, ow, stride, pad };
    let (ckk, l) = (cs.ckk(), cs.len());
    let use_im2col =
        force_im2col.unwrap_or(b * c_out * oh_ow * c_in * kh * kw >= IM2COL_THRESHOLD);

    // im2col strategy: rebuild the image's column matrix, then
    // dW_n = dY_n · colᵀ and dX_n = col2im(Wᵀ · dY_n) as packed GEMMs.
    // Single-image batches let the GEMMs parallelize (the per-image fan-out
    // below degenerates to one task).
    let image_grads_im2col = |n: usize, dx_img: &mut [f32]| -> (Vec<f32>, Vec<f32>) {
        let mut col = scratch::take(ckk * l);
        im2col(&x[n * c_in * h * w..(n + 1) * c_in * h * w], &mut col, cs);
        let g_n = &g[n * c_out * l..(n + 1) * c_out * l];
        let gref = MatRef::row_major(g_n, l);
        let mut dw_n = vec![0.0f32; wt.len()];
        let mut dcol = scratch::take(ckk * l);
        if b == 1 {
            gemm::gemm(c_out, l, ckk, gref, MatRef::transposed(&col, l), &mut dw_n);
            gemm::gemm(ckk, c_out, l, MatRef::transposed(wt, ckk), gref, &mut dcol);
        } else {
            gemm::gemm_serial(c_out, l, ckk, gref, MatRef::transposed(&col, l), &mut dw_n);
            gemm::gemm_serial(ckk, c_out, l, MatRef::transposed(wt, ckk), gref, &mut dcol);
        }
        col2im_add(&dcol, dx_img, cs);
        let mut db_n = vec![0.0f32; c_out];
        for (co, dbv) in db_n.iter_mut().enumerate() {
            *dbv = g_n[co * l..(co + 1) * l].iter().sum();
        }
        (dw_n, db_n)
    };

    // Per-image partials: image `n` owns its dx slice exclusively and
    // accumulates local dw/db copies, merged afterwards in image order.
    // Sequential and pooled execution share this structure, so they are
    // bit-identical at any thread count.
    let image_grads_direct = |n: usize, dx_img: &mut [f32]| -> (Vec<f32>, Vec<f32>) {
        let mut dw_n = vec![0.0f32; wt.len()];
        let mut db_n = vec![0.0f32; c_out];
        for co in 0..c_out {
            let obase = ((n * c_out) + co) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[obase + oy * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    db_n[co] += gv;
                    for ci in 0..c_in {
                        let ibase = ((n * c_in) + ci) * h * w;
                        let xbase = ci * h * w;
                        let wbase = ((co * c_in) + ci) * kh * kw;
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let off = iy as usize * w + ix as usize;
                                let wi = wbase + ky * kw + kx;
                                dx_img[xbase + off] += gv * wt[wi];
                                dw_n[wi] += gv * x[ibase + off];
                            }
                        }
                    }
                }
            }
        }
        (dw_n, db_n)
    };

    let image_grads = |n: usize, dx_img: &mut [f32]| -> (Vec<f32>, Vec<f32>) {
        if use_im2col {
            image_grads_im2col(n, dx_img)
        } else {
            image_grads_direct(n, dx_img)
        }
    };

    let image_len = c_in * h * w;
    let work = b * c_out * oh * ow * c_in * kh * kw * 2;
    let partials: Vec<(Vec<f32>, Vec<f32>)> =
        if work < PAR_THRESHOLD || pool::num_threads() <= 1 || b <= 1 {
            dx.chunks_mut(image_len.max(1))
                .enumerate()
                .map(|(n, dx_img)| image_grads(n, dx_img))
                .collect()
        } else {
            let tasks: Vec<Box<dyn FnOnce() -> (Vec<f32>, Vec<f32>) + Send + '_>> = dx
                .chunks_mut(image_len)
                .enumerate()
                .map(|(n, dx_img)| {
                    let f = &image_grads;
                    Box::new(move || f(n, dx_img))
                        as Box<dyn FnOnce() -> (Vec<f32>, Vec<f32>) + Send + '_>
                })
                .collect();
            pool::join_all(tasks)
        };
    for (dw_n, db_n) in &partials {
        for (acc, v) in dw.iter_mut().zip(dw_n.iter()) {
            *acc += v;
        }
        for (acc, v) in db.iter_mut().zip(db_n.iter()) {
            *acc += v;
        }
    }
    Ok((
        Tensor::from_vec(input.shape().clone(), dx)?,
        Tensor::from_vec(weight.shape().clone(), dw)?,
        Tensor::from_vec([c_out], db)?,
    ))
}

/// Max pooling with a square window; returns `(output, argmax_indices)` where
/// the indices point into the flattened input and feed the backward pass.
pub fn max_pool2d(
    input: &Tensor,
    k: usize,
    stride: usize,
) -> Result<(Tensor, Vec<u32>), TensorError> {
    let (b, c, h, w) = dims4(input, "pool input")?;
    let oh = conv_out_dim(h, k, stride, 0);
    let ow = conv_out_dim(w, k, stride, 0);
    let x = input.data();
    let mut out = vec![0.0f32; b * c * oh * ow];
    let mut idx = vec![0u32; b * c * oh * ow];
    for n in 0..b {
        for ci in 0..c {
            let ibase = ((n * c) + ci) * h * w;
            let obase = ((n * c) + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let ii = ibase + (oy * stride + ky) * w + (ox * stride + kx);
                            if x[ii] > best {
                                best = x[ii];
                                best_i = ii;
                            }
                        }
                    }
                    out[obase + oy * ow + ox] = best;
                    idx[obase + oy * ow + ox] = best_i as u32;
                }
            }
        }
    }
    Ok((Tensor::from_vec([b, c, oh, ow], out)?, idx))
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that was the window maximum.
pub fn max_pool2d_backward(
    input_shape: &crate::Shape,
    argmax: &[u32],
    grad: &Tensor,
) -> Result<Tensor, TensorError> {
    if argmax.len() != grad.len() {
        return Err(TensorError::Incompatible(format!(
            "argmax length {} vs grad {}",
            argmax.len(),
            grad.len()
        )));
    }
    let mut dx = vec![0.0f32; input_shape.num_elements()];
    for (&i, &g) in argmax.iter().zip(grad.data()) {
        dx[i as usize] += g;
    }
    Tensor::from_vec(input_shape.clone(), dx)
}

/// Global average pooling: `[b, c, h, w] -> [b, c]`.
///
/// The backward pass is a uniform spread of `grad / (h*w)`, done inline by the
/// pooling layer in `nautilus-dnn`.
pub fn avg_pool2d_global(input: &Tensor) -> Result<Tensor, TensorError> {
    let (b, c, h, w) = dims4(input, "gap input")?;
    let x = input.data();
    let inv = 1.0 / (h * w) as f32;
    let mut out = vec![0.0f32; b * c];
    for n in 0..b {
        for ci in 0..c {
            let ibase = ((n * c) + ci) * h * w;
            out[n * c + ci] = x[ibase..ibase + h * w].iter().sum::<f32>() * inv;
        }
    }
    Tensor::from_vec([b, c], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, seeded_rng};

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8); // "same" padding
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(8, 2, 2, 0), 4);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1, bias 0 == identity.
        let x = randn([1, 1, 3, 3], 1.0, &mut seeded_rng(1));
        let w = Tensor::ones([1, 1, 1, 1]);
        let b = Tensor::zeros([1]);
        let y = conv2d(&x, &w, &b, 1, 0).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_hand_checked_3x3() {
        // 2x2 input, 2x2 kernel, no pad, stride 1 -> single output.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([1], vec![0.5]).unwrap();
        let y = conv2d(&x, &w, &b, 1, 0).unwrap();
        assert_eq!(y.shape().0, vec![1, 1, 1, 1]);
        assert_eq!(y.data(), &[1.0 + 4.0 + 0.5]);
    }

    #[test]
    fn conv_same_padding_keeps_spatial_dims() {
        let x = randn([2, 3, 5, 5], 1.0, &mut seeded_rng(2));
        let w = randn([4, 3, 3, 3], 0.1, &mut seeded_rng(3));
        let b = Tensor::zeros([4]);
        let y = conv2d(&x, &w, &b, 1, 1).unwrap();
        assert_eq!(y.shape().0, vec![2, 4, 5, 5]);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let x = randn([1, 2, 4, 4], 1.0, &mut seeded_rng(4));
        let w = randn([3, 2, 3, 3], 0.2, &mut seeded_rng(5));
        let b = Tensor::zeros([3]);
        let loss = |xi: &Tensor, wi: &Tensor| conv2d(xi, wi, &b, 1, 1).unwrap().sum();
        let g = Tensor::ones(conv2d(&x, &w, &b, 1, 1).unwrap().shape().clone());
        let (dx, dw, db) = conv2d_backward(&x, &w, &g, 1, 1).unwrap();
        let eps = 1e-2f32;
        // Spot-check a few input coordinates.
        for &i in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 2e-2, "dx[{i}]: {num} vs {}", dx.data()[i]);
        }
        // Spot-check a few weight coordinates.
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 5e-2, "dw[{i}]: {num} vs {}", dw.data()[i]);
        }
        // Bias gradient: each output position contributes 1.
        assert!(db.data().iter().all(|&v| (v - 16.0).abs() < 1e-4));
    }

    #[test]
    fn pooled_conv_identical_across_thread_limits() {
        use nautilus_util::pool::with_parallelism_limit;
        // Big enough to cross PAR_THRESHOLD: 8*16*16*16*8*3*3*2 ≈ 4.7M.
        let x = randn([8, 8, 16, 16], 1.0, &mut seeded_rng(11));
        let w = randn([16, 8, 3, 3], 0.2, &mut seeded_rng(12));
        let b = Tensor::zeros([16]);
        let fwd_ref = with_parallelism_limit(1, || conv2d(&x, &w, &b, 1, 1).unwrap());
        let g = randn(fwd_ref.shape().clone(), 1.0, &mut seeded_rng(13));
        let bwd_ref = with_parallelism_limit(1, || conv2d_backward(&x, &w, &g, 1, 1).unwrap());
        for limit in [2usize, 8] {
            let fwd = with_parallelism_limit(limit, || conv2d(&x, &w, &b, 1, 1).unwrap());
            assert_eq!(fwd, fwd_ref, "forward diverged at limit {limit}");
            let (dx, dw, db) =
                with_parallelism_limit(limit, || conv2d_backward(&x, &w, &g, 1, 1).unwrap());
            assert_eq!(dx, bwd_ref.0, "dx diverged at limit {limit}");
            assert_eq!(dw, bwd_ref.1, "dw diverged at limit {limit}");
            assert_eq!(db, bwd_ref.2, "db diverged at limit {limit}");
        }
    }

    #[test]
    fn max_pool_and_backward() {
        let x = Tensor::from_vec(
            [1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 7.0],
        )
        .unwrap();
        let (y, idx) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.shape().0, vec![1, 1, 1, 2]);
        assert_eq!(y.data(), &[5.0, 7.0]);
        let g = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]).unwrap();
        let dx = max_pool2d_backward(x.shape(), &idx, &g).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn global_avg_pool() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0])
            .unwrap();
        let y = avg_pool2d_global(&x).unwrap();
        assert_eq!(y.shape().0, vec![1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn rank_checks() {
        let x3 = Tensor::zeros([1, 2, 3]);
        assert!(avg_pool2d_global(&x3).is_err());
        assert!(max_pool2d(&x3, 2, 2).is_err());
    }
}
