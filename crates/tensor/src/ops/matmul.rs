//! Matrix multiplication kernels.
//!
//! The tensor operands are interpreted as matrices via
//! [`Tensor::as_matrix`]: every axis but the innermost is flattened into the
//! row dimension. This matches how dense layers apply to `[batch, seq, dim]`
//! activations.
//!
//! [`matmul_ex`] is the single entry point owning transpose dispatch,
//! kernel selection, and FLOP accounting; [`matmul`]/[`matmul_ta`]/
//! [`matmul_tb`] are thin wrappers over it. Two physical kernels back it:
//!
//! * **Blocked packed GEMM** ([`crate::ops::gemm`]) for products with at
//!   least [`GEMM_THRESHOLD`] multiply-adds: a cache-blocked loop nest over
//!   packed panels with an 8×8 register microkernel. Transposes are folded
//!   into the packing step, so all four [`MatmulSpec`] combinations take
//!   the same fast path. Large products fan out over the shared
//!   [`nautilus_util::pool`] with bit-identical results at any thread
//!   width; rounding may differ from the naive kernels (each output
//!   element still sums `k` ascending, but in KC-sized register-resident
//!   partials).
//! * **Naive sequential loops** below the threshold, where packing
//!   overhead would dominate: `i-k-j` saxpy for the plain case and
//!   specialized loops for the transposed cases.
//!
//! Output buffers come from the thread-local [`nautilus_util::scratch`]
//! arena, so the training loop's matmuls stop hitting the allocator once
//! the arena is warm.

use crate::ops::dispatch::effective_work;
use crate::ops::gemm::{self, MatRef};
use crate::{Tensor, TensorError};
use nautilus_util::{scratch, telemetry};

/// Multiply-add count at and above which [`matmul_ex`] lowers to the
/// blocked packed GEMM engine *when running the safe kernel*; below it the
/// naive loops win because the packing traffic is not amortized. The live
/// crossover is [`gemm_threshold`], which consults the resolved kernel —
/// the FMA microkernel amortizes packing one octave sooner. This constant
/// is kept as the documented safe-kernel value (and for callers sizing
/// test workloads against the safe default).
pub const GEMM_THRESHOLD: usize = 1 << 17;

/// The multiply-add crossover the next [`matmul_ex`] call dispatches with:
/// [`gemm::dispatch_threshold`] of the runtime-resolved kernel. Equals
/// [`GEMM_THRESHOLD`] whenever the safe kernel is selected (validated by a
/// unit test so the constant and the table cannot drift apart).
pub fn gemm_threshold() -> usize {
    gemm::dispatch_threshold(gemm::resolved_kernel())
}

/// Counts one kernel-dispatch decision in the labeled `gemm.kernel{path=}`
/// family (`path` ∈ `naive` | `safe` | `fma` | `int8`), so `/metrics`
/// shows which kernel actually served traffic.
pub fn count_dispatch(path: &str) {
    if telemetry::metrics_enabled() {
        telemetry::counter_with("gemm.kernel", &[("path", path)]).add(1);
    }
}

/// Which operands of [`matmul_ex`] are consumed transposed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatmulSpec {
    /// Treat `a` (stored `(m, k)`) as `aᵀ` `(k, m)`.
    pub transpose_a: bool,
    /// Treat `b` (stored `(k, n)`) as `bᵀ` `(n, k)`.
    pub transpose_b: bool,
}

impl MatmulSpec {
    /// Plain `A · B`.
    pub fn plain() -> Self {
        MatmulSpec::default()
    }

    /// `Aᵀ · B` (parameter gradients: `dW = Xᵀ · dY`).
    pub fn ta() -> Self {
        MatmulSpec { transpose_a: true, transpose_b: false }
    }

    /// `A · Bᵀ` (input gradients: `dX = dY · Wᵀ`).
    pub fn tb() -> Self {
        MatmulSpec { transpose_a: false, transpose_b: true }
    }
}

fn matmul_rows(ad: &[f32], bd: &[f32], out: &mut [f32], k: usize, n: usize) {
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `C[k,n] = Aᵀ · B` where `a` is stored `(m, k)`: scans input rows `i`
/// once, scattering into every output row.
fn matmul_ta_rows(ad: &[f32], bd: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (p, orow) in out.chunks_exact_mut(n).enumerate() {
            let av = arow[p];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

fn matmul_tb_rows(ad: &[f32], bd: &[f32], out: &mut [f32], n: usize, k: usize) {
    for (arow, orow) in ad.chunks_exact(n).zip(out.chunks_exact_mut(k)) {
        for (p, o) in orow.iter_mut().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// General matrix multiplication: `C = op(A) · op(B)` where `op` optionally
/// transposes per [`MatmulSpec`].
///
/// `a` is flattened as `(outer, last)` via [`Tensor::as_matrix`]. The
/// result keeps `a`'s outer axes (plain / `transpose_b`) or is the 2-D
/// `(k, n)` gradient shape (`transpose_a`). Products past
/// [`GEMM_THRESHOLD`] run on the blocked packed GEMM engine (parallel when
/// large, bit-identical at any thread width).
pub fn matmul_ex(a: &Tensor, b: &Tensor, spec: MatmulSpec) -> Result<Tensor, TensorError> {
    let kernel = gemm::resolved_kernel();
    let threshold = gemm::dispatch_threshold(kernel);
    match (spec.transpose_a, spec.transpose_b) {
        (false, false) => {
            let (m, k, ad) = a.as_matrix();
            let (bk, n, bd) = b.as_matrix();
            if k != bk {
                return Err(TensorError::Incompatible(format!(
                    "matmul inner dims: {} vs {}",
                    k, bk
                )));
            }
            let mut out = scratch::take_vec(m * n);
            if effective_work(m * k * n) >= threshold {
                count_dispatch(kernel.as_str());
                gemm::gemm_with(kernel, m, k, n, MatRef::row_major(ad, k), MatRef::row_major(bd, n), &mut out);
            } else {
                count_dispatch("naive");
                matmul_rows(ad, bd, &mut out, k, n);
            }
            Tensor::from_vec(a.shape().with_last_dim(n), out)
        }
        (true, false) => {
            let (m, k, ad) = a.as_matrix();
            let (bm, n, bd) = b.as_matrix();
            if m != bm {
                return Err(TensorError::Incompatible(format!(
                    "matmul_ta outer dims: {} vs {}",
                    m, bm
                )));
            }
            let mut out = scratch::take_vec(k * n);
            if effective_work(m * k * n) >= threshold {
                count_dispatch(kernel.as_str());
                // Effective A' = aᵀ: (k, m) view over the (m, k) buffer.
                gemm::gemm_with(kernel, k, m, n, MatRef::transposed(ad, k), MatRef::row_major(bd, n), &mut out);
            } else {
                count_dispatch("naive");
                matmul_ta_rows(ad, bd, &mut out, m, k, n);
            }
            Tensor::from_vec([k, n], out)
        }
        (false, true) => {
            let (m, n, ad) = a.as_matrix();
            let (k, bn, bd) = b.as_matrix();
            if n != bn {
                return Err(TensorError::Incompatible(format!(
                    "matmul_tb inner dims: {} vs {}",
                    n, bn
                )));
            }
            let mut out = scratch::take_vec(m * k);
            if effective_work(m * k * n) >= threshold {
                count_dispatch(kernel.as_str());
                // Effective B' = bᵀ: (n, k) buffer read as (n → k, cols).
                gemm::gemm_with(kernel, m, n, k, MatRef::row_major(ad, n), MatRef::transposed(bd, n), &mut out);
            } else {
                count_dispatch("naive");
                matmul_tb_rows(ad, bd, &mut out, n, k);
            }
            Tensor::from_vec(a.shape().with_last_dim(k), out)
        }
        (true, true) => {
            let (am, ak, ad) = a.as_matrix();
            let (bm, bn, bd) = b.as_matrix();
            if am != bn {
                return Err(TensorError::Incompatible(format!(
                    "matmul aᵀ·bᵀ dims: {} vs {}",
                    am, bn
                )));
            }
            let (m, k, n) = (ak, am, bm);
            let mut out = scratch::take_vec(m * n);
            if effective_work(m * k * n) >= threshold {
                count_dispatch(kernel.as_str());
                gemm::gemm_with(
                    kernel,
                    m,
                    k,
                    n,
                    MatRef::transposed(ad, ak),
                    MatRef::transposed(bd, bn),
                    &mut out,
                );
            } else {
                count_dispatch("naive");
                // Cᵀ = B · A: compute with the plain kernel, then transpose.
                let mut c = vec![0.0f32; n * m];
                matmul_rows(bd, ad, &mut c, bn, ak);
                for r in 0..n {
                    for cix in 0..m {
                        out[cix * n + r] = c[r * m + cix];
                    }
                }
            }
            Tensor::from_vec([m, n], out)
        }
    }
}

/// FLOPs performed by a [`matmul_ex`] call with these operands.
///
/// Counts the mathematical multiply-adds only — identical for the naive
/// and blocked kernels; panel packing is memory traffic, not FLOPs.
pub fn matmul_ex_flops(a: &Tensor, b: &Tensor, spec: MatmulSpec) -> u64 {
    let (am, ak, _) = a.as_matrix();
    let (bk, bn, _) = b.as_matrix();
    let (m, k) = if spec.transpose_a { (ak, am) } else { (am, ak) };
    let n = if spec.transpose_b { bk } else { bn };
    matmul_flops(m, k, n)
}

/// `C[m,n] = A[m,k] · B[k,n]`, with `A` flattened as `(outer, last)`.
///
/// The result keeps `A`'s outer axes and replaces the innermost axis with
/// `B`'s column count. Large products run on the blocked GEMM engine.
#[inline]
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::plain())
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `(m, k)` — i.e. `A` transposed.
///
/// Used for parameter gradients: `dW = Xᵀ · dY`.
#[inline]
pub fn matmul_ta(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::ta())
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `(k, n)` — i.e. `B` transposed.
///
/// Used for input gradients: `dX = dY · Wᵀ`.
#[inline]
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::tb())
}

/// FLOPs for a mat-mul of `(m, k) · (k, n)`: one multiply and one add per
/// inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_2x2_hand_checked() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_keeps_outer_axes() {
        let a = Tensor::ones([2, 3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().0, vec![2, 3, 5]);
        assert!(c.data().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 5]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[2, 4], &[1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        // matmul_ta(a, b) == aT . b, shapes (3,2)·(2,4) = (3,4)
        let at = t(&[3, 2], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(matmul_ta(&a, &b).unwrap(), matmul(&at, &b).unwrap());

        // matmul_tb(x, w) == x . wT with w (k,n): shapes (2,3)·(3,4)... build w (4,3)
        let x = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = t(&[4, 3], &[1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 1.0, 1.0, 1.0]);
        let wt = t(&[3, 4], &[1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 3.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(matmul_tb(&x, &w).unwrap(), matmul(&x, &wt).unwrap());
    }

    #[test]
    fn matmul_ex_both_transposed() {
        // (aT · bT) == (b · a)T, checked against explicit transposes.
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = t(&[3, 2], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = t(&[4, 2], &[1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        let bt = t(&[2, 4], &[1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        let got = matmul_ex(&a, &b, MatmulSpec { transpose_a: true, transpose_b: true }).unwrap();
        assert_eq!(got, matmul(&at, &bt).unwrap());
    }

    /// The documented safe-kernel constant and the live dispatch table
    /// must agree, and the FMA crossover must sit below it (denser compute
    /// amortizes packing sooner) — so `gemm_threshold()` never silently
    /// drifts from what callers sized their workloads against.
    #[test]
    fn threshold_table_matches_legacy_constant_for_safe() {
        assert_eq!(gemm::dispatch_threshold(gemm::KernelKind::Safe), GEMM_THRESHOLD);
        assert!(gemm::dispatch_threshold(gemm::KernelKind::Fma) < GEMM_THRESHOLD);
        let live = gemm_threshold();
        let (kind, _) = gemm::kernel_info();
        assert_eq!(live, gemm::dispatch_threshold(kind));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn spec_flops_account_effective_dims() {
        let a = Tensor::ones([8, 3]);
        let b = Tensor::ones([8, 5]);
        // aT(3,8) · b(8,5): m=3, k=8, n=5.
        assert_eq!(matmul_ex_flops(&a, &b, MatmulSpec::ta()), matmul_flops(3, 8, 5));
        let x = Tensor::ones([2, 3]);
        let w = Tensor::ones([4, 3]);
        // x(2,3) · wT(3,4): m=2, k=3, n=4.
        assert_eq!(matmul_ex_flops(&x, &w, MatmulSpec::tb()), matmul_flops(2, 3, 4));
        assert_eq!(
            matmul_ex_flops(&Tensor::ones([2, 3]), &Tensor::ones([3, 4]), MatmulSpec::plain()),
            matmul_flops(2, 3, 4)
        );
    }

    /// The blocked dispatch (all four transpose combos, sizes past
    /// `GEMM_THRESHOLD`) must match the naive reference within relative
    /// tolerance — the kernels may legitimately differ in rounding.
    #[test]
    fn blocked_dispatch_matches_naive_reference() {
        use crate::init::{randn, seeded_rng};
        let mut rng = seeded_rng(77);
        let (m, k, n) = (96usize, 128usize, 96usize); // 1.2M mult-adds > threshold
        assert!(m * k * n >= GEMM_THRESHOLD);
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let a_dims = if ta { [k, m] } else { [m, k] };
            let b_dims = if tb { [n, k] } else { [k, n] };
            let a = randn(a_dims, 1.0, &mut rng);
            let b = randn(b_dims, 1.0, &mut rng);
            let got = matmul_ex(&a, &b, MatmulSpec { transpose_a: ta, transpose_b: tb }).unwrap();
            // Naive reference in the same effective orientation.
            let mut want = vec![0.0f32; m * n];
            let ar = if ta {
                crate::ops::gemm::MatRef::transposed(a.data(), m)
            } else {
                crate::ops::gemm::MatRef::row_major(a.data(), k)
            };
            let br = if tb {
                crate::ops::gemm::MatRef::transposed(b.data(), k)
            } else {
                crate::ops::gemm::MatRef::row_major(b.data(), n)
            };
            crate::ops::gemm::gemm_naive(m, k, n, ar, br, &mut want);
            for (i, (&x, &y)) in got.data().iter().zip(want.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                    "combo ({ta},{tb})[{i}]: blocked {x} vs naive {y}"
                );
            }
        }
    }

    /// With the batch-invariant divisor installed, a stacked batch whose
    /// *total* work crosses `GEMM_THRESHOLD` (but whose per-record work
    /// does not) keeps the naive kernel — so every record's rows are
    /// bit-identical to multiplying that record alone.
    #[test]
    fn batch_invariant_dispatch_pins_kernel_choice() {
        use crate::init::{randn, seeded_rng};
        use crate::ops::with_batch_invariant_dispatch;
        let mut rng = seeded_rng(11);
        let (recs, rows, k, n) = (16usize, 8usize, 64usize, 64usize);
        assert!(recs * rows * k * n >= GEMM_THRESHOLD, "stacked work must cross");
        assert!(rows * k * n < GEMM_THRESHOLD, "per-record work must not");
        let b = randn([k, n], 1.0, &mut rng);
        let records: Vec<Tensor> = (0..recs).map(|_| randn([rows, k], 1.0, &mut rng)).collect();
        let mut stacked = Vec::new();
        for r in &records {
            stacked.extend_from_slice(r.data());
        }
        let stacked = Tensor::from_vec([recs, rows, k], stacked).unwrap();
        let pinned = with_batch_invariant_dispatch(recs, || matmul(&stacked, &b).unwrap());
        for (i, r) in records.iter().enumerate() {
            let solo = matmul(r, &b).unwrap();
            assert_eq!(
                &pinned.data()[i * solo.len()..(i + 1) * solo.len()],
                solo.data(),
                "record {i} diverged from its solo product"
            );
        }
    }

    #[test]
    fn pooled_results_identical_across_thread_limits() {
        use crate::init::{randn, seeded_rng};
        use nautilus_util::pool::with_parallelism_limit;
        let mut rng = seeded_rng(99);
        let a = randn([256, 128], 1.0, &mut rng);
        let b = randn([128, 256], 1.0, &mut rng);
        let reference = with_parallelism_limit(1, || matmul(&a, &b).unwrap());
        for limit in [2usize, 8] {
            let got = with_parallelism_limit(limit, || matmul(&a, &b).unwrap());
            assert_eq!(got, reference, "limit {limit} diverged");
        }
    }

    /// Once the scratch arena is warm, matmul output buffers stop hitting
    /// the allocator: dropping the previous result recycles its storage
    /// into the arena and the next call takes it back out.
    #[test]
    fn matmul_outputs_recycle_through_scratch() {
        use crate::init::{randn, seeded_rng};
        let mut rng = seeded_rng(5);
        let a = randn([64, 64], 1.0, &mut rng);
        let b = randn([64, 64], 1.0, &mut rng);
        let _ = matmul(&a, &b).unwrap(); // warm: result dropped, buffer recycled
        let (h0, _) = nautilus_util::scratch::thread_stats();
        for _ in 0..4 {
            let _ = matmul(&a, &b).unwrap();
        }
        let (h1, _) = nautilus_util::scratch::thread_stats();
        assert!(h1 - h0 >= 4, "warm-loop matmuls must reuse recycled buffers");
    }
}
