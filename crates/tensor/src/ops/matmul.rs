//! Matrix multiplication kernels.
//!
//! The tensor operands are interpreted as matrices via
//! [`Tensor::as_matrix`]: every axis but the innermost is flattened into the
//! row dimension. This matches how dense layers apply to `[batch, seq, dim]`
//! activations. Kernels use the cache-friendly `i-k-j` loop order.

use crate::{Tensor, TensorError};

/// Above this many multiply-adds, [`matmul`]/[`matmul_tb`] split their
/// output rows across threads. Row partitioning keeps results bit-identical
/// to the sequential kernel regardless of thread count.
const PAR_THRESHOLD: usize = 1 << 22;

fn num_threads(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

fn matmul_rows(ad: &[f32], bd: &[f32], out: &mut [f32], k: usize, n: usize) {
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`, with `A` flattened as `(outer, last)`.
///
/// The result keeps `A`'s outer axes and replaces the innermost axis with
/// `B`'s column count. Large products run on multiple threads.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, ad) = a.as_matrix();
    let (bk, n, bd) = b.as_matrix();
    if k != bk {
        return Err(TensorError::Incompatible(format!(
            "matmul inner dims: {} vs {}",
            k, bk
        )));
    }
    let mut out = vec![0.0f32; m * n];
    let threads = num_threads(m * k * n).min(m.max(1));
    if threads <= 1 {
        matmul_rows(ad, bd, &mut out, k, n);
    } else {
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (achunk, ochunk) in
                ad.chunks(rows_per * k).zip(out.chunks_mut(rows_per * n))
            {
                scope.spawn(move || matmul_rows(achunk, bd, ochunk, k, n));
            }
        });
    }
    Tensor::from_vec(a.shape().with_last_dim(n), out)
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `(m, k)` — i.e. `A` transposed.
///
/// Used for parameter gradients: `dW = Xᵀ · dY`.
pub fn matmul_ta(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, ad) = a.as_matrix();
    let (bm, n, bd) = b.as_matrix();
    if m != bm {
        return Err(TensorError::Incompatible(format!(
            "matmul_ta outer dims: {} vs {}",
            m, bm
        )));
    }
    let mut out = vec![0.0f32; k * n];
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([k, n], out)
}

fn matmul_tb_rows(ad: &[f32], bd: &[f32], out: &mut [f32], n: usize, k: usize) {
    for (arow, orow) in ad.chunks_exact(n).zip(out.chunks_exact_mut(k)) {
        for (p, o) in orow.iter_mut().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `(k, n)` — i.e. `B` transposed.
///
/// Used for input gradients: `dX = dY · Wᵀ`. Large products run on
/// multiple threads.
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n, ad) = a.as_matrix();
    let (k, bn, bd) = b.as_matrix();
    if n != bn {
        return Err(TensorError::Incompatible(format!(
            "matmul_tb inner dims: {} vs {}",
            n, bn
        )));
    }
    let mut out = vec![0.0f32; m * k];
    let threads = num_threads(m * k * n).min(m.max(1));
    if threads <= 1 {
        matmul_tb_rows(ad, bd, &mut out, n, k);
    } else {
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (achunk, ochunk) in
                ad.chunks(rows_per * n).zip(out.chunks_mut(rows_per * k))
            {
                scope.spawn(move || matmul_tb_rows(achunk, bd, ochunk, n, k));
            }
        });
    }
    Tensor::from_vec(a.shape().with_last_dim(k), out)
}

/// FLOPs for a mat-mul of `(m, k) · (k, n)`: one multiply and one add per
/// inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_2x2_hand_checked() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_keeps_outer_axes() {
        let a = Tensor::ones([2, 3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().0, vec![2, 3, 5]);
        assert!(c.data().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 5]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[2, 4], &[1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        // matmul_ta(a, b) == aT . b, shapes (3,2)·(2,4) = (3,4)
        let at = t(&[3, 2], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(matmul_ta(&a, &b).unwrap(), matmul(&at, &b).unwrap());

        // matmul_tb(x, w) == x . wT with w (k,n): shapes (2,3)·(3,4)... build w (4,3)
        let x = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = t(&[4, 3], &[1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 1.0, 1.0, 1.0]);
        let wt = t(&[3, 4], &[1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 3.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(matmul_tb(&x, &w).unwrap(), matmul(&x, &wt).unwrap());
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        use crate::init::{randn, seeded_rng};
        // 256*128*256 mult-adds = 8.4M > PAR_THRESHOLD: exercises the
        // threaded path; row partitioning must be bit-identical.
        let mut rng = seeded_rng(77);
        let a = randn([256, 128], 1.0, &mut rng);
        let b = randn([128, 256], 1.0, &mut rng);
        let par = matmul(&a, &b).unwrap();
        let mut seq = vec![0.0f32; 256 * 256];
        matmul_rows(a.data(), b.data(), &mut seq, 128, 256);
        assert_eq!(par.data(), &seq[..]);

        let bt = randn([256, 256], 1.0, &mut rng);
        let par_tb = matmul_tb(&a.reshape([128, 256]).unwrap(), &bt).unwrap();
        let mut seq_tb = vec![0.0f32; 128 * 256];
        matmul_tb_rows(a.data(), bt.data(), &mut seq_tb, 256, 256);
        assert_eq!(par_tb.data(), &seq_tb[..]);
    }
}
