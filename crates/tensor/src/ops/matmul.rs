//! Matrix multiplication kernels.
//!
//! The tensor operands are interpreted as matrices via
//! [`Tensor::as_matrix`]: every axis but the innermost is flattened into the
//! row dimension. This matches how dense layers apply to `[batch, seq, dim]`
//! activations. Kernels use the cache-friendly `i-k-j` loop order.
//!
//! [`matmul_ex`] is the single entry point owning transpose dispatch, pool
//! parallelization, and FLOP accounting; [`matmul`]/[`matmul_ta`]/
//! [`matmul_tb`] are thin wrappers over it. Parallel execution runs on the
//! shared [`nautilus_util::pool`] and partitions only *disjoint output
//! regions*, so results are bit-identical to the sequential kernels at any
//! thread count.

use crate::{Tensor, TensorError};
use nautilus_util::pool;

/// Above this many multiply-adds, [`matmul_ex`] splits its output across
/// the shared thread pool. Output partitioning keeps results bit-identical
/// to the sequential kernel regardless of thread count.
const PAR_THRESHOLD: usize = 1 << 22;

fn num_tasks(work: usize, rows: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    pool::num_threads().min(rows.max(1))
}

/// Which operands of [`matmul_ex`] are consumed transposed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatmulSpec {
    /// Treat `a` (stored `(m, k)`) as `aᵀ` `(k, m)`.
    pub transpose_a: bool,
    /// Treat `b` (stored `(k, n)`) as `bᵀ` `(n, k)`.
    pub transpose_b: bool,
}

impl MatmulSpec {
    /// Plain `A · B`.
    pub fn plain() -> Self {
        MatmulSpec::default()
    }

    /// `Aᵀ · B` (parameter gradients: `dW = Xᵀ · dY`).
    pub fn ta() -> Self {
        MatmulSpec { transpose_a: true, transpose_b: false }
    }

    /// `A · Bᵀ` (input gradients: `dX = dY · Wᵀ`).
    pub fn tb() -> Self {
        MatmulSpec { transpose_a: false, transpose_b: true }
    }
}

fn matmul_rows(ad: &[f32], bd: &[f32], out: &mut [f32], k: usize, n: usize) {
    for (arow, orow) in ad.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes output rows `[p0, p0 + out.len()/n)` of `C[k,n] = Aᵀ · B`.
///
/// Scans every input row `i` exactly like the sequential kernel, restricted
/// to this task's `p` range, so per-element addition order (and therefore
/// rounding) is identical to the full sequential pass.
fn matmul_ta_rows(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    p0: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let p_len = out.len() / n;
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (pi, orow) in out.chunks_exact_mut(n).take(p_len).enumerate() {
            let av = arow[p0 + pi];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

fn matmul_tb_rows(ad: &[f32], bd: &[f32], out: &mut [f32], n: usize, k: usize) {
    for (arow, orow) in ad.chunks_exact(n).zip(out.chunks_exact_mut(k)) {
        for (p, o) in orow.iter_mut().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// General matrix multiplication: `C = op(A) · op(B)` where `op` optionally
/// transposes per [`MatmulSpec`].
///
/// `a` is flattened as `(outer, last)` via [`Tensor::as_matrix`]. The
/// result keeps `a`'s outer axes (plain / `transpose_b`) or is the 2-D
/// `(k, n)` gradient shape (`transpose_a`). Large products fan out over the
/// shared thread pool with bit-identical results.
pub fn matmul_ex(a: &Tensor, b: &Tensor, spec: MatmulSpec) -> Result<Tensor, TensorError> {
    match (spec.transpose_a, spec.transpose_b) {
        (false, false) => {
            let (m, k, ad) = a.as_matrix();
            let (bk, n, bd) = b.as_matrix();
            if k != bk {
                return Err(TensorError::Incompatible(format!(
                    "matmul inner dims: {} vs {}",
                    k, bk
                )));
            }
            let mut out = vec![0.0f32; m * n];
            let tasks = num_tasks(m * k * n, m);
            if tasks <= 1 {
                matmul_rows(ad, bd, &mut out, k, n);
            } else {
                let rows_per = m.div_ceil(tasks);
                pool::scope_chunks(&mut out, rows_per * n, |ci, ochunk| {
                    let a0 = ci * rows_per * k;
                    let achunk = &ad[a0..(a0 + ochunk.len() / n * k)];
                    matmul_rows(achunk, bd, ochunk, k, n);
                });
            }
            Tensor::from_vec(a.shape().with_last_dim(n), out)
        }
        (true, false) => {
            let (m, k, ad) = a.as_matrix();
            let (bm, n, bd) = b.as_matrix();
            if m != bm {
                return Err(TensorError::Incompatible(format!(
                    "matmul_ta outer dims: {} vs {}",
                    m, bm
                )));
            }
            let mut out = vec![0.0f32; k * n];
            let tasks = num_tasks(m * k * n, k);
            if tasks <= 1 {
                matmul_ta_rows(ad, bd, &mut out, 0, m, k, n);
            } else {
                let rows_per = k.div_ceil(tasks);
                pool::scope_chunks(&mut out, rows_per * n, |ci, ochunk| {
                    matmul_ta_rows(ad, bd, ochunk, ci * rows_per, m, k, n);
                });
            }
            Tensor::from_vec([k, n], out)
        }
        (false, true) => {
            let (m, n, ad) = a.as_matrix();
            let (k, bn, bd) = b.as_matrix();
            if n != bn {
                return Err(TensorError::Incompatible(format!(
                    "matmul_tb inner dims: {} vs {}",
                    n, bn
                )));
            }
            let mut out = vec![0.0f32; m * k];
            let tasks = num_tasks(m * k * n, m);
            if tasks <= 1 {
                matmul_tb_rows(ad, bd, &mut out, n, k);
            } else {
                let rows_per = m.div_ceil(tasks);
                pool::scope_chunks(&mut out, rows_per * k, |ci, ochunk| {
                    let a0 = ci * rows_per * n;
                    let achunk = &ad[a0..(a0 + ochunk.len() / k * n)];
                    matmul_tb_rows(achunk, bd, ochunk, n, k);
                });
            }
            Tensor::from_vec(a.shape().with_last_dim(k), out)
        }
        (true, true) => {
            // Cᵀ = B · A, so compute with the plain kernel and transpose.
            // No hot path uses this combination; clarity over speed.
            let c = matmul_ex(b, a, MatmulSpec::plain())?;
            let (rows, cols, cd) = c.as_matrix();
            let mut out = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for cix in 0..cols {
                    out[cix * rows + r] = cd[r * cols + cix];
                }
            }
            Tensor::from_vec([cols, rows], out)
        }
    }
}

/// FLOPs performed by a [`matmul_ex`] call with these operands.
pub fn matmul_ex_flops(a: &Tensor, b: &Tensor, spec: MatmulSpec) -> u64 {
    let (am, ak, _) = a.as_matrix();
    let (bk, bn, _) = b.as_matrix();
    let (m, k) = if spec.transpose_a { (ak, am) } else { (am, ak) };
    let n = if spec.transpose_b { bk } else { bn };
    matmul_flops(m, k, n)
}

/// `C[m,n] = A[m,k] · B[k,n]`, with `A` flattened as `(outer, last)`.
///
/// The result keeps `A`'s outer axes and replaces the innermost axis with
/// `B`'s column count. Large products run on the shared thread pool.
#[inline]
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::plain())
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `(m, k)` — i.e. `A` transposed.
///
/// Used for parameter gradients: `dW = Xᵀ · dY`.
#[inline]
pub fn matmul_ta(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::ta())
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `(k, n)` — i.e. `B` transposed.
///
/// Used for input gradients: `dX = dY · Wᵀ`.
#[inline]
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, MatmulSpec::tb())
}

/// FLOPs for a mat-mul of `(m, k) · (k, n)`: one multiply and one add per
/// inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_2x2_hand_checked() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_keeps_outer_axes() {
        let a = Tensor::ones([2, 3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().0, vec![2, 3, 5]);
        assert!(c.data().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 5]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[2, 4], &[1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        // matmul_ta(a, b) == aT . b, shapes (3,2)·(2,4) = (3,4)
        let at = t(&[3, 2], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(matmul_ta(&a, &b).unwrap(), matmul(&at, &b).unwrap());

        // matmul_tb(x, w) == x . wT with w (k,n): shapes (2,3)·(3,4)... build w (4,3)
        let x = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = t(&[4, 3], &[1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 1.0, 1.0, 1.0]);
        let wt = t(&[3, 4], &[1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 3.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(matmul_tb(&x, &w).unwrap(), matmul(&x, &wt).unwrap());
    }

    #[test]
    fn matmul_ex_both_transposed() {
        // (aT · bT) == (b · a)T, checked against explicit transposes.
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = t(&[3, 2], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = t(&[4, 2], &[1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        let bt = t(&[2, 4], &[1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 1.0, 3.0]);
        let got = matmul_ex(&a, &b, MatmulSpec { transpose_a: true, transpose_b: true }).unwrap();
        assert_eq!(got, matmul(&at, &bt).unwrap());
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn spec_flops_account_effective_dims() {
        let a = Tensor::ones([8, 3]);
        let b = Tensor::ones([8, 5]);
        // aT(3,8) · b(8,5): m=3, k=8, n=5.
        assert_eq!(matmul_ex_flops(&a, &b, MatmulSpec::ta()), matmul_flops(3, 8, 5));
        let x = Tensor::ones([2, 3]);
        let w = Tensor::ones([4, 3]);
        // x(2,3) · wT(3,4): m=2, k=3, n=4.
        assert_eq!(matmul_ex_flops(&x, &w, MatmulSpec::tb()), matmul_flops(2, 3, 4));
        assert_eq!(
            matmul_ex_flops(&Tensor::ones([2, 3]), &Tensor::ones([3, 4]), MatmulSpec::plain()),
            matmul_flops(2, 3, 4)
        );
    }

    #[test]
    fn parallel_path_matches_sequential() {
        use crate::init::{randn, seeded_rng};
        // 256*128*256 mult-adds = 8.4M > PAR_THRESHOLD: exercises the
        // pooled path; output partitioning must be bit-identical.
        let mut rng = seeded_rng(77);
        let a = randn([256, 128], 1.0, &mut rng);
        let b = randn([128, 256], 1.0, &mut rng);
        let par = matmul(&a, &b).unwrap();
        let mut seq = vec![0.0f32; 256 * 256];
        matmul_rows(a.data(), b.data(), &mut seq, 128, 256);
        assert_eq!(par.data(), &seq[..]);

        let bt = randn([256, 256], 1.0, &mut rng);
        let par_tb = matmul_tb(&a.reshape([128, 256]).unwrap(), &bt).unwrap();
        let mut seq_tb = vec![0.0f32; 128 * 256];
        matmul_tb_rows(a.data(), bt.data(), &mut seq_tb, 256, 256);
        assert_eq!(par_tb.data(), &seq_tb[..]);

        // matmul_ta: pooled p-range partitioning vs one full-range pass.
        let big_a = randn([256, 128], 1.0, &mut rng);
        let big_b = randn([256, 256], 1.0, &mut rng);
        let par_ta = matmul_ta(&big_a, &big_b).unwrap();
        let mut seq_ta = vec![0.0f32; 128 * 256];
        matmul_ta_rows(big_a.data(), big_b.data(), &mut seq_ta, 0, 256, 128, 256);
        assert_eq!(par_ta.data(), &seq_ta[..]);
    }

    #[test]
    fn pooled_results_identical_across_thread_limits() {
        use crate::init::{randn, seeded_rng};
        use nautilus_util::pool::with_parallelism_limit;
        let mut rng = seeded_rng(99);
        let a = randn([256, 128], 1.0, &mut rng);
        let b = randn([128, 256], 1.0, &mut rng);
        let reference = with_parallelism_limit(1, || matmul(&a, &b).unwrap());
        for limit in [2usize, 8] {
            let got = with_parallelism_limit(limit, || matmul(&a, &b).unwrap());
            assert_eq!(got, reference, "limit {limit} diverged");
        }
    }
}
