//! Tensor operations, grouped by kind.
//!
//! All operations are pure functions over [`crate::Tensor`] values; layers in
//! the `nautilus-dnn` crate compose them into forward/backward passes. Ops
//! come in pairs where the model zoo needs gradients (e.g.
//! [`nn::softmax_last`] / [`nn::softmax_last_backward`]).

pub mod conv;
pub mod dispatch;
pub mod elementwise;
pub mod gemm;
pub mod matmul;
pub mod nn;
pub mod qgemm;
pub mod reduce;

pub use conv::{
    avg_pool2d_global, conv2d, conv2d_backward, conv2d_backward_direct, conv2d_backward_im2col,
    conv2d_direct, conv2d_im2col, max_pool2d, max_pool2d_backward,
};
pub use dispatch::with_batch_invariant_dispatch;
pub use elementwise::{add, add_assign, axpy, hadamard, scale, sub};
pub use gemm::MatRef;
pub use matmul::{matmul, matmul_ex, matmul_ex_flops, matmul_ta, matmul_tb, MatmulSpec};
pub use qgemm::{qgemm_dyn, quantize_rows, QuantizedMatrix};
pub use nn::{
    cross_entropy_logits, gelu, gelu_backward, layer_norm, layer_norm_backward, relu,
    relu_backward, softmax_last, softmax_last_backward, tanh_act, tanh_backward,
};
pub use reduce::{argmax_last, mean_axis0, sum_axis0, sum_rows};
