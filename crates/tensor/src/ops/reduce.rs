//! Reductions used by losses, pooling, and gradient accumulation.

use crate::{Tensor, TensorError};

/// Sums over the outermost axis: `[n, ...] -> [...]`.
///
/// Used to accumulate per-record bias gradients into one parameter gradient.
pub fn sum_axis0(a: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape().rank() == 0 {
        return Ok(a.clone());
    }
    let inner = a.shape().without_batch();
    let n = a.shape().dim(0);
    let m = inner.num_elements();
    let mut out = vec![0.0f32; m];
    for i in 0..n {
        let row = &a.data()[i * m..(i + 1) * m];
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    Tensor::from_vec(inner, out)
}

/// Mean over the outermost axis: `[n, ...] -> [...]`.
pub fn mean_axis0(a: &Tensor) -> Result<Tensor, TensorError> {
    let n = if a.shape().rank() == 0 { 1 } else { a.shape().dim(0) };
    let mut s = sum_axis0(a)?;
    if n > 0 {
        let inv = 1.0 / n as f32;
        s.map_in_place(|x| x * inv);
    }
    Ok(s)
}

/// Sums over every axis except the innermost: `[..., d] -> [d]`.
///
/// This is the bias-gradient reduction for activations shaped
/// `[batch, seq, d]`.
pub fn sum_rows(a: &Tensor) -> Result<Tensor, TensorError> {
    let (rows, cols, data) = a.as_matrix();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    Tensor::from_vec([cols], out)
}

/// Index of the maximum element along the innermost axis, per row:
/// `[..., d] -> outer_elements` indices.
pub fn argmax_last(a: &Tensor) -> Vec<usize> {
    let (rows, cols, data) = a.as_matrix();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis0_accumulates_records() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap();
        let s = sum_axis0(&a).unwrap();
        assert_eq!(s.shape().0, vec![3]);
        assert_eq!(s.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn mean_axis0_divides_by_batch() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 3.0, 3.0, 5.0]).unwrap();
        assert_eq!(mean_axis0(&a).unwrap().data(), &[2.0, 4.0]);
    }

    #[test]
    fn sum_rows_reduces_all_outer_axes() {
        let a = Tensor::from_vec([2, 2, 2], vec![1.0; 8]).unwrap();
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.shape().0, vec![2]);
        assert_eq!(s.data(), &[4.0, 4.0]);
    }

    #[test]
    fn argmax_last_per_row() {
        let a = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]).unwrap();
        assert_eq!(argmax_last(&a), vec![1, 0]);
    }

    #[test]
    fn argmax_breaks_ties_toward_first() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(argmax_last(&a), vec![0]);
    }
}
