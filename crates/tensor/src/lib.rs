#![warn(missing_docs)]

//! Dense f32 tensor substrate for the Nautilus reproduction.
//!
//! The paper's system runs on top of TensorFlow kernels; this crate provides the
//! equivalent numerical substrate from scratch: a row-major contiguous [`Tensor`]
//! type plus the operations required by the model zoo (mat-mul, 2-D convolution,
//! softmax/layer-norm, pooling, broadcast elementwise arithmetic), FLOP
//! accounting helpers, deterministic random initialization, and a compact binary
//! serialization format used by the checkpoint and feature stores.
//!
//! Design notes
//! * Shapes are `Vec<usize>` wrapped in [`Shape`]; all data is contiguous
//!   row-major, which keeps kernels simple and cache-friendly.
//! * Large matmuls and convolutions run on the cache-blocked packed GEMM
//!   engine in [`ops::gemm`] (convolutions lower via im2col); tiny shapes
//!   keep straightforward naive loops. Kernels are *not* used at all by
//!   the simulated backend (which only does cost math).
//! * Tensor storage is recycled through the thread-local
//!   `nautilus_util::scratch` arena: kernel outputs take recycled buffers
//!   and dropped tensors return theirs, keeping the allocator off the
//!   training loop's critical path.
//! * Every fallible construction returns [`TensorError`] instead of panicking,
//!   per the database-systems guideline of keeping errors recoverable; indexing
//!   helpers used on hot paths debug-assert instead.

pub mod init;
pub mod ops;
pub mod ser;
pub mod shape;
pub mod tensor;

pub use shape::{Shape, ShapeError};
pub use tensor::{Tensor, TensorError};

/// Number of bytes in one f32 element, used everywhere sizes are estimated.
pub const ELEM_BYTES: usize = 4;
