//! Asynchronous feature-store I/O: epoch-aware read prefetch and
//! write-behind for materialization output.
//!
//! Training re-reads every materialized feature key once per epoch (the
//! paper leans on the OS page cache to make those re-reads cheap, §3).
//! Synchronous reads still leave the trainer idle while chunk N+1 is read
//! and decoded; the [`EpochPrefetcher`] removes that bubble by fetching
//! epoch e+1's chunks on dedicated I/O threads while the trainer computes
//! epoch e (double buffering, readahead depth 1, driven by the trainer's
//! deterministic epoch schedule).
//!
//! Determinism discipline (same as the compute pool's): the I/O threads
//! only read and decode. All *accounting* — page-cache model traffic and
//! the shared [`crate::SharedIoStats`] counters — happens on the consumer
//! thread, per key in feed order and per chunk in append order, exactly
//! as the synchronous path does. Prefetched training is therefore
//! bit-identical to synchronous training, at any thread count, including
//! every telemetry byte counter.

use crate::tensor_store::{ChunkRef, StoreError, TensorStore};
use nautilus_tensor::{ser, Shape, Tensor};
use nautilus_util::{eventlog, telemetry};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// How a [`TensorStore`] schedules its physical I/O.
#[derive(Debug, Clone, Copy)]
pub struct IoPolicy {
    /// Let [`EpochPrefetcher`] overlap chunk read+decode with training
    /// compute (off: every read is synchronous on the calling thread).
    pub prefetch: bool,
    /// Dedicated I/O threads per prefetcher / write-behind engine.
    pub io_threads: usize,
    /// Defer [`TensorStore::append_many`] chunk writes to I/O threads
    /// (reads barrier on pending writes; errors surface at the next
    /// barrier or [`TensorStore::flush_writes`]).
    pub write_behind: bool,
    /// Debug knob: artificial delay per prefetched chunk read, ms. Used by
    /// stall-injection tests to prove the trainer blocks on slow I/O
    /// instead of consuming stale buffers.
    pub read_delay_ms: u64,
}

impl Default for IoPolicy {
    fn default() -> Self {
        IoPolicy { prefetch: true, io_threads: 2, write_behind: false, read_delay_ms: 0 }
    }
}

/// Locks a mutex, riding through poisoning: everything guarded in this
/// module is counter/queue state that stays consistent under panic.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn wait_ok<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Fetch slots and the read engine
// ---------------------------------------------------------------------------

type FetchResult = Result<(Tensor, u64), StoreError>;

enum SlotState {
    Pending,
    Done(FetchResult),
    Taken,
}

/// One-shot rendezvous between an I/O thread and the consumer.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot { state: Mutex::new(SlotState::Pending), cv: Condvar::new() }
    }

    fn set(&self, r: FetchResult) {
        *lock_ok(&self.state) = SlotState::Done(r);
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        !matches!(*lock_ok(&self.state), SlotState::Pending)
    }

    /// Blocks until the fetch finishes and moves the result out.
    fn take(&self) -> FetchResult {
        let mut st = lock_ok(&self.state);
        while matches!(*st, SlotState::Pending) {
            st = wait_ok(&self.cv, st);
        }
        match std::mem::replace(&mut *st, SlotState::Taken) {
            SlotState::Done(r) => r,
            _ => Err(StoreError::BadChunk("prefetch slot consumed twice".into())),
        }
    }
}

struct FetchJob {
    path: PathBuf,
    slot: Arc<Slot>,
    delay_ms: u64,
}

struct EngineShared {
    queue: Mutex<VecDeque<FetchJob>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// Dedicated I/O threads draining a fetch queue. Reads and decodes happen
/// here; the consumer thread does all accounting.
struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    fn spawn(threads: usize) -> Self {
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("nautilus-io-{i}"))
                    .spawn(move || fetch_worker(&shared))
                    .expect("spawn io thread")
            })
            .collect();
        Engine { shared, workers }
    }

    fn submit(&self, job: FetchJob) {
        lock_ok(&self.shared.queue).push_back(job);
        self.shared.cv.notify_one();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn fetch_worker(shared: &EngineShared) {
    loop {
        let job = {
            let mut q = lock_ok(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                q = wait_ok(&shared.cv, q);
            }
        };
        let Some(FetchJob { path, slot, delay_ms }) = job else { return };
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
        let result = (|| {
            let data = {
                let _sp = telemetry::span("store", "store.chunk_read");
                std::fs::read(&path)?
            };
            let _sp = telemetry::span("store", "store.chunk_decode");
            let t = ser::decode(&data).map_err(|e| StoreError::BadChunk(e.to_string()))?;
            Ok((t, data.len() as u64))
        })();
        slot.set(result);
    }
}

// ---------------------------------------------------------------------------
// The epoch prefetcher
// ---------------------------------------------------------------------------

struct KeyPlan {
    key: String,
    record_shape: Vec<usize>,
    chunks: Vec<ChunkRef>,
}

/// Per-key, per-chunk fetch slots for one issued generation.
type Generation = Vec<Vec<Arc<Slot>>>;

/// Double-buffered, epoch-aware readahead over a set of store keys.
///
/// Construction snapshots the chunk layout of every key (training keys are
/// re-read once per epoch; validation keys once, after the last epoch) and
/// issues generation 0. Consuming generation e via
/// [`EpochPrefetcher::epoch`] issues generation e+1 — and, after the last
/// training epoch, the validation generation — so the next epoch's read and
/// decode overlap the current epoch's compute.
///
/// When the store's [`IoPolicy`] disables prefetching (or there is nothing
/// to read ahead), no threads are spawned and every call falls back to the
/// synchronous chunk-granular read path with identical results.
pub struct EpochPrefetcher<'s> {
    store: &'s TensorStore,
    train: Vec<KeyPlan>,
    valid: Vec<KeyPlan>,
    epochs: usize,
    delay_ms: u64,
    engine: Option<Engine>,
    issued: VecDeque<(usize, Generation)>,
    valid_issued: Option<Generation>,
}

impl std::fmt::Debug for EpochPrefetcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPrefetcher")
            .field("train_keys", &self.train.len())
            .field("valid_keys", &self.valid.len())
            .field("epochs", &self.epochs)
            .field("async", &self.engine.is_some())
            .finish()
    }
}

impl<'s> EpochPrefetcher<'s> {
    /// Plans readahead for `train_keys` (read every epoch, `epochs` times)
    /// and `valid_keys` (read once after the last epoch) and issues the
    /// first generation.
    ///
    /// Fails fast with [`StoreError::MissingKey`] when a key does not
    /// exist — the same error the first synchronous read would hit.
    pub fn new(
        store: &'s TensorStore,
        train_keys: &[String],
        valid_keys: &[String],
        epochs: usize,
    ) -> Result<Self, StoreError> {
        let plan_for = |keys: &[String]| -> Result<Vec<KeyPlan>, StoreError> {
            keys.iter()
                .map(|k| {
                    let p = store.chunk_plan(k)?;
                    Ok(KeyPlan {
                        key: k.clone(),
                        record_shape: p.record_shape,
                        chunks: p.chunks,
                    })
                })
                .collect()
        };
        let train = plan_for(train_keys)?;
        let valid = plan_for(valid_keys)?;
        let policy = store.io_policy();
        let total_chunks: usize =
            train.iter().map(|k| k.chunks.len() * epochs).sum::<usize>()
                + valid.iter().map(|k| k.chunks.len()).sum::<usize>();
        let engine = (policy.prefetch && policy.io_threads > 0 && total_chunks > 0)
            .then(|| Engine::spawn(policy.io_threads));
        let mut pf = EpochPrefetcher {
            store,
            train,
            valid,
            epochs,
            delay_ms: policy.read_delay_ms,
            engine,
            issued: VecDeque::new(),
            valid_issued: None,
        };
        if pf.engine.is_some() {
            if epochs > 0 {
                let gen = pf.issue_keys(true);
                pf.issued.push_back((0, gen));
            } else {
                pf.valid_issued = Some(pf.issue_keys(false));
            }
        }
        Ok(pf)
    }

    /// Whether reads are actually being overlapped (false in the
    /// synchronous fallback).
    pub fn is_async(&self) -> bool {
        self.engine.is_some()
    }

    fn issue_keys(&self, train: bool) -> Generation {
        let engine = self.engine.as_ref().expect("issue requires an engine");
        let plans = if train { &self.train } else { &self.valid };
        plans
            .iter()
            .map(|kp| {
                kp.chunks
                    .iter()
                    .map(|c| {
                        let slot = Arc::new(Slot::new());
                        engine.submit(FetchJob {
                            path: c.path.clone(),
                            slot: slot.clone(),
                            delay_ms: self.delay_ms,
                        });
                        slot
                    })
                    .collect()
            })
            .collect()
    }

    /// Consumes one generation: waits for every chunk, accounts the reads
    /// deterministically (key order, then append order), and concatenates
    /// each key's chunks.
    fn consume(&self, generation: Generation, train: bool) -> Result<Vec<Tensor>, StoreError> {
        let plans = if train { &self.train } else { &self.valid };
        let ready =
            generation.iter().all(|slots| slots.iter().all(|s| s.is_done()));
        if ready {
            telemetry::PREFETCH_HITS.add(1);
        } else {
            telemetry::PREFETCH_STALLS.add(1);
            eventlog::warn(
                "prefetch.stall",
                &[("train", eventlog::Value::Bool(train))],
            );
        }
        // The stall span makes "trainer blocked on I/O" visible in traces.
        let _sp = (!ready).then(|| telemetry::span("store", "prefetch.wait"));
        let mut out = Vec::with_capacity(plans.len());
        for (kp, slots) in plans.iter().zip(generation) {
            let mut parts = Vec::with_capacity(slots.len());
            for (c, slot) in kp.chunks.iter().zip(slots) {
                let (t, n) = slot.take()?;
                self.store.account_chunk_read(&c.cache_key, n);
                parts.push(t);
            }
            out.push(concat_chunks(&kp.record_shape, parts)?);
        }
        Ok(out)
    }

    /// Synchronous fallback: the plain chunk-granular scan (identical
    /// bytes, identical accounting order).
    fn read_sync(&self, train: bool) -> Result<Vec<Tensor>, StoreError> {
        let plans = if train { &self.train } else { &self.valid };
        plans.iter().map(|kp| self.store.read_all(&kp.key).map(|(t, _)| t)).collect()
    }

    /// Tensors for training epoch `e`, one per `train_keys` entry, in key
    /// order. Must be called with consecutive epochs starting at 0.
    pub fn epoch(&mut self, e: usize) -> Result<Vec<Tensor>, StoreError> {
        if self.engine.is_none() {
            return self.read_sync(true);
        }
        let Some((gen_e, generation)) = self.issued.pop_front() else {
            return self.read_sync(true);
        };
        debug_assert_eq!(gen_e, e, "epochs must be consumed in order");
        // Double buffer: issue the next generation *before* blocking on
        // this one so the pipe never runs dry.
        if e + 1 < self.epochs {
            let next = self.issue_keys(true);
            self.issued.push_back((e + 1, next));
        } else if self.valid_issued.is_none() && !self.valid.is_empty() {
            self.valid_issued = Some(self.issue_keys(false));
        }
        self.consume(generation, true)
    }

    /// Tensors for the validation keys, in key order. Call after the last
    /// training epoch (its readahead was issued alongside that epoch).
    pub fn valid(&mut self) -> Result<Vec<Tensor>, StoreError> {
        match self.valid_issued.take() {
            Some(generation) => self.consume(generation, false),
            None => self.read_sync(false),
        }
    }
}

fn concat_chunks(record_shape: &[usize], parts: Vec<Tensor>) -> Result<Tensor, StoreError> {
    if parts.is_empty() {
        let shape = Shape::new(record_shape.to_vec()).with_batch(0);
        return Ok(Tensor::zeros(shape));
    }
    Tensor::concat_outer(&parts).map_err(|e| StoreError::BadChunk(e.to_string()))
}

// ---------------------------------------------------------------------------
// Write-behind
// ---------------------------------------------------------------------------

struct WbState {
    in_flight: usize,
    first_error: Option<String>,
}

struct WbShared {
    queue: Mutex<VecDeque<(PathBuf, Vec<u8>)>>,
    cv: Condvar,
    state: Mutex<WbState>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// Deferred chunk writer backing [`TensorStore::append_many`]'s
/// write-behind mode. Encoding (and therefore byte counts, manifest
/// bookkeeping, and budget charges) stays synchronous; only the
/// `fs::write` of each chunk moves to I/O threads. Readers barrier on
/// [`WriteBehind::drain`] before touching chunk files, which also
/// surfaces the first deferred write error.
pub(crate) struct WriteBehind {
    shared: Arc<WbShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WriteBehind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock_ok(&self.shared.state);
        f.debug_struct("WriteBehind").field("in_flight", &st.in_flight).finish()
    }
}

impl WriteBehind {
    pub(crate) fn new() -> Self {
        WriteBehind {
            shared: Arc::new(WbShared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                state: Mutex::new(WbState { in_flight: 0, first_error: None }),
                done_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    fn ensure_workers(&self, threads: usize) {
        let mut workers = lock_ok(&self.workers);
        if !workers.is_empty() {
            return;
        }
        self.shared.shutdown.store(false, Ordering::SeqCst);
        for i in 0..threads.max(1) {
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nautilus-wb-{i}"))
                    .spawn(move || write_worker(&shared))
                    .expect("spawn write-behind thread"),
            );
        }
    }

    pub(crate) fn enqueue(&self, path: PathBuf, data: Vec<u8>, threads: usize) {
        self.ensure_workers(threads);
        lock_ok(&self.shared.state).in_flight += 1;
        lock_ok(&self.shared.queue).push_back((path, data));
        self.shared.cv.notify_one();
        telemetry::WRITE_BEHIND_CHUNKS.add(1);
    }

    /// Blocks until every queued write has landed; returns the first
    /// deferred write error, if any (clearing it).
    pub(crate) fn drain(&self) -> Result<(), StoreError> {
        let mut st = lock_ok(&self.shared.state);
        while st.in_flight > 0 {
            st = wait_ok(&self.shared.done_cv, st);
        }
        match st.first_error.take() {
            Some(msg) => Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::Other,
                format!("deferred chunk write failed: {msg}"),
            ))),
            None => Ok(()),
        }
    }

    /// Drains, then stops and joins the workers (store shutdown).
    pub(crate) fn shutdown(&self) -> Result<(), StoreError> {
        let result = self.drain();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in lock_ok(&self.workers).drain(..) {
            let _ = w.join();
        }
        result
    }
}

fn write_worker(shared: &WbShared) {
    loop {
        let job = {
            let mut q = lock_ok(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = wait_ok(&shared.cv, q);
            }
        };
        let Some((path, data)) = job else { return };
        let result = {
            let _sp = telemetry::span("store", "store.chunk_write");
            std::fs::write(&path, &data)
        };
        let mut st = lock_ok(&shared.state);
        if let Err(e) = result {
            eventlog::error(
                "write_behind.error",
                &[
                    ("path", eventlog::Value::Str(&path.display().to_string())),
                    ("error", eventlog::Value::Str(&e.to_string())),
                ],
            );
            st.first_error.get_or_insert_with(|| format!("{}: {e}", path.display()));
        }
        st.in_flight -= 1;
        drop(st);
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SharedIoStats;
    use nautilus_tensor::init::{randn, seeded_rng};

    fn temp_store(tag: &str, io: SharedIoStats) -> TensorStore {
        let p = std::env::temp_dir().join(format!(
            "nautilus-prefetch-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TensorStore::open(p, io).unwrap()
    }

    fn populate(store: &mut TensorStore, key: &str, chunks: usize, seed: u64) {
        let mut rng = seeded_rng(seed);
        for _ in 0..chunks {
            store.append(key, &randn([4, 6], 1.0, &mut rng)).unwrap();
        }
    }

    fn run_epochs(
        store: &TensorStore,
        epochs: usize,
    ) -> (Vec<Vec<Tensor>>, Vec<Tensor>, bool) {
        let train = vec!["a:train".to_string(), "b:train".to_string()];
        let valid = vec!["a:valid".to_string()];
        let mut pf = EpochPrefetcher::new(store, &train, &valid, epochs).unwrap();
        let was_async = pf.is_async();
        let per_epoch: Vec<Vec<Tensor>> =
            (0..epochs).map(|e| pf.epoch(e).unwrap()).collect();
        let v = pf.valid().unwrap();
        (per_epoch, v, was_async)
    }

    #[test]
    fn prefetched_reads_match_synchronous_reads_bit_for_bit() {
        let make = |tag: &str| {
            let io = SharedIoStats::new();
            let mut s = temp_store(tag, io.clone());
            populate(&mut s, "a:train", 3, 1);
            populate(&mut s, "b:train", 2, 2);
            populate(&mut s, "a:valid", 1, 3);
            (s, io)
        };
        let (pre_store, pre_io) = make("async");
        let (mut sync_store, sync_io) = make("sync");
        sync_store.set_io_policy(IoPolicy { prefetch: false, ..IoPolicy::default() });

        pre_io.reset();
        sync_io.reset();
        let (pre_epochs, pre_valid, was_async) = run_epochs(&pre_store, 3);
        let (sync_epochs, sync_valid, was_sync) = run_epochs(&sync_store, 3);
        assert!(was_async, "default policy must prefetch");
        assert!(!was_sync, "disabled policy must fall back to sync reads");
        assert_eq!(pre_epochs, sync_epochs, "epoch tensors must be bit-identical");
        assert_eq!(pre_valid, sync_valid);
        assert_eq!(
            pre_io.snapshot(),
            sync_io.snapshot(),
            "per-chunk accounting must be identical, hits and misses alike"
        );
        let root_a = pre_store.root().to_path_buf();
        let root_b = sync_store.root().to_path_buf();
        drop((pre_store, sync_store));
        let _ = std::fs::remove_dir_all(root_a);
        let _ = std::fs::remove_dir_all(root_b);
    }

    #[test]
    fn missing_key_fails_fast() {
        let s = temp_store("missing", SharedIoStats::new());
        let err =
            EpochPrefetcher::new(&s, &["nope:train".to_string()], &[], 2).unwrap_err();
        assert!(matches!(err, StoreError::MissingKey(_)));
    }

    #[test]
    fn zero_epochs_still_prefetches_validation() {
        let io = SharedIoStats::new();
        let mut s = temp_store("zeroep", io.clone());
        populate(&mut s, "a:valid", 2, 4);
        let (v, _) = s.read_all("a:valid").unwrap();
        io.reset();
        let mut pf =
            EpochPrefetcher::new(&s, &[], &["a:valid".to_string()], 0).unwrap();
        assert!(pf.is_async());
        let got = pf.valid().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], v);
        let root = s.root().to_path_buf();
        drop(pf);
        drop(s);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn delayed_io_blocks_until_data_is_ready() {
        let io = SharedIoStats::new();
        let mut s = temp_store("delay", io.clone());
        populate(&mut s, "a:train", 2, 7);
        let (sync_t, _) = s.read_all("a:train").unwrap();
        io.reset();
        s.set_io_policy(IoPolicy { read_delay_ms: 25, ..IoPolicy::default() });
        let mut pf =
            EpochPrefetcher::new(&s, &["a:train".to_string()], &[], 1).unwrap();
        assert!(pf.is_async());
        let t0 = std::time::Instant::now();
        let got = pf.epoch(0).unwrap();
        // The consumer must have blocked for the injected delay rather
        // than returning stale/partial data.
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(got[0], sync_t, "slow I/O still yields the exact bytes");
        let root = s.root().to_path_buf();
        drop(pf);
        drop(s);
        let _ = std::fs::remove_dir_all(root);
    }
}
