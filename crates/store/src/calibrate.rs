//! Measured I/O calibration for the planner's cost constants.
//!
//! MAT-OPT's `cload` term converts bytes into "missed compute" using a
//! disk-throughput constant that defaults to the paper's static 500 MB/s.
//! Real machines differ by an order of magnitude in either direction, so a
//! sub-second micro-probe measures what *this* machine actually delivers:
//! sequential write, sequential read, and strided ("random") read
//! bandwidth over a scratch file in the store's own directory.
//!
//! Reads go through the OS page cache on purpose — that is exactly what
//! training epoch scans experience (the paper relies on the cache for
//! repeated reads, §3). The probe therefore measures the *effective*
//! bandwidth of a recently written file, and
//! [`IoCalibration::effective_read_bandwidth`] re-blends it with the
//! observed page-cache hit curve (from [`crate::pagecache::CacheStats`])
//! as the session learns how much of its working set stays resident.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// Block size for probe transfers.
const BLOCK: usize = 256 << 10;

/// Measured I/O bandwidths, bytes/second.
#[derive(Debug, Clone, Copy)]
pub struct IoCalibration {
    /// Sequential read bandwidth of a freshly written file.
    pub seq_read_bytes_per_sec: f64,
    /// Strided (seek-per-block) read bandwidth.
    pub rand_read_bytes_per_sec: f64,
    /// Buffered sequential write bandwidth.
    pub write_bytes_per_sec: f64,
    /// Bytes transferred per measurement.
    pub probe_bytes: u64,
}

impl IoCalibration {
    /// Effective read bandwidth given the observed page-cache hit
    /// fraction `h`: the harmonic blend `1 / (h/dram + (1-h)/disk)` —
    /// h of the bytes stream at DRAM speed, the rest at the measured
    /// sequential read speed.
    pub fn effective_read_bandwidth(&self, hit_fraction: f64, dram_bytes_per_sec: f64) -> f64 {
        let h = if hit_fraction.is_finite() { hit_fraction.clamp(0.0, 1.0) } else { 0.0 };
        let disk = self.seq_read_bytes_per_sec.max(1.0);
        // The cache cannot be slower than re-reading the file.
        let dram = dram_bytes_per_sec.max(disk);
        1.0 / (h / dram + (1.0 - h) / disk)
    }
}

fn bandwidth(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs.max(1e-9)
}

/// Measures this machine's I/O bandwidths with a scratch file under
/// `dir` (created if needed, removed afterwards). `probe_bytes` is
/// rounded up to at least four blocks (1 MiB).
pub fn probe(dir: &Path, probe_bytes: u64) -> std::io::Result<IoCalibration> {
    let _sp = nautilus_util::telemetry::span("store", "store.calibrate");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(".io-probe.bin");
    let blocks = (probe_bytes as usize).div_ceil(BLOCK).max(4);
    let total = (blocks * BLOCK) as u64;
    let block: Vec<u8> = (0..BLOCK).map(|i| (i % 251) as u8).collect();

    let result = (|| {
        let t0 = Instant::now();
        {
            let mut f = std::fs::File::create(&path)?;
            for _ in 0..blocks {
                f.write_all(&block)?;
            }
            f.flush()?;
        }
        let write_secs = t0.elapsed().as_secs_f64();

        let mut buf = vec![0u8; BLOCK];
        let t0 = Instant::now();
        {
            let mut f = std::fs::File::open(&path)?;
            for _ in 0..blocks {
                f.read_exact(&mut buf)?;
            }
        }
        let seq_secs = t0.elapsed().as_secs_f64();

        // Strided pass: visit every block once in a scrambled order via a
        // full-cycle affine walk (stride coprime with the block count).
        let stride = (blocks / 2) | 1;
        let stride = if gcd(stride, blocks) == 1 { stride } else { 1 };
        let t0 = Instant::now();
        {
            let mut f = std::fs::File::open(&path)?;
            let mut idx = 0usize;
            for _ in 0..blocks {
                f.seek(SeekFrom::Start((idx * BLOCK) as u64))?;
                f.read_exact(&mut buf)?;
                idx = (idx + stride) % blocks;
            }
        }
        let rand_secs = t0.elapsed().as_secs_f64();

        Ok(IoCalibration {
            seq_read_bytes_per_sec: bandwidth(total, seq_secs),
            rand_read_bytes_per_sec: bandwidth(total, rand_secs),
            write_bytes_per_sec: bandwidth(total, write_secs),
            probe_bytes: total,
        })
    })();
    let _ = std::fs::remove_file(&path);
    result
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_measures_positive_bandwidths_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!(
            "nautilus-calibrate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let cal = probe(&dir, 512 << 10).unwrap();
        assert!(cal.seq_read_bytes_per_sec > 0.0 && cal.seq_read_bytes_per_sec.is_finite());
        assert!(cal.rand_read_bytes_per_sec > 0.0 && cal.rand_read_bytes_per_sec.is_finite());
        assert!(cal.write_bytes_per_sec > 0.0 && cal.write_bytes_per_sec.is_finite());
        assert_eq!(cal.probe_bytes, 4 * (256 << 10)); // rounded up to 4 blocks
        assert!(!dir.join(".io-probe.bin").exists(), "probe file removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn effective_bandwidth_blends_between_disk_and_dram() {
        let cal = IoCalibration {
            seq_read_bytes_per_sec: 1e9,
            rand_read_bytes_per_sec: 5e8,
            write_bytes_per_sec: 8e8,
            probe_bytes: 1 << 20,
        };
        let dram = 8e9;
        let all_miss = cal.effective_read_bandwidth(0.0, dram);
        let half = cal.effective_read_bandwidth(0.5, dram);
        let all_hit = cal.effective_read_bandwidth(1.0, dram);
        assert!((all_miss - 1e9).abs() < 1.0);
        assert!((all_hit - 8e9).abs() < 1.0);
        assert!(all_miss < half && half < all_hit, "monotonic in the hit fraction");
        // Out-of-range inputs clamp instead of exploding.
        assert!(cal.effective_read_bandwidth(f64::NAN, dram).is_finite());
        assert!(cal.effective_read_bandwidth(7.0, dram).is_finite());
    }

    #[test]
    fn dram_floor_prevents_cache_slower_than_disk() {
        let cal = IoCalibration {
            seq_read_bytes_per_sec: 4e9,
            rand_read_bytes_per_sec: 4e9,
            write_bytes_per_sec: 4e9,
            probe_bytes: 1 << 20,
        };
        // Configured DRAM below measured disk: hits must not *reduce* the
        // effective bandwidth.
        let b = cal.effective_read_bandwidth(0.9, 1e9);
        assert!(b >= 4e9 - 1.0);
    }
}
