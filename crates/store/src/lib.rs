#![warn(missing_docs)]

//! Storage substrate: chunked on-disk tensor stores with IO accounting and a
//! page-cache model.
//!
//! The paper's Materializer writes intermediate layer outputs to files and
//! leans on the OS page cache for repeated epoch reads (§3). This crate
//! provides:
//!
//! * [`io`] — shared byte/operation counters ([`io::IoStats`]) threaded
//!   through every store, the source of the Fig 11 disk-traffic numbers.
//! * [`pagecache`] — an LRU page-cache *cost model* used by the simulated
//!   backend: first reads charge disk throughput, cached re-reads charge
//!   DRAM throughput. The real backend reads actual files and lets the real
//!   OS cache do its thing.
//! * [`tensor_store`] — an append-only, chunked store of per-record tensors
//!   keyed by layer, supporting incremental materialization (one chunk per
//!   labeling cycle, §4.2.3) and full scans in record order.
//! * [`budget`] — disk budget bookkeeping for `Bdisk` enforcement.

pub mod budget;
pub mod io;
pub mod pagecache;
pub mod tensor_store;

pub use budget::DiskBudget;
pub use io::{IoStats, SharedIoStats};
pub use pagecache::PageCacheModel;
pub use tensor_store::{StoreError, TensorStore};
