#![warn(missing_docs)]

//! Storage substrate: chunked on-disk tensor stores with IO accounting and a
//! page-cache model.
//!
//! The paper's Materializer writes intermediate layer outputs to files and
//! leans on the OS page cache for repeated epoch reads (§3). This crate
//! provides:
//!
//! * [`io`] — shared byte/operation counters ([`io::IoStats`]) threaded
//!   through every store, the source of the Fig 11 disk-traffic numbers.
//! * [`pagecache`] — an LRU page-cache *cost model* used by the simulated
//!   backend: first reads charge disk throughput, cached re-reads charge
//!   DRAM throughput. The real backend reads actual files and lets the real
//!   OS cache do its thing.
//! * [`tensor_store`] — an append-only, chunked store of per-record tensors
//!   keyed by layer, supporting incremental materialization (one chunk per
//!   labeling cycle, §4.2.3) and full scans in record order.
//! * [`budget`] — disk budget bookkeeping for `Bdisk` enforcement.
//! * [`prefetch`] — epoch-aware asynchronous readahead (decode chunk N+1
//!   while the trainer consumes chunk N) and write-behind for
//!   materialization output, with all accounting kept on the consumer
//!   thread so prefetched runs stay bit-identical to synchronous ones.
//! * [`calibrate`] — a startup micro-probe measuring the machine's actual
//!   I/O bandwidths, blended with the observed page-cache hit curve to
//!   replace the planner's static disk constant.

pub mod budget;
pub mod calibrate;
pub mod io;
pub mod pagecache;
pub mod prefetch;
pub mod tensor_store;

pub use budget::DiskBudget;
pub use calibrate::IoCalibration;
pub use io::{IoStats, SharedIoStats};
pub use pagecache::{CacheStats, PageCacheModel};
pub use prefetch::{EpochPrefetcher, IoPolicy};
pub use tensor_store::{ChunkPlan, ChunkRef, StoreError, TensorStore};
