//! LRU page-cache cost model for the simulated backend.
//!
//! The paper relies on the OS disk cache to absorb repeated epoch reads of
//! materialized features ("if there is excess DRAM available, we rely on the
//! OS disk cache", §3). The simulated backend reproduces that behavior with
//! an explicit model: cached objects are tracked by key with LRU eviction
//! under a capacity; a read either *hits* (served at DRAM bandwidth) or
//! *misses* (served at disk bandwidth and then admitted). Writes pass
//! through to disk and admit their pages.
//!
//! Objects larger than the cache are never admitted (scan-resistant), which
//! is what makes MAT-ALL's giant concatenated features lose to selective
//! materialization in Fig 6 — exactly the paper's observed effect.

use std::collections::HashMap;

/// An LRU page-cache model over named objects.
#[derive(Debug)]
pub struct PageCacheModel {
    capacity: u64,
    used: u64,
    clock: u64,
    /// key -> (bytes, last-touch tick)
    entries: HashMap<String, (u64, u64)>,
    stats: CacheStats,
}

/// Cumulative hit/miss byte totals over the model's lifetime. Unlike the
/// per-read [`ReadOutcome`], these survive [`PageCacheModel::resize`] —
/// they are the observed hit curve the I/O calibration blends into an
/// effective read bandwidth for the planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total bytes served from cache since the model was created.
    pub hit_bytes: u64,
    /// Total bytes that had to come from disk since the model was created.
    pub miss_bytes: u64,
}

impl CacheStats {
    /// Fraction of read bytes served from cache (0 when nothing was read).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }
}

/// Outcome of a modeled read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes that had to come from disk.
    pub miss_bytes: u64,
}

impl PageCacheModel {
    /// A cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        PageCacheModel {
            capacity,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Cumulative hit/miss byte totals.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Changes the capacity *in place*: warm entries and the cumulative
    /// hit/miss accounting survive. Shrinking evicts coldest-first until
    /// the surviving entries fit.
    pub fn resize(&mut self, capacity: u64) {
        self.capacity = capacity;
        self.evict_for(0);
    }

    fn touch(&mut self, key: &str) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(key) {
            e.1 = self.clock;
        }
    }

    fn evict_for(&mut self, needed: u64) {
        while self.used + needed > self.capacity && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let (bytes, _) = self.entries.remove(&victim).expect("present");
            self.used -= bytes;
        }
    }

    fn admit(&mut self, key: &str, bytes: u64) {
        if bytes > self.capacity {
            return; // scan-resistant: never admit objects larger than DRAM
        }
        if let Some((old, _)) = self.entries.get(key).copied() {
            self.used -= old;
            self.entries.remove(key);
        }
        self.evict_for(bytes);
        self.clock += 1;
        self.entries.insert(key.to_string(), (bytes, self.clock));
        self.used += bytes;
    }

    /// Models reading `bytes` of object `key`.
    pub fn read(&mut self, key: &str, bytes: u64) -> ReadOutcome {
        let outcome = match self.entries.get(key).copied() {
            Some((cached, _)) if cached >= bytes => {
                self.touch(key);
                ReadOutcome { hit_bytes: bytes, miss_bytes: 0 }
            }
            Some((cached, _)) => {
                // Object grew since it was cached: the delta misses.
                self.touch(key);
                self.admit(key, bytes);
                ReadOutcome { hit_bytes: cached, miss_bytes: bytes - cached }
            }
            None => {
                self.admit(key, bytes);
                ReadOutcome { hit_bytes: 0, miss_bytes: bytes }
            }
        };
        self.stats.hit_bytes += outcome.hit_bytes;
        self.stats.miss_bytes += outcome.miss_bytes;
        outcome
    }

    /// Models writing `bytes` of object `key` (write-through + admit).
    pub fn write(&mut self, key: &str, bytes: u64) {
        self.admit(key, bytes);
    }

    /// Drops an object (e.g. a deleted materialization).
    pub fn invalidate(&mut self, key: &str) {
        if let Some((bytes, _)) = self.entries.remove(key) {
            self.used -= bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_misses_second_hits() {
        let mut c = PageCacheModel::new(1000);
        let r1 = c.read("a", 400);
        assert_eq!(r1, ReadOutcome { hit_bytes: 0, miss_bytes: 400 });
        let r2 = c.read("a", 400);
        assert_eq!(r2, ReadOutcome { hit_bytes: 400, miss_bytes: 0 });
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = PageCacheModel::new(1000);
        c.read("a", 400);
        c.read("b", 400);
        c.read("a", 400); // a is now warmer than b
        c.read("c", 400); // must evict b
        assert_eq!(c.read("a", 400).hit_bytes, 400);
        assert_eq!(c.read("b", 400).miss_bytes, 400);
    }

    #[test]
    fn oversized_objects_never_admitted() {
        let mut c = PageCacheModel::new(100);
        let r = c.read("huge", 500);
        assert_eq!(r.miss_bytes, 500);
        assert_eq!(c.used(), 0);
        // And it keeps missing.
        assert_eq!(c.read("huge", 500).miss_bytes, 500);
    }

    #[test]
    fn grown_object_misses_only_delta() {
        let mut c = PageCacheModel::new(1000);
        c.write("a", 300);
        let r = c.read("a", 500);
        assert_eq!(r, ReadOutcome { hit_bytes: 300, miss_bytes: 200 });
        assert_eq!(c.read("a", 500).hit_bytes, 500);
    }

    #[test]
    fn resize_preserves_warm_entries_and_stats() {
        let mut c = PageCacheModel::new(1000);
        c.read("a", 300);
        c.read("b", 300);
        c.read("a", 300);
        let before = c.stats();
        assert_eq!(before, CacheStats { hit_bytes: 300, miss_bytes: 600 });
        // Growing keeps everything warm.
        c.resize(2000);
        assert_eq!(c.capacity(), 2000);
        assert_eq!(c.used(), 600);
        assert_eq!(c.read("a", 300).hit_bytes, 300);
        assert_eq!(c.read("b", 300).hit_bytes, 300);
        assert_eq!(c.stats(), CacheStats { hit_bytes: 900, miss_bytes: 600 });
        // Shrinking evicts coldest-first and keeps cumulative accounting.
        c.read("a", 300); // a is now the warmest
        c.resize(400);
        assert_eq!(c.used(), 300);
        assert_eq!(c.read("a", 300).hit_bytes, 300, "warm survivor still hits");
        assert_eq!(c.read("b", 300).miss_bytes, 300, "cold entry was evicted");
        let after = c.stats();
        assert!(after.hit_bytes >= before.hit_bytes && after.miss_bytes >= before.miss_bytes);
    }

    #[test]
    fn resize_to_zero_evicts_everything() {
        let mut c = PageCacheModel::new(1000);
        c.read("a", 400);
        c.resize(0);
        assert_eq!(c.used(), 0);
        assert_eq!(c.read("a", 400).miss_bytes, 400);
    }

    #[test]
    fn hit_fraction_tracks_reads() {
        let mut c = PageCacheModel::new(1000);
        assert_eq!(c.stats().hit_fraction(), 0.0);
        c.read("a", 500);
        assert_eq!(c.stats().hit_fraction(), 0.0);
        c.read("a", 500);
        assert!((c.stats().hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn writes_admit_and_invalidate_removes() {
        let mut c = PageCacheModel::new(1000);
        c.write("a", 250);
        assert_eq!(c.used(), 250);
        assert_eq!(c.read("a", 250).hit_bytes, 250);
        c.invalidate("a");
        assert_eq!(c.used(), 0);
        assert_eq!(c.read("a", 250).miss_bytes, 250);
    }
}
