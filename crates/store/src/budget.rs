//! Disk budget bookkeeping for `Bdisk` enforcement.

/// Tracks bytes allocated against a fixed disk budget.
///
/// The planner *plans* within the budget (Eq 10 (e)); this tracker is the
/// runtime belt-and-suspenders that materialization never exceeds it.
#[derive(Debug, Clone)]
pub struct DiskBudget {
    limit: u64,
    used: u64,
}

impl DiskBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: u64) -> Self {
        DiskBudget { limit, used: 0 }
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// Attempts to charge `bytes`; fails without charging when over budget.
    pub fn charge(&mut self, bytes: u64) -> Result<(), BudgetExceeded> {
        if self.used + bytes > self.limit {
            Err(BudgetExceeded { requested: bytes, remaining: self.remaining() })
        } else {
            self.used += bytes;
            Ok(())
        }
    }

    /// Releases previously charged bytes (e.g. a dropped materialization).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }
}

/// Error: a charge would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes that remain available.
    pub remaining: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disk budget exceeded: requested {} bytes, {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let mut b = DiskBudget::new(100);
        b.charge(60).unwrap();
        assert_eq!(b.remaining(), 40);
        let err = b.charge(50).unwrap_err();
        assert_eq!(err.remaining, 40);
        assert_eq!(b.used(), 60); // failed charge does not consume
        b.release(30);
        b.charge(50).unwrap();
        assert_eq!(b.used(), 80);
    }

    #[test]
    fn release_saturates() {
        let mut b = DiskBudget::new(10);
        b.release(100);
        assert_eq!(b.used(), 0);
    }
}
