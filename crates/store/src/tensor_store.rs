//! Append-only chunked tensor store.
//!
//! One store instance manages a directory; each *key* (e.g. a materialized
//! layer, or the raw labeled dataset) holds a sequence of chunks, one per
//! append — which in Nautilus means one per labeling cycle (§4.2.3,
//! incremental feature materialization). Records are per-record tensors of a
//! fixed shape; appends take batched tensors `[n, ...record]` and scans
//! return them the same way.

use crate::io::SharedIoStats;
use crate::pagecache::{CacheStats, PageCacheModel};
use crate::prefetch::{IoPolicy, WriteBehind};
use nautilus_tensor::{ser, Shape, Tensor};
use nautilus_util::{json, json_struct, pool, telemetry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Default page-cache model capacity for a freshly opened store. Sessions
/// override it with the configured `HardwareProfile::page_cache_bytes`.
pub const DEFAULT_PAGE_CACHE_BYTES: u64 = 1 << 30;

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Manifest is unreadable.
    BadManifest(String),
    /// Chunk payload is corrupt.
    BadChunk(String),
    /// Append shape does not match the key's record shape.
    ShapeMismatch {
        /// The key being appended to.
        key: String,
        /// Shape already registered for the key.
        expected: Vec<usize>,
        /// Shape of the incoming records.
        actual: Vec<usize>,
    },
    /// The key does not exist.
    MissingKey(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            StoreError::BadChunk(m) => write!(f, "bad chunk: {m}"),
            StoreError::ShapeMismatch { key, expected, actual } => {
                write!(f, "append to '{key}': record shape {actual:?} != {expected:?}")
            }
            StoreError::MissingKey(k) => write!(f, "missing key '{k}'"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[derive(Debug, Clone)]
struct ChunkMeta {
    file: String,
    records: usize,
    bytes: u64,
}

json_struct!(ChunkMeta { file, records, bytes });

#[derive(Debug, Clone)]
struct KeyMeta {
    dir: String,
    record_shape: Vec<usize>,
    records: usize,
    bytes: u64,
    chunks: Vec<ChunkMeta>,
}

json_struct!(KeyMeta { dir, record_shape, records, bytes, chunks });

#[derive(Debug, Default)]
struct Manifest {
    keys: BTreeMap<String, KeyMeta>,
}

json_struct!(Manifest { keys });

/// An on-disk store of per-record tensors grouped by key.
///
/// Reads and writes go through an [`PageCacheModel`] keyed by chunk file —
/// a stand-in for the OS page cache the paper relies on ("if there is
/// excess DRAM available, we rely on the OS disk cache", §3) — so the
/// shared [`SharedIoStats`] split disk vs cached bytes on the *real*
/// backend the same way the simulated backend's charges do. The model
/// only affects accounting, never data: every read still comes from the
/// filesystem (where the actual OS cache does the work being modeled).
#[derive(Debug)]
pub struct TensorStore {
    root: PathBuf,
    manifest: Manifest,
    io: SharedIoStats,
    cache: Mutex<PageCacheModel>,
    policy: IoPolicy,
    wb: WriteBehind,
}

/// One chunk of a key, as the prefetcher sees it.
#[derive(Debug, Clone)]
pub struct ChunkRef {
    /// Absolute path of the chunk file.
    pub path: PathBuf,
    /// The chunk's key in the page-cache model.
    pub cache_key: String,
    /// Records in the chunk.
    pub records: usize,
    /// Encoded size of the chunk, bytes.
    pub bytes: u64,
}

/// The on-disk chunk layout of one key, in append order.
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    /// Per-record tensor shape.
    pub record_shape: Vec<usize>,
    /// Chunks in append order.
    pub chunks: Vec<ChunkRef>,
}

fn dir_for(key: &str) -> String {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    let safe: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .take(40)
        .collect();
    format!("{safe}-{:016x}", h.finish())
}

impl TensorStore {
    /// Opens (or creates) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>, io: SharedIoStats) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let manifest_path = root.join("manifest.json");
        let manifest = if manifest_path.exists() {
            let data = std::fs::read(&manifest_path)?;
            json::from_slice(&data).map_err(|e| StoreError::BadManifest(e.to_string()))?
        } else {
            Manifest::default()
        };
        Ok(TensorStore {
            root,
            manifest,
            io,
            cache: Mutex::new(PageCacheModel::new(DEFAULT_PAGE_CACHE_BYTES)),
            policy: IoPolicy::default(),
            wb: WriteBehind::new(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Locks the page-cache model, riding through poisoning: the model is
    /// pure counter state (capacity, LRU ticks, hit/miss totals), so it is
    /// always safe to keep using after a panicked reader — one crashing
    /// thread must not turn every later read/append into a panic.
    fn cache_lock(&self) -> MutexGuard<'_, PageCacheModel> {
        self.cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resizes the page-cache model *in place* (e.g. to the session's
    /// configured `page_cache_bytes`): warm chunks stay warm and the
    /// cumulative hit/miss accounting — telemetry and the I/O calibration
    /// curve — is preserved. Shrinking evicts coldest-first.
    pub fn set_page_cache_bytes(&mut self, bytes: u64) {
        self.cache_lock().resize(bytes);
    }

    /// Cumulative page-cache hit/miss bytes (the observed hit curve the
    /// I/O calibration feeds back into the planner).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_lock().stats()
    }

    /// Replaces the store's I/O scheduling policy.
    pub fn set_io_policy(&mut self, policy: IoPolicy) {
        self.policy = policy;
    }

    /// The store's current I/O scheduling policy.
    pub fn io_policy(&self) -> IoPolicy {
        self.policy
    }

    /// The chunk layout of `key` (for chunk-granular readers such as the
    /// prefetcher). Barriers on pending write-behind chunks first, so the
    /// returned paths are safe to read.
    pub fn chunk_plan(&self, key: &str) -> Result<ChunkPlan, StoreError> {
        self.wb.drain()?;
        let meta = self
            .manifest
            .keys
            .get(key)
            .ok_or_else(|| StoreError::MissingKey(key.to_string()))?;
        let dir = self.root.join(&meta.dir);
        Ok(ChunkPlan {
            record_shape: meta.record_shape.clone(),
            chunks: meta
                .chunks
                .iter()
                .map(|c| ChunkRef {
                    path: dir.join(&c.file),
                    cache_key: format!("{}/{}", meta.dir, c.file),
                    records: c.records,
                    bytes: c.bytes,
                })
                .collect(),
        })
    }

    /// Blocks until every deferred (write-behind) chunk write has landed,
    /// surfacing the first deferred write error if any occurred.
    pub fn flush_writes(&self) -> Result<(), StoreError> {
        self.wb.drain()
    }

    /// Publishes the cache model's occupancy as the `pagecache.used_bytes`
    /// gauge; callers pass the still-held lock to avoid a second acquire.
    fn publish_cache_gauge(cache: &PageCacheModel) {
        if telemetry::metrics_enabled() {
            telemetry::PAGECACHE_USED_BYTES.set(cache.used() as i64);
        }
    }

    /// Splits a finished chunk read into cached vs disk bytes through the
    /// page-cache model and records both into the shared counters.
    pub(crate) fn account_chunk_read(&self, chunk_key: &str, bytes: u64) {
        let outcome = {
            let mut cache = self.cache_lock();
            let o = cache.read(chunk_key, bytes);
            Self::publish_cache_gauge(&cache);
            o
        };
        if outcome.miss_bytes > 0 {
            telemetry::PAGECACHE_MISSES.add(1);
            self.io.record_disk_read(outcome.miss_bytes);
        }
        if outcome.hit_bytes > 0 {
            telemetry::PAGECACHE_HITS.add(1);
            self.io.record_cached_read(outcome.hit_bytes);
        }
    }

    fn persist_manifest(&self) -> Result<(), StoreError> {
        let data = json::to_string_pretty(&self.manifest);
        std::fs::write(self.root.join("manifest.json"), data)?;
        Ok(())
    }

    /// Appends a batch of records (`[n, ...record]`) under `key`.
    ///
    /// Returns the number of bytes written. The first append fixes the key's
    /// record shape; later appends must match.
    pub fn append(&mut self, key: &str, batch: &Tensor) -> Result<u64, StoreError> {
        let _sp = telemetry::span("store", "store.append");
        let record_shape = batch.shape().without_batch();
        let entry = self.manifest.keys.entry(key.to_string()).or_insert_with(|| KeyMeta {
            dir: dir_for(key),
            record_shape: record_shape.0.clone(),
            records: 0,
            bytes: 0,
            chunks: Vec::new(),
        });
        if entry.record_shape != record_shape.0 {
            return Err(StoreError::ShapeMismatch {
                key: key.to_string(),
                expected: entry.record_shape.clone(),
                actual: record_shape.0,
            });
        }
        let dir = self.root.join(&entry.dir);
        std::fs::create_dir_all(&dir)?;
        let file = format!("chunk-{:06}.bin", entry.chunks.len());
        let bytes = {
            let _sp = telemetry::span("store", "store.chunk_encode");
            ser::encode(batch)
        };
        let n = bytes.len() as u64;
        {
            let _sp = telemetry::span("store", "store.chunk_write");
            std::fs::write(dir.join(&file), &bytes)?;
        }
        let chunk_key = format!("{}/{file}", entry.dir);
        entry.chunks.push(ChunkMeta { file, records: batch.shape().dim(0), bytes: n });
        entry.records += batch.shape().dim(0);
        entry.bytes += n;
        {
            let mut cache = self.cache_lock();
            cache.write(&chunk_key, n);
            Self::publish_cache_gauge(&cache);
        }
        self.io.record_write(n);
        self.persist_manifest()?;
        Ok(n)
    }

    /// Appends several batches at once, encoding and writing the chunks on
    /// the thread pool and persisting the manifest a single time.
    ///
    /// Returns the bytes written per item, in input order. Equivalent to
    /// calling [`TensorStore::append`] for each item in order (including
    /// repeated keys), just faster: the materializer uses this to flush all
    /// of a cycle's feature outputs in one fan-out.
    pub fn append_many(&mut self, items: &[(String, Tensor)]) -> Result<Vec<u64>, StoreError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let _sp = telemetry::span("store", "store.append_many");
        // Phase 1 (sequential): validate shapes, create key entries and
        // directories, and assign each item its chunk file path.
        let mut pending: HashMap<&str, usize> = HashMap::new();
        let mut paths = Vec::with_capacity(items.len());
        for (key, batch) in items {
            let record_shape = batch.shape().without_batch();
            let entry = self.manifest.keys.entry(key.clone()).or_insert_with(|| KeyMeta {
                dir: dir_for(key),
                record_shape: record_shape.0.clone(),
                records: 0,
                bytes: 0,
                chunks: Vec::new(),
            });
            if entry.record_shape != record_shape.0 {
                return Err(StoreError::ShapeMismatch {
                    key: key.clone(),
                    expected: entry.record_shape.clone(),
                    actual: record_shape.0,
                });
            }
            let seen = pending.entry(key.as_str()).or_insert(0);
            let file = format!("chunk-{:06}.bin", entry.chunks.len() + *seen);
            *seen += 1;
            let dir = self.root.join(&entry.dir);
            std::fs::create_dir_all(&dir)?;
            paths.push((dir.join(&file), file));
        }
        // Phase 2 (parallel): encode each chunk; write it inline, or — in
        // write-behind mode — hand the encoded bytes back for deferral so
        // only the `fs::write` leaves the critical path. Byte counts (and
        // therefore manifest/budget/telemetry accounting) are known
        // synchronously either way.
        let deferred = self.policy.write_behind;
        let written: Vec<Result<(u64, Option<Vec<u8>>), StoreError>> = pool::join_all(
            items
                .iter()
                .zip(paths.iter())
                .map(|((_, batch), (path, _))| {
                    Box::new(move || {
                        let bytes = {
                            let _sp = telemetry::span("store", "store.chunk_encode");
                            ser::encode(batch)
                        };
                        let n = bytes.len() as u64;
                        if deferred {
                            return Ok((n, Some(bytes)));
                        }
                        let _sp = telemetry::span("store", "store.chunk_write");
                        std::fs::write(path, &bytes)?;
                        Ok((n, None))
                    })
                        as Box<dyn FnOnce() -> Result<(u64, Option<Vec<u8>>), StoreError> + Send + '_>
                })
                .collect(),
        );
        // Phase 3 (sequential): fold the chunk metadata into the manifest
        // in input order and persist it once. Deferred chunk payloads are
        // queued to the write-behind threads here; readers barrier on them
        // via `chunk_plan`/`read_all`/`read_records`, and deferred write
        // errors surface at that barrier (or at `flush_writes`). Note the
        // manifest can momentarily name chunks whose data is still in
        // flight — a crash in that window loses the tail of the append,
        // which is the documented write-behind trade-off.
        let mut sizes = Vec::with_capacity(items.len());
        for (((key, batch), (path, file)), result) in
            items.iter().zip(paths.into_iter()).zip(written)
        {
            let (n, payload) = result?;
            let entry = self.manifest.keys.get_mut(key).expect("entry created in phase 1");
            let chunk_key = format!("{}/{file}", entry.dir);
            entry.chunks.push(ChunkMeta { file, records: batch.shape().dim(0), bytes: n });
            entry.records += batch.shape().dim(0);
            entry.bytes += n;
            {
                let mut cache = self.cache_lock();
                cache.write(&chunk_key, n);
                Self::publish_cache_gauge(&cache);
            }
            self.io.record_write(n);
            if let Some(data) = payload {
                self.wb.enqueue(path, data, self.policy.io_threads);
            }
            sizes.push(n);
        }
        self.persist_manifest()?;
        Ok(sizes)
    }

    /// Reads every record under `key` as one batched tensor, in append
    /// order. Returns the tensor and the number of bytes read.
    pub fn read_all(&self, key: &str) -> Result<(Tensor, u64), StoreError> {
        let _sp = telemetry::span("store", "store.read_all");
        self.wb.drain()?; // read barrier on deferred chunk writes
        let meta = self
            .manifest
            .keys
            .get(key)
            .ok_or_else(|| StoreError::MissingKey(key.to_string()))?;
        let dir = self.root.join(&meta.dir);
        // Chunk read + decode fans out over the pool; join_all returns
        // chunks in append order, so the concatenation is unchanged.
        let loaded: Vec<Result<(Tensor, u64), StoreError>> = pool::join_all(
            meta.chunks
                .iter()
                .map(|c| {
                    let path = dir.join(&c.file);
                    Box::new(move || {
                        let data = {
                            let _sp = telemetry::span("store", "store.chunk_read");
                            std::fs::read(path)?
                        };
                        let _sp = telemetry::span("store", "store.chunk_decode");
                        let t = ser::decode(&data)
                            .map_err(|e| StoreError::BadChunk(e.to_string()))?;
                        Ok((t, data.len() as u64))
                    })
                        as Box<dyn FnOnce() -> Result<(Tensor, u64), StoreError> + Send + '_>
                })
                .collect(),
        );
        let mut parts = Vec::with_capacity(meta.chunks.len());
        let mut total = 0u64;
        for (c, r) in meta.chunks.iter().zip(loaded) {
            let (t, n) = r?;
            // Account in append order (deterministic LRU traffic).
            self.account_chunk_read(&format!("{}/{}", meta.dir, c.file), n);
            total += n;
            parts.push(t);
        }
        if parts.is_empty() {
            let shape = Shape::new(meta.record_shape.clone()).with_batch(0);
            return Ok((Tensor::zeros(shape), 0));
        }
        let out = Tensor::concat_outer(&parts).map_err(|e| StoreError::BadChunk(e.to_string()))?;
        Ok((out, total))
    }

    /// Reads records `[start, end)` under `key`, touching only the chunks
    /// that overlap the range. Returns the batched tensor and bytes read.
    ///
    /// Epoch scans use [`TensorStore::read_all`]; this ranged variant serves
    /// callers that stream mini-batches larger than memory.
    pub fn read_records(
        &self,
        key: &str,
        start: usize,
        end: usize,
    ) -> Result<(Tensor, u64), StoreError> {
        let _sp = telemetry::span("store", "store.read_records");
        self.wb.drain()?; // read barrier on deferred chunk writes
        let meta = self
            .manifest
            .keys
            .get(key)
            .ok_or_else(|| StoreError::MissingKey(key.to_string()))?;
        let end = end.min(meta.records);
        let start = start.min(end);
        let record = Shape::new(meta.record_shape.clone());
        if start == end {
            return Ok((Tensor::zeros(record.with_batch(0)), 0));
        }
        let dir = self.root.join(&meta.dir);
        // Collect the overlapping chunks, then read + decode + slice them
        // on the pool; results come back in chunk order.
        let mut offset = 0usize;
        let mut wanted: Vec<(PathBuf, usize, usize)> = Vec::new();
        let mut chunk_keys: Vec<String> = Vec::new();
        for c in &meta.chunks {
            let chunk_range = offset..offset + c.records;
            offset += c.records;
            if chunk_range.end <= start || chunk_range.start >= end {
                continue;
            }
            let lo = start.saturating_sub(chunk_range.start);
            let hi = (end - chunk_range.start).min(c.records);
            wanted.push((dir.join(&c.file), lo, hi));
            chunk_keys.push(format!("{}/{}", meta.dir, c.file));
        }
        let loaded: Vec<Result<(Tensor, u64), StoreError>> = pool::join_all(
            wanted
                .into_iter()
                .map(|(path, lo, hi)| {
                    Box::new(move || {
                        let data = {
                            let _sp = telemetry::span("store", "store.chunk_read");
                            std::fs::read(path)?
                        };
                        let _sp = telemetry::span("store", "store.chunk_decode");
                        let t = ser::decode(&data)
                            .map_err(|e| StoreError::BadChunk(e.to_string()))?;
                        let slices: Vec<Tensor> = (lo..hi).map(|i| t.outer_slice(i)).collect();
                        let part = Tensor::stack(&slices)
                            .map_err(|e| StoreError::BadChunk(e.to_string()))?;
                        Ok((part, data.len() as u64))
                    })
                        as Box<dyn FnOnce() -> Result<(Tensor, u64), StoreError> + Send>
                })
                .collect(),
        );
        let mut parts = Vec::new();
        let mut bytes = 0u64;
        for (chunk_key, r) in chunk_keys.iter().zip(loaded) {
            let (part, n) = r?;
            self.account_chunk_read(chunk_key, n);
            bytes += n;
            parts.push(part);
        }
        let out =
            Tensor::concat_outer(&parts).map_err(|e| StoreError::BadChunk(e.to_string()))?;
        Ok((out, bytes))
    }

    /// True when the key exists (possibly with zero records).
    pub fn contains(&self, key: &str) -> bool {
        self.manifest.keys.contains_key(key)
    }

    /// Number of records stored under `key` (0 when absent).
    pub fn num_records(&self, key: &str) -> usize {
        self.manifest.keys.get(key).map_or(0, |m| m.records)
    }

    /// Bytes stored under `key` (0 when absent).
    pub fn bytes(&self, key: &str) -> u64 {
        self.manifest.keys.get(key).map_or(0, |m| m.bytes)
    }

    /// Record shape of `key`.
    pub fn record_shape(&self, key: &str) -> Option<Shape> {
        self.manifest.keys.get(key).map(|m| Shape::new(m.record_shape.clone()))
    }

    /// All keys in sorted order.
    pub fn keys(&self) -> Vec<String> {
        self.manifest.keys.keys().cloned().collect()
    }

    /// Total bytes across all keys.
    pub fn total_bytes(&self) -> u64 {
        self.manifest.keys.values().map(|m| m.bytes).sum()
    }

    /// Removes a key and its data; returns the bytes freed.
    pub fn delete(&mut self, key: &str) -> Result<u64, StoreError> {
        self.wb.drain()?; // never remove a directory with writes in flight
        let Some(meta) = self.manifest.keys.remove(key) else { return Ok(0) };
        {
            let mut cache = self.cache_lock();
            for c in &meta.chunks {
                cache.invalidate(&format!("{}/{}", meta.dir, c.file));
            }
            Self::publish_cache_gauge(&cache);
        }
        let dir = self.root.join(&meta.dir);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        self.persist_manifest()?;
        Ok(meta.bytes)
    }

    /// Removes every key; returns the bytes freed.
    pub fn clear(&mut self) -> Result<u64, StoreError> {
        let keys = self.keys();
        let mut freed = 0;
        for k in keys {
            freed += self.delete(&k)?;
        }
        Ok(freed)
    }
}

impl Drop for TensorStore {
    fn drop(&mut self) {
        // Land any deferred chunk writes and stop the I/O threads. Errors
        // cannot propagate from drop; callers that care call
        // `flush_writes` first.
        let _ = self.wb.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_tensor::init::{randn, seeded_rng};

    fn temp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "nautilus-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn append_and_scan_round_trip() {
        let io = SharedIoStats::new();
        let root = temp_root("roundtrip");
        let mut s = TensorStore::open(&root, io.clone()).unwrap();
        let mut rng = seeded_rng(1);
        let b1 = randn([3, 4], 1.0, &mut rng);
        let b2 = randn([2, 4], 1.0, &mut rng);
        s.append("layer0", &b1).unwrap();
        s.append("layer0", &b2).unwrap();
        assert_eq!(s.num_records("layer0"), 5);
        let (all, read) = s.read_all("layer0").unwrap();
        assert_eq!(all.shape().0, vec![5, 4]);
        assert_eq!(&all.data()[..12], b1.data());
        assert_eq!(&all.data()[12..], b2.data());
        assert!(read > 0);
        let st = io.snapshot();
        assert_eq!(st.write_ops, 2);
        // The appends admitted both chunks to the page-cache model, so the
        // scan is fully cache-served.
        assert!(st.total_read_bytes() >= read);
        assert_eq!(st.cached_read_bytes, read);
        assert_eq!(st.disk_read_bytes, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cold_reads_miss_then_hit_on_both_backends_counters() {
        let root = temp_root("pagecache");
        {
            let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
            s.append("k", &Tensor::ones([4, 8])).unwrap();
        }
        // Reopen: the page-cache model starts cold, like a fresh OS boot.
        let io = SharedIoStats::new();
        let s = TensorStore::open(&root, io.clone()).unwrap();
        let (_, n) = s.read_all("k").unwrap();
        let st = io.snapshot();
        assert_eq!(st.disk_read_bytes, n, "cold read misses");
        assert_eq!(st.cached_read_bytes, 0);
        let _ = s.read_all("k").unwrap();
        let st = io.snapshot();
        assert_eq!(st.disk_read_bytes, n, "second read is cache-served");
        assert_eq!(st.cached_read_bytes, n);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn zero_capacity_cache_counts_everything_as_disk() {
        let root = temp_root("nocache");
        let io = SharedIoStats::new();
        let mut s = TensorStore::open(&root, io.clone()).unwrap();
        s.set_page_cache_bytes(0);
        s.append("k", &Tensor::ones([4, 8])).unwrap();
        let (_, n) = s.read_all("k").unwrap();
        let _ = s.read_all("k").unwrap();
        let st = io.snapshot();
        assert_eq!(st.disk_read_bytes, 2 * n);
        assert_eq!(st.cached_read_bytes, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ranged_reads_touch_only_overlapping_chunks() {
        let io = SharedIoStats::new();
        let root = temp_root("ranged");
        let mut s = TensorStore::open(&root, io.clone()).unwrap();
        // Three chunks of 4 records each, values = record index.
        for c in 0..3 {
            let vals: Vec<f32> = (c * 4..(c + 1) * 4).map(|i| i as f32).collect();
            s.append("k", &Tensor::from_vec([4, 1], vals).unwrap()).unwrap();
        }
        // Range fully inside chunk 1.
        io.reset();
        let (t, bytes) = s.read_records("k", 5, 7).unwrap();
        assert_eq!(t.data(), &[5.0, 6.0]);
        let one_chunk = bytes;
        assert!(one_chunk > 0);
        // Range spanning chunks 0 and 1 reads exactly two chunks.
        let (t, bytes) = s.read_records("k", 2, 6).unwrap();
        assert_eq!(t.data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(bytes, 2 * one_chunk);
        // Clamped and empty ranges.
        let (t, _) = s.read_records("k", 10, 99).unwrap();
        assert_eq!(t.data(), &[10.0, 11.0]);
        let (t, bytes) = s.read_records("k", 3, 3).unwrap();
        assert_eq!(t.shape().dim(0), 0);
        assert_eq!(bytes, 0);
        // Whole range equals read_all.
        let (ranged, _) = s.read_records("k", 0, 12).unwrap();
        let (all, _) = s.read_all("k").unwrap();
        assert_eq!(ranged, all);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn append_many_matches_sequential_appends() {
        let mut rng = seeded_rng(9);
        let batches: Vec<(String, Tensor)> = vec![
            ("a".to_string(), randn([3, 4], 1.0, &mut rng)),
            ("b".to_string(), randn([2, 4], 1.0, &mut rng)),
            ("a".to_string(), randn([1, 4], 1.0, &mut rng)),
            ("c".to_string(), randn([5, 2], 1.0, &mut rng)),
        ];
        let root_seq = temp_root("many-seq");
        let mut seq = TensorStore::open(&root_seq, SharedIoStats::new()).unwrap();
        let seq_bytes: Vec<u64> =
            batches.iter().map(|(k, t)| seq.append(k, t).unwrap()).collect();
        let root_par = temp_root("many-par");
        let io = SharedIoStats::new();
        let mut par = TensorStore::open(&root_par, io.clone()).unwrap();
        let par_bytes = par.append_many(&batches).unwrap();
        assert_eq!(par_bytes, seq_bytes);
        assert_eq!(io.snapshot().write_ops, 4);
        for key in ["a", "b", "c"] {
            assert_eq!(par.num_records(key), seq.num_records(key), "records for {key}");
            let (pt, _) = par.read_all(key).unwrap();
            let (st, _) = seq.read_all(key).unwrap();
            assert_eq!(pt, st, "data for {key}");
        }
        // Reopen to prove the single manifest persist captured everything.
        drop(par);
        let reopened = TensorStore::open(&root_par, SharedIoStats::new()).unwrap();
        assert_eq!(reopened.num_records("a"), 4);
        std::fs::remove_dir_all(&root_seq).unwrap();
        std::fs::remove_dir_all(&root_par).unwrap();
    }

    #[test]
    fn reopen_preserves_manifest() {
        let io = SharedIoStats::new();
        let root = temp_root("reopen");
        {
            let mut s = TensorStore::open(&root, io.clone()).unwrap();
            s.append("k", &Tensor::ones([2, 3])).unwrap();
        }
        let s = TensorStore::open(&root, io).unwrap();
        assert_eq!(s.num_records("k"), 2);
        assert_eq!(s.record_shape("k"), Some(Shape::new([3])));
        let (t, _) = s.read_all("k").unwrap();
        assert_eq!(t.sum(), 6.0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shape_mismatch_rejected() {
        let root = temp_root("mismatch");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.append("k", &Tensor::ones([2, 3])).unwrap();
        let err = s.append("k", &Tensor::ones([2, 4])).unwrap_err();
        assert!(matches!(err, StoreError::ShapeMismatch { .. }));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_key_and_delete() {
        let root = temp_root("delete");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        assert!(matches!(s.read_all("nope"), Err(StoreError::MissingKey(_))));
        assert_eq!(s.num_records("nope"), 0);
        s.append("k", &Tensor::ones([4, 2])).unwrap();
        let freed = s.delete("k").unwrap();
        assert!(freed > 0);
        assert!(!s.contains("k"));
        assert_eq!(s.delete("k").unwrap(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let root = temp_root("collide");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.append("model/layer:1", &Tensor::ones([1, 2])).unwrap();
        s.append("model/layer:2", &Tensor::zeros([1, 2])).unwrap();
        let (a, _) = s.read_all("model/layer:1").unwrap();
        let (b, _) = s.read_all("model/layer:2").unwrap();
        assert_eq!(a.sum(), 2.0);
        assert_eq!(b.sum(), 0.0);
        assert_eq!(s.keys().len(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn total_bytes_and_clear() {
        let root = temp_root("clear");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.append("a", &Tensor::ones([2, 2])).unwrap();
        s.append("b", &Tensor::ones([2, 2])).unwrap();
        let total = s.total_bytes();
        assert!(total > 0);
        assert_eq!(s.clear().unwrap(), total);
        assert_eq!(s.total_bytes(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn page_cache_resize_preserves_warm_entries_and_accounting() {
        let root = temp_root("resize");
        let io = SharedIoStats::new();
        let mut s = TensorStore::open(&root, io.clone()).unwrap();
        s.append("k", &Tensor::ones([8, 16])).unwrap();
        let (_, n) = s.read_all("k").unwrap(); // warm (admitted at append)
        let before = s.cache_stats();
        assert_eq!(before.hit_bytes, n);
        // Growing the cache mid-run must not cool warm chunks or reset the
        // cumulative hit/miss curve (the old code rebuilt the model from
        // scratch, discarding both).
        s.set_page_cache_bytes(DEFAULT_PAGE_CACHE_BYTES * 2);
        let _ = s.read_all("k").unwrap();
        let st = io.snapshot();
        assert_eq!(st.disk_read_bytes, 0, "warm chunk stayed warm across resize");
        assert_eq!(st.cached_read_bytes, 2 * n);
        let after = s.cache_stats();
        assert_eq!(after.hit_bytes, 2 * n, "cumulative stats survive the resize");
        // Shrinking to zero evicts everything but still keeps the curve.
        s.set_page_cache_bytes(0);
        let _ = s.read_all("k").unwrap();
        assert_eq!(io.snapshot().disk_read_bytes, n);
        assert_eq!(s.cache_stats().miss_bytes, after.miss_bytes + n);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cache_lock_poisoning_does_not_cascade() {
        let root = temp_root("poison");
        let io = SharedIoStats::new();
        let mut s = TensorStore::open(&root, io.clone()).unwrap();
        s.append("k", &Tensor::ones([4, 8])).unwrap();
        // Poison the cache mutex: a thread panics while holding it.
        let poisoned = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = s.cache.lock().unwrap();
                    panic!("injected panic while holding the cache lock");
                })
                .join()
                .is_err()
        });
        assert!(poisoned, "the injected panic must have fired");
        assert!(s.cache.is_poisoned(), "the lock must actually be poisoned");
        // Every store operation keeps working: reads, accounting, appends,
        // resizes, deletes.
        let (t, n) = s.read_all("k").unwrap();
        assert_eq!(t.shape().0, vec![4, 8]);
        assert!(n > 0);
        assert!(io.snapshot().total_read_bytes() >= n);
        s.set_page_cache_bytes(1 << 20);
        s.append("k", &Tensor::ones([2, 8])).unwrap();
        assert_eq!(s.num_records("k"), 6);
        assert!(s.delete("k").unwrap() > 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn write_behind_append_many_matches_synchronous() {
        let mut rng = seeded_rng(21);
        let batches: Vec<(String, Tensor)> = vec![
            ("a".to_string(), randn([3, 4], 1.0, &mut rng)),
            ("b".to_string(), randn([2, 4], 1.0, &mut rng)),
            ("a".to_string(), randn([1, 4], 1.0, &mut rng)),
        ];
        let root_sync = temp_root("wb-sync");
        let mut sync = TensorStore::open(&root_sync, SharedIoStats::new()).unwrap();
        let sync_sizes = sync.append_many(&batches).unwrap();

        let root_wb = temp_root("wb-def");
        let io = SharedIoStats::new();
        let mut wb = TensorStore::open(&root_wb, io.clone()).unwrap();
        wb.set_io_policy(IoPolicy { write_behind: true, ..IoPolicy::default() });
        let wb_sizes = wb.append_many(&batches).unwrap();
        // Byte sizes (and the write counters budget charges depend on) are
        // known synchronously even though the writes are deferred.
        assert_eq!(wb_sizes, sync_sizes);
        assert_eq!(io.snapshot().write_ops, 3);
        // Reads barrier on the in-flight chunks: data is always correct.
        for key in ["a", "b"] {
            let (dt, _) = wb.read_all(key).unwrap();
            let (st, _) = sync.read_all(key).unwrap();
            assert_eq!(dt, st, "data for {key}");
        }
        wb.flush_writes().unwrap();
        // Reopen: everything landed on disk.
        drop(wb);
        let reopened = TensorStore::open(&root_wb, SharedIoStats::new()).unwrap();
        assert_eq!(reopened.num_records("a"), 4);
        let (t, _) = reopened.read_all("b").unwrap();
        assert_eq!(t.shape().0, vec![2, 4]);
        std::fs::remove_dir_all(&root_sync).unwrap();
        std::fs::remove_dir_all(&root_wb).unwrap();
    }

    #[test]
    fn write_behind_delete_waits_for_inflight_chunks() {
        let root = temp_root("wb-del");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.set_io_policy(IoPolicy { write_behind: true, io_threads: 1, ..IoPolicy::default() });
        let items: Vec<(String, Tensor)> =
            (0..8).map(|_| ("k".to_string(), Tensor::ones([16, 64]))).collect();
        s.append_many(&items).unwrap();
        // Delete must drain the queue before removing the directory —
        // otherwise a deferred write would recreate files under a removed
        // path and the error would surface as a spurious failure later.
        let freed = s.delete("k").unwrap();
        assert!(freed > 0);
        assert!(!s.contains("k"));
        s.flush_writes().unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chunk_plan_exposes_append_order_layout() {
        let root = temp_root("plan");
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.append("k", &Tensor::ones([3, 2])).unwrap();
        s.append("k", &Tensor::ones([2, 2])).unwrap();
        let plan = s.chunk_plan("k").unwrap();
        assert_eq!(plan.record_shape, vec![2]);
        assert_eq!(plan.chunks.len(), 2);
        assert_eq!(plan.chunks[0].records, 3);
        assert_eq!(plan.chunks[1].records, 2);
        assert!(plan.chunks[0].path.exists());
        assert!(plan.chunks[0].cache_key.ends_with("chunk-000000.bin"));
        assert!(matches!(s.chunk_plan("nope"), Err(StoreError::MissingKey(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
