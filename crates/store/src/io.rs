//! Shared IO counters.
//!
//! Every read/write done by a store (or *accounted* by the simulated
//! backend) increments these counters; the Fig 11 experiment compares them
//! across execution strategies. The counters also mirror into the
//! [`nautilus_util::telemetry`] byte counters so traces carry them.
//!
//! Both backends split reads into disk vs cache: the simulated backend
//! through [`crate::PageCacheModel`] charges, the real backend through the
//! same model tracking the chunk files [`crate::TensorStore`] actually
//! touches (a stand-in for the OS page cache the paper relies on).

use nautilus_util::telemetry;
use std::sync::{Arc, Mutex};

/// Cumulative IO statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes read from disk (page-cache *misses*).
    pub disk_read_bytes: u64,
    /// Bytes served from the page cache.
    pub cached_read_bytes: u64,
    /// Bytes written.
    pub disk_write_bytes: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
}

impl IoStats {
    /// Total bytes read from any source.
    pub fn total_read_bytes(&self) -> u64 {
        self.disk_read_bytes + self.cached_read_bytes
    }
}

/// Cheaply clonable handle to shared [`IoStats`].
#[derive(Debug, Clone, Default)]
pub struct SharedIoStats(Arc<Mutex<IoStats>>);

impl SharedIoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read that hit the disk.
    pub fn record_disk_read(&self, bytes: u64) {
        let mut s = self.0.lock().unwrap();
        s.disk_read_bytes += bytes;
        s.read_ops += 1;
        telemetry::DISK_READ_BYTES.add(bytes);
    }

    /// Records a read served from cache.
    pub fn record_cached_read(&self, bytes: u64) {
        let mut s = self.0.lock().unwrap();
        s.cached_read_bytes += bytes;
        s.read_ops += 1;
        telemetry::CACHED_READ_BYTES.add(bytes);
    }

    /// Records a write.
    pub fn record_write(&self, bytes: u64) {
        let mut s = self.0.lock().unwrap();
        s.disk_write_bytes += bytes;
        s.write_ops += 1;
        telemetry::DISK_WRITE_BYTES.add(bytes);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> IoStats {
        *self.0.lock().unwrap()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.0.lock().unwrap() = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let io = SharedIoStats::new();
        io.record_disk_read(100);
        io.record_cached_read(50);
        io.record_write(30);
        io.record_write(20);
        let s = io.snapshot();
        assert_eq!(s.disk_read_bytes, 100);
        assert_eq!(s.cached_read_bytes, 50);
        assert_eq!(s.total_read_bytes(), 150);
        assert_eq!(s.disk_write_bytes, 50);
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.write_ops, 2);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedIoStats::new();
        let b = a.clone();
        b.record_write(7);
        assert_eq!(a.snapshot().disk_write_bytes, 7);
        a.reset();
        assert_eq!(b.snapshot(), IoStats::default());
    }
}
