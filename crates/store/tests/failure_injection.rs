//! Failure injection: corrupted files must surface as typed errors, never
//! panics or silent bad data.

use nautilus_store::{SharedIoStats, StoreError, TensorStore};
use nautilus_tensor::Tensor;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-failinj-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn find_chunk(root: &PathBuf) -> PathBuf {
    fn walk(dir: &PathBuf, out: &mut Vec<PathBuf>) {
        for e in std::fs::read_dir(dir).unwrap() {
            let p = e.unwrap().path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.file_name().unwrap().to_string_lossy().starts_with("chunk-") {
                out.push(p);
            }
        }
    }
    let mut chunks = Vec::new();
    walk(root, &mut chunks);
    chunks.into_iter().next().expect("at least one chunk on disk")
}

#[test]
fn truncated_chunk_is_reported() {
    let root = temp_root("truncated");
    let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
    s.append("k", &Tensor::ones([4, 8])).unwrap();
    let chunk = find_chunk(&root);
    let data = std::fs::read(&chunk).unwrap();
    std::fs::write(&chunk, &data[..data.len() / 2]).unwrap();
    match s.read_all("k") {
        Err(StoreError::BadChunk(_)) => {}
        other => panic!("expected BadChunk, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn garbage_chunk_is_reported() {
    let root = temp_root("garbage");
    let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
    s.append("k", &Tensor::ones([2, 2])).unwrap();
    let chunk = find_chunk(&root);
    std::fs::write(&chunk, b"not a tensor at all").unwrap();
    assert!(matches!(s.read_all("k"), Err(StoreError::BadChunk(_))));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn corrupted_manifest_fails_open() {
    let root = temp_root("manifest");
    {
        let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
        s.append("k", &Tensor::ones([2, 2])).unwrap();
    }
    std::fs::write(root.join("manifest.json"), b"{ definitely not json").unwrap();
    assert!(matches!(
        TensorStore::open(&root, SharedIoStats::new()),
        Err(StoreError::BadManifest(_))
    ));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_chunk_file_is_io_error() {
    let root = temp_root("missing");
    let mut s = TensorStore::open(&root, SharedIoStats::new()).unwrap();
    s.append("k", &Tensor::ones([2, 2])).unwrap();
    std::fs::remove_file(find_chunk(&root)).unwrap();
    assert!(matches!(s.read_all("k"), Err(StoreError::Io(_))));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn corrupted_checkpoint_is_reported() {
    use nautilus_dnn::checkpoint;
    use nautilus_dnn::graph::{ModelGraph, ParamInit};
    use nautilus_dnn::layer::{Activation, LayerKind};
    let mut rng = nautilus_tensor::init::seeded_rng(1);
    let mut g = ModelGraph::new();
    let i = g.add_input("in", [4]);
    let o = g
        .add_layer(
            "head",
            LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
            &[i],
            false,
            ParamInit::Seeded(&mut rng),
        )
        .unwrap();
    g.add_output(o).unwrap();
    let root = temp_root("ckpt");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join("m.ckpt");
    checkpoint::save(&g, &path).unwrap();
    // Flip bytes in the JSON header region.
    let mut data = std::fs::read(&path).unwrap();
    for b in data.iter_mut().skip(12).take(16) {
        *b = b'#';
    }
    std::fs::write(&path, &data).unwrap();
    assert!(checkpoint::load(&path).is_err());
    std::fs::remove_dir_all(&root).unwrap();
}
