//! Synthetic named-entity-recognition corpus.
//!
//! Substitutes for CoNLL-2003 (unavailable offline). The vocabulary is
//! partitioned into a "common word" region and one lexicon region per entity
//! type; sentences are random common words with occasional entity spans of
//! length 1–3 drawn from a lexicon, tagged in BIO scheme. A model must learn
//! token-identity → type (easy) and span position B-vs-I from left context
//! (needs contextual features), giving a realistic difficulty gradient:
//! accuracy climbs steeply with the first few hundred labels and keeps
//! improving slowly after — the same qualitative curve as Fig 7.

use crate::dataset::Dataset;
use nautilus_tensor::Tensor;
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

/// Configuration of the synthetic NER corpus.
#[derive(Debug, Clone)]
pub struct NerDatasetConfig {
    /// Vocabulary size; the top portion is split into entity lexicons.
    pub vocab: usize,
    /// Fixed sequence length (CoNLL averages ~20 words per record, §5.1).
    pub seq_len: usize,
    /// Number of entity types (CoNLL-2003 has 4).
    pub entity_types: usize,
    /// Probability of starting an entity span at any position.
    pub entity_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NerDatasetConfig {
    fn default() -> Self {
        NerDatasetConfig { vocab: 200, seq_len: 20, entity_types: 4, entity_rate: 0.15, seed: 17 }
    }
}

impl NerDatasetConfig {
    /// Number of BIO tag classes: `O` plus `B-x`/`I-x` per type.
    pub fn num_tags(&self) -> usize {
        1 + 2 * self.entity_types
    }

    /// Size of each entity lexicon region.
    fn lexicon_size(&self) -> usize {
        (self.vocab / 4) / self.entity_types.max(1)
    }

    /// First vocab id belonging to entity type `t`.
    fn lexicon_start(&self, t: usize) -> usize {
        self.vocab - (self.entity_types - t) * self.lexicon_size()
    }

    /// Last vocab id (exclusive) of the common-word region.
    fn common_end(&self) -> usize {
        self.lexicon_start(0)
    }

    /// Generates a pool of `n` labeled records.
    ///
    /// Inputs are `[n, seq_len]` token ids; labels are `[n, seq_len]` BIO
    /// tag ids (`0` = `O`, `2t+1` = `B-t`, `2t+2` = `I-t`).
    pub fn generate(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = self.seq_len;
        let mut tokens = vec![0.0f32; n * s];
        let mut tags = vec![0.0f32; n * s];
        for r in 0..n {
            let mut i = 0usize;
            while i < s {
                if rng.gen_bool(self.entity_rate) {
                    let t = rng.gen_range(0..self.entity_types);
                    let span = rng.gen_range(1..=3usize).min(s - i);
                    let start = self.lexicon_start(t);
                    for (j, k) in (i..i + span).enumerate() {
                        tokens[r * s + k] =
                            rng.gen_range(start..start + self.lexicon_size()) as f32;
                        tags[r * s + k] =
                            if j == 0 { (2 * t + 1) as f32 } else { (2 * t + 2) as f32 };
                    }
                    i += span;
                } else {
                    // Common words start at id 2 (0/1 reserved).
                    tokens[r * s + i] = rng.gen_range(2..self.common_end()) as f32;
                    i += 1;
                }
            }
        }
        Dataset::new(
            Tensor::from_vec([n, s], tokens).expect("sized by construction"),
            Tensor::from_vec([n, s], tags).expect("sized by construction"),
        )
        .expect("counts match by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let cfg = NerDatasetConfig::default();
        let d = cfg.generate(50);
        assert_eq!(d.inputs.shape().0, vec![50, 20]);
        assert_eq!(d.labels.shape().0, vec![50, 20]);
        for &t in d.inputs.data() {
            assert!((t as usize) < cfg.vocab);
            assert!(t >= 0.0);
        }
        for &l in d.labels.data() {
            assert!((l as usize) < cfg.num_tags());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = NerDatasetConfig::default();
        assert_eq!(cfg.generate(10), cfg.generate(10));
        let other = NerDatasetConfig { seed: 18, ..cfg };
        assert_ne!(other.generate(10), cfg.generate(10));
    }

    #[test]
    fn entity_tokens_come_from_lexicons() {
        let cfg = NerDatasetConfig::default();
        let d = cfg.generate(200);
        let s = cfg.seq_len;
        for r in 0..200 {
            for i in 0..s {
                let tag = d.labels.data()[r * s + i] as usize;
                let tok = d.inputs.data()[r * s + i] as usize;
                if tag == 0 {
                    assert!(tok < cfg.common_end(), "O token {tok} in lexicon region");
                } else {
                    let t = (tag - 1) / 2;
                    let start = cfg.lexicon_start(t);
                    assert!(
                        (start..start + cfg.lexicon_size()).contains(&tok),
                        "tag {tag} token {tok} outside lexicon {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn i_tags_follow_b_or_i_of_same_type() {
        let cfg = NerDatasetConfig::default();
        let d = cfg.generate(100);
        let s = cfg.seq_len;
        for r in 0..100 {
            for i in 0..s {
                let tag = d.labels.data()[r * s + i] as usize;
                if tag != 0 && tag.is_multiple_of(2) {
                    // I-t must be preceded by B-t or I-t.
                    assert!(i > 0, "I tag at sentence start");
                    let prev = d.labels.data()[r * s + i - 1] as usize;
                    assert!(prev == tag || prev == tag - 1, "I-{tag} after {prev}");
                }
            }
        }
    }

    #[test]
    fn entities_appear_at_expected_rate() {
        let cfg = NerDatasetConfig::default();
        let d = cfg.generate(500);
        let tagged = d.labels.data().iter().filter(|&&t| t != 0.0).count();
        let frac = tagged as f64 / d.labels.len() as f64;
        assert!((0.1..0.5).contains(&frac), "entity token fraction {frac}");
    }
}
