#![warn(missing_docs)]

//! Datasets and labeling for the Nautilus reproduction.
//!
//! The paper evaluates on CoNLL-2003 (named-entity recognition over text)
//! and Malaria (infected-cell image classification), with a human labeler
//! releasing 500 labels per model-selection cycle. Neither dataset is
//! available here, so this crate provides seeded synthetic equivalents with
//! the same *task shapes* and difficulty gradient (accuracy improves with
//! more labeled data), plus the labeling machinery:
//!
//! * [`dataset`] — in-memory labeled datasets with slicing/splitting.
//! * [`ner`] — a synthetic token-tagging corpus: entity spans drawn from
//!   per-type lexicon regions with BIO tags; learnable by token identity
//!   plus context, like simplified CoNLL.
//! * [`images`] — a synthetic blood-smear-like image set: "infected" cells
//!   contain small high-intensity parasite blobs, like simplified Malaria.
//! * [`augment`] — offline image augmentation (the paper's §2.5 route:
//!   materialize the augmented dataset once, instead of on-the-fly
//!   augmentation which would break feature materialization).
//! * [`labeling`] — a pool-based labeling session that releases labels in
//!   cycles (simulating the human labeler, §5) with a configurable
//!   seconds-per-label cost, plus active-learning samplers (random,
//!   least-confidence, margin, entropy — §1's AL use case).
//! * [`weak`] — programmatic supervision (§1's other labeling scheme):
//!   labeling functions over token sequences with majority-vote
//!   aggregation, coverage, and conflict statistics.

pub mod augment;
pub mod dataset;
pub mod images;
pub mod labeling;
pub mod ner;
pub mod weak;

pub use augment::{augment_images, ImageAugmentConfig};
pub use dataset::Dataset;
pub use images::ImageDatasetConfig;
pub use labeling::{LabelingSession, Sampler};
pub use ner::NerDatasetConfig;
pub use weak::{weak_label, LabelingFunction, LexiconLf, WeakLabels};
