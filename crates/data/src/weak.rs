//! Programmatic supervision (Snorkel-style weak labeling).
//!
//! Besides the human labeler, §1 of the paper lists *programmatic
//! supervision* as a labeling scheme that also triggers periodic model
//! selection — users write labeling functions (LFs) instead of annotating
//! records, and the aggregated (noisy) labels evolve as functions are added
//! or refined. Nautilus's optimizations are orthogonal to the labeling
//! scheme, and this module provides the scheme itself for the text task:
//! keyword-style labeling functions over token sequences plus majority-vote
//! aggregation with abstentions.

use crate::dataset::Dataset;
use nautilus_tensor::Tensor;

/// A labeling function: given one record's token ids, vote a class per
/// token or abstain (`None`).
pub trait LabelingFunction {
    /// Short name for diagnostics.
    fn name(&self) -> &str;
    /// Per-token votes for one record (`None` = abstain).
    fn vote(&self, tokens: &[f32]) -> Vec<Option<i64>>;
}

/// Votes a fixed tag whenever the token id falls in a vocabulary range —
/// the programmatic analogue of a gazetteer/lexicon match.
#[derive(Debug, Clone)]
pub struct LexiconLf {
    /// Diagnostic name.
    pub name: String,
    /// Token-id range (inclusive start, exclusive end).
    pub range: (usize, usize),
    /// Tag voted on a match.
    pub tag: i64,
}

impl LabelingFunction for LexiconLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, tokens: &[f32]) -> Vec<Option<i64>> {
        tokens
            .iter()
            .map(|&t| {
                let t = t as usize;
                if t >= self.range.0 && t < self.range.1 {
                    Some(self.tag)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Outcome of aggregating labeling functions over a pool.
#[derive(Debug)]
pub struct WeakLabels {
    /// The weakly labeled dataset (records where every token had at least
    /// one vote or the default tag applies).
    pub dataset: Dataset,
    /// Fraction of token positions that received at least one non-default
    /// vote.
    pub coverage: f64,
    /// Fraction of voted positions where functions disagreed.
    pub conflict: f64,
}

/// Applies labeling functions to unlabeled inputs and aggregates votes by
/// per-token majority; positions with no votes receive `default_tag`
/// (usually the `O` tag). Ties resolve to the smallest tag for determinism.
pub fn weak_label(
    inputs: &Tensor,
    lfs: &[&dyn LabelingFunction],
    num_tags: usize,
    default_tag: i64,
) -> WeakLabels {
    let n = inputs.shape().dim(0);
    let s = inputs.shape().dim(1);
    let mut labels = vec![default_tag as f32; n * s];
    let mut voted = 0usize;
    let mut conflicted = 0usize;
    for r in 0..n {
        let tokens = &inputs.data()[r * s..(r + 1) * s];
        let votes: Vec<Vec<Option<i64>>> = lfs.iter().map(|lf| lf.vote(tokens)).collect();
        for i in 0..s {
            let mut counts = vec![0usize; num_tags];
            let mut any = false;
            for v in &votes {
                if let Some(tag) = v[i] {
                    counts[tag as usize] += 1;
                    any = true;
                }
            }
            if any {
                voted += 1;
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, &c)| (c, usize::MAX - i))
                    .map(|(i, _)| i)
                    .unwrap_or(default_tag as usize);
                if counts.iter().filter(|&&c| c > 0).count() > 1 {
                    conflicted += 1;
                }
                labels[r * s + i] = best as f32;
            }
        }
    }
    let total = (n * s).max(1);
    WeakLabels {
        dataset: Dataset::new(
            inputs.clone(),
            Tensor::from_vec([n, s], labels).expect("sized by construction"),
        )
        .expect("counts match"),
        coverage: voted as f64 / total as f64,
        conflict: if voted == 0 { 0.0 } else { conflicted as f64 / voted as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ner::NerDatasetConfig;

    fn cfg() -> NerDatasetConfig {
        NerDatasetConfig { vocab: 60, seq_len: 12, ..Default::default() }
    }

    /// Lexicon LFs matching the generator's entity regions recover the
    /// B-tags well (they can't see context, so I-tags are voted as B).
    #[test]
    fn lexicon_lfs_recover_entity_types() {
        let c = cfg();
        let gold = c.generate(100);
        let lexicon_size = (c.vocab / 4) / c.entity_types;
        let lfs: Vec<LexiconLf> = (0..c.entity_types)
            .map(|t| LexiconLf {
                name: format!("lex{t}"),
                range: (
                    c.vocab - (c.entity_types - t) * lexicon_size,
                    c.vocab - (c.entity_types - t - 1) * lexicon_size,
                ),
                tag: (2 * t + 1) as i64, // vote B-t
            })
            .collect();
        let refs: Vec<&dyn LabelingFunction> =
            lfs.iter().map(|l| l as &dyn LabelingFunction).collect();
        let weak = weak_label(&gold.inputs, &refs, c.num_tags(), 0);
        assert!(weak.coverage > 0.1 && weak.coverage < 0.6, "{}", weak.coverage);
        assert_eq!(weak.conflict, 0.0, "disjoint lexicons never conflict");
        // Weak labels agree with gold up to the B/I distinction.
        let gold_t = gold.targets();
        let weak_t = weak.dataset.targets();
        let type_of = |t: i64| if t == 0 { 0 } else { (t - 1) / 2 + 1 };
        let agree = gold_t
            .iter()
            .zip(&weak_t)
            .filter(|(&g, &w)| type_of(g) == type_of(w))
            .count();
        assert_eq!(agree, gold_t.len(), "entity *types* must match exactly");
    }

    #[test]
    fn majority_vote_and_conflict_accounting() {
        struct Fixed(Vec<Option<i64>>, &'static str);
        impl LabelingFunction for Fixed {
            fn name(&self) -> &str {
                self.1
            }
            fn vote(&self, _tokens: &[f32]) -> Vec<Option<i64>> {
                self.0.clone()
            }
        }
        let inputs = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let a = Fixed(vec![Some(1), Some(1), None], "a");
        let b = Fixed(vec![Some(2), Some(1), None], "b");
        let c = Fixed(vec![Some(1), None, None], "c");
        let weak = weak_label(&inputs, &[&a, &b, &c], 3, 0);
        // Position 0: votes {1:2, 2:1} -> 1. Position 1: 1. Position 2: default.
        assert_eq!(weak.dataset.targets(), vec![1, 1, 0]);
        assert!((weak.coverage - 2.0 / 3.0).abs() < 1e-9);
        assert!((weak.conflict - 0.5).abs() < 1e-9); // 1 of 2 voted positions
    }

    #[test]
    fn tie_breaks_to_smallest_tag() {
        struct One(&'static str, i64);
        impl LabelingFunction for One {
            fn name(&self) -> &str {
                self.0
            }
            fn vote(&self, _t: &[f32]) -> Vec<Option<i64>> {
                vec![Some(self.1)]
            }
        }
        let inputs = Tensor::from_vec([1, 1], vec![0.0]).unwrap();
        let weak = weak_label(&inputs, &[&One("x", 2), &One("y", 1)], 3, 0);
        assert_eq!(weak.dataset.targets(), vec![1]);
    }
}
