//! In-memory labeled datasets.

use nautilus_tensor::{Tensor, TensorError};

/// A labeled dataset: batched inputs `[n, ...record]` and per-record labels.
///
/// Labels are stored as a batched tensor too (`[n]` for classification,
/// `[n, seq]` for token tagging) so the same store/IO paths handle both; the
/// integer targets a loss needs come from [`Dataset::targets`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Batched input tensor.
    pub inputs: Tensor,
    /// Batched label tensor (integer values stored as exact floats).
    pub labels: Tensor,
}

impl Dataset {
    /// Creates a dataset, checking that inputs and labels agree on count.
    pub fn new(inputs: Tensor, labels: Tensor) -> Result<Self, TensorError> {
        if inputs.shape().rank() == 0 || labels.shape().rank() == 0 {
            return Err(TensorError::Incompatible("dataset tensors must be batched".into()));
        }
        if inputs.shape().dim(0) != labels.shape().dim(0) {
            return Err(TensorError::Incompatible(format!(
                "inputs have {} records, labels {}",
                inputs.shape().dim(0),
                labels.shape().dim(0)
            )));
        }
        Ok(Dataset { inputs, labels })
    }

    /// An empty dataset with the given record shapes.
    pub fn empty(input_record: &[usize], label_record: &[usize]) -> Self {
        let mut ishape = vec![0];
        ishape.extend_from_slice(input_record);
        let mut lshape = vec![0];
        lshape.extend_from_slice(label_record);
        Dataset { inputs: Tensor::zeros(ishape), labels: Tensor::zeros(lshape) }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inputs.shape().dim(0)
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selects records by index, in the given order.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let ins: Vec<Tensor> = indices.iter().map(|&i| self.inputs.outer_slice(i)).collect();
        let labs: Vec<Tensor> = indices.iter().map(|&i| self.labels.outer_slice(i)).collect();
        if indices.is_empty() {
            return Dataset::empty(
                &self.inputs.shape().without_batch().0,
                &self.labels.shape().without_batch().0,
            );
        }
        Dataset {
            inputs: Tensor::stack(&ins).expect("uniform record shapes"),
            labels: Tensor::stack(&labs).expect("uniform record shapes"),
        }
    }

    /// Contiguous range of records.
    pub fn range(&self, start: usize, end: usize) -> Dataset {
        let idx: Vec<usize> = (start..end).collect();
        self.select(&idx)
    }

    /// Appends another dataset's records (shapes must match).
    pub fn extend(&mut self, other: &Dataset) -> Result<(), TensorError> {
        if self.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if other.is_empty() {
            return Ok(());
        }
        self.inputs = Tensor::concat_outer(&[self.inputs.clone(), other.inputs.clone()])?;
        self.labels = Tensor::concat_outer(&[self.labels.clone(), other.labels.clone()])?;
        Ok(())
    }

    /// Splits off the first `n` records as train and the rest as validation.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        let n = n.min(self.len());
        (self.range(0, n), self.range(n, self.len()))
    }

    /// Flattened integer targets: one per label element (one per record for
    /// classification, one per token for tagging).
    pub fn targets(&self) -> Vec<i64> {
        self.labels.data().iter().map(|&x| x as i64).collect()
    }

    /// Per-record byte footprint of the inputs.
    pub fn input_record_bytes(&self) -> usize {
        self.inputs.shape().without_batch().num_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let inputs = Tensor::from_vec([4, 2], vec![0., 1., 2., 3., 4., 5., 6., 7.]).unwrap();
        let labels = Tensor::from_vec([4], vec![0., 1., 0., 1.]).unwrap();
        Dataset::new(inputs, labels).unwrap()
    }

    #[test]
    fn count_mismatch_rejected() {
        let inputs = Tensor::zeros([3, 2]);
        let labels = Tensor::zeros([4]);
        assert!(Dataset::new(inputs, labels).is_err());
    }

    #[test]
    fn select_and_range() {
        let d = ds();
        let s = d.select(&[2, 0]);
        assert_eq!(s.inputs.data(), &[4., 5., 0., 1.]);
        assert_eq!(s.targets(), vec![0, 0]);
        let r = d.range(1, 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.targets(), vec![1, 0]);
        assert_eq!(d.select(&[]).len(), 0);
    }

    #[test]
    fn extend_and_split() {
        let mut a = ds();
        let b = ds();
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 8);
        let (tr, va) = a.split_at(6);
        assert_eq!(tr.len(), 6);
        assert_eq!(va.len(), 2);
        let mut e = Dataset::empty(&[2], &[]);
        e.extend(&ds()).unwrap();
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn tagging_targets_flatten() {
        let inputs = Tensor::zeros([2, 3]);
        let labels = Tensor::from_vec([2, 3], vec![0., 1., 2., 2., 1., 0.]).unwrap();
        let d = Dataset::new(inputs, labels).unwrap();
        assert_eq!(d.targets(), vec![0, 1, 2, 2, 1, 0]);
    }
}
