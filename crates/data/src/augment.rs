//! Offline data augmentation.
//!
//! Nautilus cannot apply *on-the-fly* random augmentation (a materialized
//! frozen-layer output must be a pure function of the stored record); the
//! paper's prescription (§2.5) is to materialize an augmented dataset up
//! front and treat every augmented copy as a first-class record. This
//! module provides that step for image datasets: deterministic, seeded
//! horizontal flips and small translations, expanding a dataset by a fixed
//! multiplier before it enters the labeling pool.

use crate::dataset::Dataset;
use nautilus_tensor::{Tensor, TensorError};
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

/// Image augmentation configuration.
#[derive(Debug, Clone)]
pub struct ImageAugmentConfig {
    /// Additional augmented copies per original record (0 = no-op).
    pub copies: usize,
    /// Probability of a horizontal flip per copy.
    pub flip_prob: f64,
    /// Maximum absolute translation in pixels (per axis, per copy).
    pub max_shift: usize,
    /// RNG seed (fixed: the augmented dataset is materialized once).
    pub seed: u64,
}

impl Default for ImageAugmentConfig {
    fn default() -> Self {
        ImageAugmentConfig { copies: 1, flip_prob: 0.5, max_shift: 2, seed: 31 }
    }
}

fn flip_h(img: &[f32], c: usize, h: usize, w: usize, out: &mut [f32]) {
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out[ci * h * w + y * w + x] = img[ci * h * w + y * w + (w - 1 - x)];
            }
        }
    }
}

fn shift(img: &[f32], c: usize, h: usize, w: usize, dy: isize, dx: isize, out: &mut [f32]) {
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = y as isize - dy;
                let sx = x as isize - dx;
                out[ci * h * w + y * w + x] =
                    if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                        img[ci * h * w + sy as usize * w + sx as usize]
                    } else {
                        0.0
                    };
            }
        }
    }
}

/// Expands an image dataset (`[n, c, h, w]` inputs) with augmented copies.
///
/// Originals come first, then `copies` augmented passes over the dataset in
/// record order — deterministic per seed, so re-materializing yields the
/// identical augmented pool.
pub fn augment_images(ds: &Dataset, cfg: &ImageAugmentConfig) -> Result<Dataset, TensorError> {
    let dims = &ds.inputs.shape().0;
    if dims.len() != 4 {
        return Err(TensorError::Incompatible(format!(
            "augment_images expects [n, c, h, w] inputs, got {dims:?}"
        )));
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inputs = ds.inputs.data().to_vec();
    let mut labels = ds.labels.data().to_vec();
    let rec = c * h * w;
    let mut buf = vec![0.0f32; rec];
    let mut buf2 = vec![0.0f32; rec];
    for _copy in 0..cfg.copies {
        for r in 0..n {
            let img = &ds.inputs.data()[r * rec..(r + 1) * rec];
            let flipped = rng.gen_bool(cfg.flip_prob);
            let dy = rng.gen_range(-(cfg.max_shift as isize)..=cfg.max_shift as isize);
            let dx = rng.gen_range(-(cfg.max_shift as isize)..=cfg.max_shift as isize);
            let src: &[f32] = if flipped {
                flip_h(img, c, h, w, &mut buf);
                &buf
            } else {
                img
            };
            shift(src, c, h, w, dy, dx, &mut buf2);
            inputs.extend_from_slice(&buf2);
            let lrec = ds.labels.len() / n;
            labels.extend_from_within(r * lrec..(r + 1) * lrec);
        }
    }
    let total = n * (1 + cfg.copies);
    let mut lshape = ds.labels.shape().0.clone();
    lshape[0] = total;
    Dataset::new(
        Tensor::from_vec([total, c, h, w], inputs)?,
        Tensor::from_vec(lshape, labels)?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageDatasetConfig;

    #[test]
    fn expands_by_multiplier_and_keeps_labels() {
        let ds = ImageDatasetConfig::default().generate(10);
        let aug = augment_images(&ds, &ImageAugmentConfig { copies: 2, ..Default::default() })
            .unwrap();
        assert_eq!(aug.len(), 30);
        // Originals preserved verbatim up front.
        assert_eq!(&aug.inputs.data()[..ds.inputs.len()], ds.inputs.data());
        assert_eq!(&aug.targets()[..10], &ds.targets()[..]);
        // Augmented copies carry their source labels.
        assert_eq!(&aug.targets()[10..20], &ds.targets()[..]);
        assert_eq!(&aug.targets()[20..30], &ds.targets()[..]);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = ImageDatasetConfig::default().generate(5);
        let cfg = ImageAugmentConfig::default();
        let a = augment_images(&ds, &cfg).unwrap();
        let b = augment_images(&ds, &cfg).unwrap();
        assert_eq!(a, b);
        let c = augment_images(&ds, &ImageAugmentConfig { seed: 99, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn flip_is_an_involution() {
        let mut img = vec![0.0f32; 2 * 3 * 4];
        for (i, v) in img.iter_mut().enumerate() {
            *v = i as f32;
        }
        let mut once = vec![0.0; img.len()];
        let mut twice = vec![0.0; img.len()];
        flip_h(&img, 2, 3, 4, &mut once);
        flip_h(&once, 2, 3, 4, &mut twice);
        assert_eq!(img, twice);
        assert_ne!(img, once);
    }

    #[test]
    fn shift_zero_is_identity_and_pads_with_zeros() {
        let img: Vec<f32> = (0..16).map(|i| i as f32 + 1.0).collect();
        let mut out = vec![0.0; 16];
        shift(&img, 1, 4, 4, 0, 0, &mut out);
        assert_eq!(img, out);
        shift(&img, 1, 4, 4, 1, 0, &mut out);
        assert!(out[..4].iter().all(|&x| x == 0.0), "top row padded");
        assert_eq!(&out[4..8], &img[..4]);
    }

    #[test]
    fn rejects_non_image_datasets() {
        let ds = Dataset::new(Tensor::zeros([4, 8]), Tensor::zeros([4])).unwrap();
        assert!(augment_images(&ds, &ImageAugmentConfig::default()).is_err());
    }
}
