//! Pool-based labeling sessions and active-learning samplers.
//!
//! The paper's workload (§1, Fig 1A) is a human labeling loop: each cycle
//! the labeler annotates a batch of records sampled from an unlabeled pool
//! (randomly, or by an informativeness criterion computed with the current
//! best model), the labeled set grows (`D_{k+1} = D_k ∪ ΔD_k⁺`, Eq 4), and
//! model selection re-runs. [`LabelingSession`] simulates the labeler by
//! programmatically releasing ground-truth labels, exactly as §5 does, and
//! charges a configurable seconds-per-record labeling cost used by the
//! Fig 6(C)/Fig 7(B) total-time experiments.

use crate::dataset::Dataset;
use nautilus_util::rng::{SeedableRng, SliceRandom, StdRng};

/// How the next batch of records to label is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Uniformly at random (seeded).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Lowest maximum-softmax-confidence first (uncertainty sampling).
    LeastConfidence,
    /// Smallest top-two probability margin first.
    Margin,
    /// Highest predictive entropy first.
    Entropy,
}

impl Sampler {
    /// Selects `n` indices out of `candidates`.
    ///
    /// Score-based samplers need `scores`: per-candidate vectors of class
    /// probabilities (averaged over tokens for tagging tasks), aligned with
    /// `candidates`. They fall back to pool order if scores are missing.
    pub fn select(
        &self,
        n: usize,
        candidates: &[usize],
        scores: Option<&[Vec<f32>]>,
    ) -> Vec<usize> {
        let n = n.min(candidates.len());
        match self {
            Sampler::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut pool: Vec<usize> = candidates.to_vec();
                pool.shuffle(&mut rng);
                pool.truncate(n);
                pool
            }
            _ => {
                let Some(scores) = scores else {
                    return candidates[..n].to_vec();
                };
                debug_assert_eq!(scores.len(), candidates.len());
                let mut scored: Vec<(usize, f32)> = candidates
                    .iter()
                    .zip(scores)
                    .map(|(&c, p)| (c, self.informativeness(p)))
                    .collect();
                // Most informative first; stable tie-break on index for
                // determinism.
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                scored.into_iter().take(n).map(|(c, _)| c).collect()
            }
        }
    }

    /// Higher = more informative (more worth labeling).
    fn informativeness(&self, probs: &[f32]) -> f32 {
        match self {
            Sampler::Random { .. } => 0.0,
            Sampler::LeastConfidence => {
                1.0 - probs.iter().fold(0.0f32, |m, &p| m.max(p))
            }
            Sampler::Margin => {
                let mut top = [0.0f32; 2];
                for &p in probs {
                    if p > top[0] {
                        top[1] = top[0];
                        top[0] = p;
                    } else if p > top[1] {
                        top[1] = p;
                    }
                }
                -(top[0] - top[1]) // smaller margin = more informative
            }
            Sampler::Entropy => {
                -probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f32>()
            }
        }
    }
}

/// A pool of pre-generated records whose labels are released cycle by cycle.
#[derive(Debug, Clone)]
pub struct LabelingSession {
    pool: Dataset,
    labeled: Vec<bool>,
    /// Simulated human labeling cost.
    pub secs_per_record: f64,
    cycles_completed: usize,
}

impl LabelingSession {
    /// Wraps a fully labeled pool; labels stay hidden until released.
    pub fn new(pool: Dataset, secs_per_record: f64) -> Self {
        let n = pool.len();
        LabelingSession { pool, labeled: vec![false; n], secs_per_record, cycles_completed: 0 }
    }

    /// Total pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Records labeled so far.
    pub fn labeled_count(&self) -> usize {
        self.labeled.iter().filter(|&&l| l).count()
    }

    /// Completed labeling cycles.
    pub fn cycles_completed(&self) -> usize {
        self.cycles_completed
    }

    /// Indices still unlabeled, in pool order.
    pub fn unlabeled_indices(&self) -> Vec<usize> {
        (0..self.pool.len()).filter(|&i| !self.labeled[i]).collect()
    }

    /// The unlabeled records (inputs only are meaningful to a sampler; the
    /// labels carried along are *not* to be peeked at).
    pub fn unlabeled_inputs(&self) -> Dataset {
        self.pool.select(&self.unlabeled_indices())
    }

    /// Labels the next batch of `n` records chosen by `sampler` and returns
    /// them along with the simulated labeling time in seconds (`ΔD_k⁺`).
    ///
    /// `scores` (per-unlabeled-record class probabilities, aligned with
    /// [`LabelingSession::unlabeled_indices`]) feed informativeness-based
    /// samplers.
    pub fn next_batch(
        &mut self,
        n: usize,
        sampler: &Sampler,
        scores: Option<&[Vec<f32>]>,
    ) -> (Dataset, f64) {
        let candidates = self.unlabeled_indices();
        let chosen = sampler.select(n, &candidates, scores);
        for &i in &chosen {
            self.labeled[i] = true;
        }
        self.cycles_completed += 1;
        let batch = self.pool.select(&chosen);
        let secs = batch.len() as f64 * self.secs_per_record;
        (batch, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_tensor::Tensor;

    fn pool(n: usize) -> Dataset {
        let inputs = Tensor::from_vec([n, 1], (0..n).map(|i| i as f32).collect()).unwrap();
        let labels = Tensor::from_vec([n], vec![0.0; n]).unwrap();
        Dataset::new(inputs, labels).unwrap()
    }

    #[test]
    fn random_sampling_without_replacement() {
        let mut s = LabelingSession::new(pool(10), 1.0);
        let (b1, t1) = s.next_batch(4, &Sampler::Random { seed: 1 }, None);
        assert_eq!(b1.len(), 4);
        assert_eq!(t1, 4.0);
        let (b2, _) = s.next_batch(4, &Sampler::Random { seed: 2 }, None);
        let (b3, _) = s.next_batch(4, &Sampler::Random { seed: 3 }, None);
        assert_eq!(b3.len(), 2); // pool exhausted
        assert_eq!(s.labeled_count(), 10);
        assert_eq!(s.cycles_completed(), 3);
        // No record labeled twice: all input values distinct across batches.
        let mut seen: Vec<i64> = [b1, b2, b3]
            .iter()
            .flat_map(|b| b.inputs.data().iter().map(|&x| x as i64).collect::<Vec<_>>())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn least_confidence_picks_uncertain_first() {
        let candidates = vec![10, 20, 30];
        let scores = vec![
            vec![0.99, 0.01], // confident
            vec![0.55, 0.45], // uncertain
            vec![0.80, 0.20],
        ];
        let pick = Sampler::LeastConfidence.select(1, &candidates, Some(&scores));
        assert_eq!(pick, vec![20]);
    }

    #[test]
    fn margin_and_entropy_orderings() {
        let candidates = vec![0, 1];
        let scores = vec![vec![0.5, 0.5], vec![0.9, 0.1]];
        assert_eq!(Sampler::Margin.select(1, &candidates, Some(&scores)), vec![0]);
        assert_eq!(Sampler::Entropy.select(1, &candidates, Some(&scores)), vec![0]);
    }

    #[test]
    fn score_samplers_degrade_gracefully_without_scores() {
        let candidates = vec![3, 4, 5];
        assert_eq!(Sampler::Entropy.select(2, &candidates, None), vec![3, 4]);
    }

    #[test]
    fn unlabeled_tracking() {
        let mut s = LabelingSession::new(pool(5), 0.5);
        assert_eq!(s.unlabeled_indices().len(), 5);
        s.next_batch(2, &Sampler::Random { seed: 7 }, None);
        assert_eq!(s.unlabeled_indices().len(), 3);
        assert_eq!(s.unlabeled_inputs().len(), 3);
        assert_eq!(s.pool_size(), 5);
    }
}
