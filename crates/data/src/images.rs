//! Synthetic blood-smear-like image dataset.
//!
//! Substitutes for the Malaria cell-image dataset (unavailable offline).
//! Every record is a small RGB image of a roughly circular "cell" with
//! noisy texture; *infected* records additionally contain 1–3 small
//! high-contrast parasite blobs at random positions. The classification is
//! learnable by a small convnet (local blob detection) but not trivially by
//! a linear model on raw pixels, matching the role the Malaria dataset
//! plays in the paper's FTU workload.

use crate::dataset::Dataset;
use nautilus_tensor::Tensor;
use nautilus_util::rng::{Rng, SeedableRng, StdRng};

/// Configuration of the synthetic cell-image dataset.
#[derive(Debug, Clone)]
pub struct ImageDatasetConfig {
    /// Image height/width (square, CHW layout with 3 channels).
    pub size: usize,
    /// Fraction of infected (label 1) records.
    pub infected_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageDatasetConfig {
    fn default() -> Self {
        ImageDatasetConfig { size: 16, infected_rate: 0.5, seed: 23 }
    }
}

impl ImageDatasetConfig {
    /// Number of classes (uninfected / infected).
    pub const NUM_CLASSES: usize = 2;

    /// Generates `n` labeled records: inputs `[n, 3, size, size]`, labels
    /// `[n]` with `1.0` = infected.
    pub fn generate(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = self.size;
        let mut data = vec![0.0f32; n * 3 * s * s];
        let mut labels = vec![0.0f32; n];
        let center = (s as f32 - 1.0) / 2.0;
        let radius = s as f32 * 0.45;
        for r in 0..n {
            let infected = rng.gen_bool(self.infected_rate);
            labels[r] = if infected { 1.0 } else { 0.0 };
            let cell_tint: [f32; 3] =
                [rng.gen_range(0.6..0.9), rng.gen_range(0.3..0.5), rng.gen_range(0.3..0.5)];
            let img = &mut data[r * 3 * s * s..(r + 1) * 3 * s * s];
            for y in 0..s {
                for x in 0..s {
                    let dy = y as f32 - center;
                    let dx = x as f32 - center;
                    let inside = (dx * dx + dy * dy).sqrt() <= radius;
                    for c in 0..3 {
                        let base = if inside { cell_tint[c] } else { 0.05 };
                        img[c * s * s + y * s + x] = base + rng.gen_range(-0.05f32..0.05);
                    }
                }
            }
            if infected {
                let blobs = rng.gen_range(1..=3usize);
                for _ in 0..blobs {
                    // Parasite blob: dark purple dot, 2x2, inside the cell.
                    let lim = (s as f32 * 0.25) as usize;
                    let by = rng.gen_range(lim..s - lim - 1);
                    let bx = rng.gen_range(lim..s - lim - 1);
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let y = by + dy;
                        let x = bx + dx;
                        img[y * s + x] = 0.1; // R low
                        img[s * s + y * s + x] = 0.05; // G low
                        img[2 * s * s + y * s + x] = 0.95; // B high
                    }
                }
            }
        }
        Dataset::new(
            Tensor::from_vec([n, 3, s, s], data).expect("sized by construction"),
            Tensor::from_vec([n], labels).expect("sized by construction"),
        )
        .expect("counts match by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let cfg = ImageDatasetConfig::default();
        let d = cfg.generate(40);
        assert_eq!(d.inputs.shape().0, vec![40, 3, 16, 16]);
        assert_eq!(d.labels.shape().0, vec![40]);
        assert!(d.targets().iter().all(|&t| t == 0 || t == 1));
    }

    #[test]
    fn infected_rate_roughly_honored() {
        let cfg = ImageDatasetConfig { infected_rate: 0.5, ..Default::default() };
        let d = cfg.generate(400);
        let pos = d.targets().iter().filter(|&&t| t == 1).count();
        assert!((120..280).contains(&pos), "positives {pos}");
    }

    #[test]
    fn infected_images_have_blue_blobs() {
        let cfg = ImageDatasetConfig::default();
        let d = cfg.generate(100);
        let s = cfg.size;
        for r in 0..100 {
            let img = &d.inputs.data()[r * 3 * s * s..(r + 1) * 3 * s * s];
            let max_blue = img[2 * s * s..3 * s * s].iter().fold(0.0f32, |m, &x| m.max(x));
            if d.targets()[r] == 1 {
                assert!(max_blue > 0.9, "infected record {r} lacks blob");
            } else {
                assert!(max_blue < 0.9, "clean record {r} has blob-level blue");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ImageDatasetConfig::default();
        assert_eq!(cfg.generate(5), cfg.generate(5));
    }
}
