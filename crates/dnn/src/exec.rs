//! Forward and backward execution of model graphs on mini-batches.
//!
//! The forward pass computes every node output in topological order; the
//! backward pass visits nodes in reverse order but *only* where gradients
//! are needed: a node participates iff a trainable layer is reachable
//! through its ancestors ([`ModelGraph::requires_grad`]). This reproduces
//! the cost structure the paper's profiler assumes — trainable layers pay
//! forward + input-gradient + parameter-gradient, frozen non-materializable
//! layers pay forward + input-gradient, and materializable layers pay
//! forward only (§4.1).

use crate::graph::{ModelGraph, NodeId};
use crate::layer::{Activation, LayerKind};
use nautilus_tensor::ops::{
    add, add_assign, avg_pool2d_global, conv2d, conv2d_backward, gelu, gelu_backward,
    layer_norm, layer_norm_backward, matmul, matmul_ta, matmul_tb, max_pool2d,
    max_pool2d_backward, relu, relu_backward, scale, softmax_last, softmax_last_backward,
    sum_rows, tanh_act, tanh_backward,
};
use nautilus_tensor::{Shape, Tensor, TensorError};
use nautilus_util::telemetry;
use nautilus_util::pool;
use std::collections::HashMap;

/// Batched tensors for a graph's input placeholders.
#[derive(Debug, Clone, Default)]
pub struct BatchInputs {
    map: HashMap<NodeId, Tensor>,
}

impl BatchInputs {
    /// Empty input set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `tensor` (batched: leading batch axis) to input node `id`.
    pub fn insert(&mut self, id: NodeId, tensor: Tensor) -> &mut Self {
        self.map.insert(id, tensor);
        self
    }

    /// Lookup.
    pub fn get(&self, id: NodeId) -> Option<&Tensor> {
        self.map.get(&id)
    }
}

/// Execution error: graph/shape/data problems surfaced with the node name.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Node where the failure occurred.
    pub node: String,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution failed at '{}': {}", self.node, self.message)
    }
}

impl std::error::Error for ExecError {}

pub(crate) fn exec_err(node: &str, e: impl std::fmt::Display) -> ExecError {
    ExecError { node: node.to_string(), message: e.to_string() }
}

/// Per-node cache retained by the forward pass for the backward pass.
///
/// Fields are implementation details of each layer's backward formula; the
/// variant docs name them in order.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum Cache {
    /// No cache needed.
    None,
    /// Dense: input and pre-activation.
    Dense { input: Tensor, pre: Tensor },
    /// Embedding: ids, LN cache.
    Embedding { ids: Tensor, xhat: Tensor, inv_std: Vec<f32> },
    /// Transformer block internals.
    Transformer(Box<TransformerCache>),
    /// Adapter: input, bottleneck pre-activation, bottleneck activation.
    Adapter { input: Tensor, hidden_pre: Tensor, hidden: Tensor },
    /// Conv2d: input and pre-activation.
    Conv { input: Tensor, pre: Tensor },
    /// Residual block internals.
    ResBlock(Box<ResBlockCache>),
    /// Max pooling: input shape + argmax indices.
    MaxPool { in_shape: Shape, argmax: Vec<u32> },
    /// Concat: innermost widths of each input.
    Concat { widths: Vec<usize> },
    /// Shape-only caches (flatten/pool).
    InShape(Shape),
}

/// Cached intermediates of one transformer block forward.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// `[batch * heads]` attention probability matrices, each `[S, S]`.
    attn: Vec<Tensor>,
    ctx: Tensor,
    ln1_xhat: Tensor,
    ln1_inv_std: Vec<f32>,
    h1: Tensor,
    ff_pre: Tensor,
    ff_act: Tensor,
    ln2_xhat: Tensor,
    ln2_inv_std: Vec<f32>,
}

/// Cached intermediates of one residual block forward.
#[derive(Debug, Clone)]
pub struct ResBlockCache {
    x: Tensor,
    pre1: Tensor,
    a1: Tensor,
    sum_pre: Tensor,
}

/// Result of a forward pass: every node's batched output plus caches.
#[derive(Debug)]
pub struct ForwardResult {
    /// Output of each node, indexed by node id.
    pub outputs: Vec<Tensor>,
    caches: Vec<Cache>,
}

impl Cache {
    /// Bytes of activation data this cache retains for the backward pass.
    pub fn bytes(&self) -> usize {
        let t = |x: &Tensor| x.len() * nautilus_tensor::ELEM_BYTES;
        match self {
            Cache::None => 0,
            Cache::Dense { input, pre } => t(input) + t(pre),
            Cache::Embedding { ids, xhat, inv_std } => {
                t(ids) + t(xhat) + inv_std.len() * 4
            }
            Cache::Transformer(tc) => {
                t(&tc.x)
                    + t(&tc.q)
                    + t(&tc.k)
                    + t(&tc.v)
                    + tc.attn.iter().map(&t).sum::<usize>()
                    + t(&tc.ctx)
                    + t(&tc.ln1_xhat)
                    + tc.ln1_inv_std.len() * 4
                    + t(&tc.h1)
                    + t(&tc.ff_pre)
                    + t(&tc.ff_act)
                    + t(&tc.ln2_xhat)
                    + tc.ln2_inv_std.len() * 4
            }
            Cache::Adapter { input, hidden_pre, hidden } => {
                t(input) + t(hidden_pre) + t(hidden)
            }
            Cache::Conv { input, pre } => t(input) + t(pre),
            Cache::ResBlock(rc) => t(&rc.x) + t(&rc.pre1) + t(&rc.a1) + t(&rc.sum_pre),
            Cache::MaxPool { argmax, .. } => argmax.len() * 4,
            Cache::Concat { widths } => widths.len() * std::mem::size_of::<usize>(),
            Cache::InShape(_) => 0,
        }
    }
}

impl ForwardResult {
    /// Output of a specific node.
    pub fn output(&self, id: NodeId) -> &Tensor {
        &self.outputs[id.index()]
    }

    /// Bytes actually retained by this forward pass at the loss barrier:
    /// every node output plus every backward cache.
    ///
    /// This is the *measured* counterpart of the §4.3.3 estimator's
    /// forward-live set — used to validate that the analytical bound tracks
    /// reality within a constant factor (this implementation clones inputs
    /// into caches, so the measurement double-counts relative to a
    /// zero-copy framework).
    pub fn retained_activation_bytes(&self) -> usize {
        let outputs: usize =
            self.outputs.iter().map(|t| t.len() * nautilus_tensor::ELEM_BYTES).sum();
        let caches: usize = self.caches.iter().map(Cache::bytes).sum();
        outputs + caches
    }
}

/// Gradients produced by a backward pass.
#[derive(Debug, Default)]
pub struct Gradients {
    /// Parameter gradients for trainable nodes (`node id -> grads`, aligned
    /// with the node's parameter order).
    pub params: HashMap<NodeId, Vec<Tensor>>,
}

/// Per-node parameter overrides: a variant's trainable tensors applied to
/// a shared base graph at execution time, without cloning the graph.
///
/// Keyed by node id; each value replaces that node's `params` wholesale.
/// The `Arc<Vec<Tensor>>` granularity lets a registry share one resident
/// copy of structurally identical deltas across tenants.
pub type ParamOverrides = HashMap<NodeId, std::sync::Arc<Vec<Tensor>>>;

/// Runs the forward pass. `training` controls whether backward caches are
/// retained.
pub fn forward(
    graph: &ModelGraph,
    inputs: &BatchInputs,
    training: bool,
) -> Result<ForwardResult, ExecError> {
    forward_with_overrides(graph, inputs, training, None)
}

/// [`forward`] with per-node parameter overrides (see [`ParamOverrides`]).
///
/// Nodes absent from the override map execute with their own `params`;
/// overridden nodes execute with the supplied tensors. This is how a
/// trainable-stripped base graph serves any of its variants.
pub fn forward_with_overrides(
    graph: &ModelGraph,
    inputs: &BatchInputs,
    training: bool,
    overrides: Option<&ParamOverrides>,
) -> Result<ForwardResult, ExecError> {
    let _sp = telemetry::span("dnn", "dnn.forward");
    let n = graph.len();
    let mut outputs: Vec<Option<Tensor>> = vec![None; n];
    let mut caches: Vec<Cache> = Vec::with_capacity(n);
    let requires_grad = graph.requires_grad();

    for id in graph.ids() {
        let node = graph.node(id);
        let keep_cache = training && requires_grad[id.index()];
        let parent_outputs: Vec<&Tensor> = node
            .inputs
            .iter()
            .map(|p| outputs[p.index()].as_ref().expect("topological order"))
            .collect();
        let params: &[Tensor] = overrides
            .and_then(|o| o.get(&id))
            .map_or(&node.params[..], |v| &v[..]);
        let (out, cache) = run_forward(node, params, &parent_outputs, inputs, id, keep_cache)
            .map_err(|e| exec_err(&node.name, e))?;
        outputs[id.index()] = Some(out);
        caches.push(if keep_cache { cache } else { Cache::None });
    }

    Ok(ForwardResult {
        outputs: outputs.into_iter().map(|o| o.expect("all nodes computed")).collect(),
        caches,
    })
}

/// Inference forward over a stacked batch of `batch` records: one graph
/// walk, no backward caches, and kernel dispatch pinned to *per-record*
/// work via [`nautilus_tensor::ops::with_batch_invariant_dispatch`].
///
/// The pinning is what makes micro-batched serving deterministic: the
/// naive-vs-blocked kernel thresholds compare total multiply-adds, which
/// scale with the leading batch axis, and the two kernel families differ
/// in rounding. Dividing the work estimate by `batch` makes every kernel
/// choice a function of one record's shape only, so each record's rows in
/// the stacked output are bit-identical to running that record alone
/// (`forward` with a batch of 1). All graph ops are record-separable
/// (dense/conv rows, per-record attention fan-out, per-row norms), so no
/// other batch-size dependence exists.
pub fn forward_batch(
    graph: &ModelGraph,
    inputs: &BatchInputs,
    batch: usize,
) -> Result<ForwardResult, ExecError> {
    let _sp = telemetry::span("dnn", "dnn.forward_batch");
    nautilus_tensor::ops::with_batch_invariant_dispatch(batch, || forward(graph, inputs, false))
}

/// One tenant's slice of a shared-trunk batch: `rows` consecutive records
/// of the stacked input, executed with the variant's [`ParamOverrides`].
pub struct TrunkGroup<'a> {
    /// Number of consecutive records belonging to this group.
    pub rows: usize,
    /// The variant's trainable parameters (`None` = graph's own params).
    pub overrides: Option<&'a ParamOverrides>,
}

/// Inference over a stacked batch spanning several variants of one base:
/// the tenant-independent trunk (nodes with `requires_grad = false`) runs
/// **once** over the union batch, then each group's suffix (adapters,
/// heads, and any frozen layers above them) runs on its own row slice with
/// its own parameter overrides — the serving dual of the paper's FUSE
/// optimization.
///
/// Bit-identity with solo serving is preserved by the same dispatch
/// pinning as [`forward_batch`]: the trunk pass divides kernel work
/// estimates by the union batch and each suffix pass by its group's rows,
/// so every kernel choice is a function of one record's shape only, and
/// all graph ops are record-separable. Each returned tensor is therefore
/// bit-identical to running that group's records alone through the full
/// variant graph.
///
/// `stacked` must hold `sum(rows)` records of `input`'s per-record shape;
/// returns one stacked output tensor (of node `output`) per group, in
/// order.
pub fn forward_batch_shared_trunk(
    graph: &ModelGraph,
    input: NodeId,
    output: NodeId,
    stacked: Tensor,
    groups: &[TrunkGroup<'_>],
) -> Result<Vec<Tensor>, ExecError> {
    let _sp = telemetry::span("dnn", "dnn.forward_shared_trunk");
    let n = graph.len();
    if output.index() >= n || input.index() >= n {
        return Err(exec_err("graph", "input/output node out of range"));
    }
    let total: usize = groups.iter().map(|g| g.rows).sum();
    if total != stacked.shape().dim(0) || groups.iter().any(|g| g.rows == 0) {
        return Err(exec_err(
            "graph",
            format!(
                "group rows sum to {total}, stacked batch is {}",
                stacked.shape().dim(0)
            ),
        ));
    }
    let rg = graph.requires_grad();

    // Trunk pass: every tenant-independent node, once, over the union batch.
    let mut binputs = BatchInputs::new();
    binputs.insert(input, stacked);
    let mut trunk_out: Vec<Option<Tensor>> = vec![None; n];
    nautilus_tensor::ops::with_batch_invariant_dispatch(total, || -> Result<(), ExecError> {
        for id in graph.ids() {
            if rg[id.index()] {
                continue;
            }
            let node = graph.node(id);
            // A trunk node's parents are all trunk: requires_grad is
            // monotone along edges, so !rg[child] implies !rg[parent].
            let parents: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|p| trunk_out[p.index()].as_ref().expect("trunk parents are trunk"))
                .collect();
            let (out, _) = run_forward(node, &node.params, &parents, &binputs, id, false)
                .map_err(|e| exec_err(&node.name, e))?;
            trunk_out[id.index()] = Some(out);
        }
        Ok(())
    })?;

    // Fully frozen graph: no per-tenant suffix, just split the rows.
    if !rg[output.index()] {
        let shared = trunk_out[output.index()].take().expect("output computed in trunk");
        let mut row = 0usize;
        return Ok(groups
            .iter()
            .map(|g| {
                let t = slice_rows(&shared, row, row + g.rows);
                row += g.rows;
                t
            })
            .collect());
    }

    // Boundary: trunk nodes feeding at least one per-tenant node.
    let mut needed = vec![false; n];
    for id in graph.ids() {
        if rg[id.index()] {
            for p in &graph.node(id).inputs {
                if !rg[p.index()] {
                    needed[p.index()] = true;
                }
            }
        }
    }

    let empty = BatchInputs::new();
    let mut results = Vec::with_capacity(groups.len());
    let mut row = 0usize;
    for g in groups {
        let (a, b) = (row, row + g.rows);
        row = b;
        let out = nautilus_tensor::ops::with_batch_invariant_dispatch(
            g.rows,
            || -> Result<Tensor, ExecError> {
                let mut outs: Vec<Option<Tensor>> = vec![None; n];
                for (i, need) in needed.iter().enumerate() {
                    if *need {
                        outs[i] =
                            Some(slice_rows(trunk_out[i].as_ref().expect("boundary is trunk"), a, b));
                    }
                }
                for id in graph.ids() {
                    if !rg[id.index()] {
                        continue;
                    }
                    let node = graph.node(id);
                    let parents: Vec<&Tensor> = node
                        .inputs
                        .iter()
                        .map(|p| outs[p.index()].as_ref().expect("suffix parents available"))
                        .collect();
                    let params: &[Tensor] = g
                        .overrides
                        .and_then(|o| o.get(&id))
                        .map_or(&node.params[..], |v| &v[..]);
                    let (out, _) = run_forward(node, params, &parents, &empty, id, false)
                        .map_err(|e| exec_err(&node.name, e))?;
                    outs[id.index()] = Some(out);
                }
                Ok(outs[output.index()].take().expect("output computed in suffix"))
            },
        )?;
        results.push(out);
    }
    Ok(results)
}

/// Copies record rows `[a, b)` out of a batch-leading stacked tensor.
fn slice_rows(t: &Tensor, a: usize, b: usize) -> Tensor {
    let per = t.shape().num_elements() / t.shape().dim(0);
    let mut dims = t.shape().0.clone();
    dims[0] = b - a;
    Tensor::from_vec(Shape::new(dims), t.data()[a * per..b * per].to_vec())
        .expect("row slice preserves shape")
}

/// Runs the backward pass from per-output-node gradients, returning
/// parameter gradients for every trainable node reached.
pub fn backward(
    graph: &ModelGraph,
    fwd: &ForwardResult,
    out_grads: HashMap<NodeId, Tensor>,
) -> Result<Gradients, ExecError> {
    let _sp = telemetry::span("dnn", "dnn.backward");
    let n = graph.len();
    let requires_grad = graph.requires_grad();
    let mut grads: Vec<Option<Tensor>> = vec![None; n];
    for (id, g) in out_grads {
        if requires_grad[id.index()] {
            accumulate(&mut grads[id.index()], g);
        }
    }
    let mut result = Gradients::default();

    for idx in (0..n).rev() {
        let Some(grad) = grads[idx].take() else { continue };
        let id = NodeId(idx);
        let node = graph.node(id);
        let parent_outputs: Vec<&Tensor> = node
            .inputs
            .iter()
            .map(|p| &fwd.outputs[p.index()])
            .collect();
        let needs_input_grads: Vec<bool> =
            node.inputs.iter().map(|p| requires_grad[p.index()]).collect();
        let out = run_backward(
            node,
            &fwd.caches[idx],
            &parent_outputs,
            &fwd.outputs[idx],
            &grad,
            &needs_input_grads,
        )
        .map_err(|e| exec_err(&node.name, e))?;
        if node.trainable() {
            debug_assert_eq!(out.param_grads.len(), node.params.len());
            result.params.insert(id, out.param_grads);
        }
        for (p, g) in node.inputs.iter().zip(out.input_grads) {
            if let Some(g) = g {
                accumulate(&mut grads[p.index()], g);
            }
        }
    }
    Ok(result)
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        None => *slot = Some(g),
        Some(acc) => {
            add_assign(acc, &g).expect("gradient shapes match");
        }
    }
}

struct BackwardOut {
    input_grads: Vec<Option<Tensor>>,
    param_grads: Vec<Tensor>,
}

pub(crate) fn apply_act(act: Activation, pre: &Tensor) -> Tensor {
    match act {
        Activation::None => pre.clone(),
        Activation::Relu => relu(pre),
        Activation::Gelu => gelu(pre),
        Activation::Tanh => tanh_act(pre),
    }
}

fn act_backward(act: Activation, pre: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    match act {
        Activation::None => Ok(grad.clone()),
        Activation::Relu => relu_backward(pre, grad),
        Activation::Gelu => gelu_backward(pre, grad),
        Activation::Tanh => tanh_backward(&tanh_act(pre), grad),
    }
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run_forward(
    node: &crate::graph::Node,
    params: &[Tensor],
    parents: &[&Tensor],
    inputs: &BatchInputs,
    id: NodeId,
    keep_cache: bool,
) -> Result<(Tensor, Cache), TensorError> {
    let p = params;
    match &node.kind {
        LayerKind::Input { shape } => {
            let t = inputs.get(id).ok_or_else(|| {
                TensorError::Incompatible(format!("no data bound to input '{}'", node.name))
            })?;
            let expected = Shape::new(shape.clone());
            let got = t.shape().without_batch();
            got.expect_eq(&expected)?;
            Ok((t.clone(), Cache::None))
        }
        LayerKind::Embedding { vocab, dim, .. } => {
            let ids = parents[0];
            let b = ids.shape().dim(0);
            let s = ids.shape().dim(1);
            let (tok, pos, gamma, beta) = (&p[0], &p[1], &p[2], &p[3]);
            let mut e = vec![0.0f32; b * s * dim];
            for bi in 0..b {
                for si in 0..s {
                    let tid = ids.data()[bi * s + si] as usize;
                    if tid >= *vocab {
                        return Err(TensorError::Incompatible(format!(
                            "token id {tid} out of vocab {vocab}"
                        )));
                    }
                    let dst = &mut e[(bi * s + si) * dim..(bi * s + si + 1) * dim];
                    let tokrow = &tok.data()[tid * dim..(tid + 1) * dim];
                    let posrow = &pos.data()[si * dim..(si + 1) * dim];
                    for ((d, &t), &q) in dst.iter_mut().zip(tokrow).zip(posrow) {
                        *d = t + q;
                    }
                }
            }
            let e = Tensor::from_vec([b, s, *dim], e)?;
            let (out, xhat, inv_std) = layer_norm(&e, gamma, beta, 1e-5)?;
            let cache = if keep_cache {
                Cache::Embedding { ids: ids.clone(), xhat, inv_std }
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::TransformerBlock { dim, heads, .. } => {
            transformer_forward(parents[0], p, *dim, *heads, keep_cache)
        }
        LayerKind::Dense { act, .. } => {
            let x = parents[0];
            let mut pre = matmul(x, &p[0])?;
            add_assign(&mut pre, &p[1])?;
            let out = apply_act(*act, &pre);
            let cache = if keep_cache {
                Cache::Dense { input: x.clone(), pre }
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::Adapter { .. } => {
            let x = parents[0];
            let mut hidden_pre = matmul(x, &p[0])?;
            add_assign(&mut hidden_pre, &p[1])?;
            let hidden = relu(&hidden_pre);
            let mut up = matmul(&hidden, &p[2])?;
            add_assign(&mut up, &p[3])?;
            let out = add(x, &up)?;
            let cache = if keep_cache {
                Cache::Adapter { input: x.clone(), hidden_pre, hidden }
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::Add => {
            let mut out = parents[0].clone();
            for t in &parents[1..] {
                add_assign(&mut out, t)?;
            }
            Ok((out, Cache::None))
        }
        LayerKind::ConcatLast => {
            let widths: Vec<usize> = parents.iter().map(|t| t.shape().last_dim()).collect();
            let rows = parents[0].shape().outer_elements();
            let total: usize = widths.iter().sum();
            let mut data = vec![0.0f32; rows * total];
            let mut off = 0usize;
            for (t, &w) in parents.iter().zip(&widths) {
                let td = t.data();
                for r in 0..rows {
                    data[r * total + off..r * total + off + w]
                        .copy_from_slice(&td[r * w..(r + 1) * w]);
                }
                off += w;
            }
            let out_shape = parents[0].shape().with_last_dim(total);
            let cache =
                if keep_cache { Cache::Concat { widths } } else { Cache::None };
            Ok((Tensor::from_vec(out_shape, data)?, cache))
        }
        LayerKind::MeanPoolSeq => {
            let x = parents[0]; // [B, S, D]
            let (b, s, d) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
            let mut out = vec![0.0f32; b * d];
            let inv = 1.0 / s as f32;
            for bi in 0..b {
                for si in 0..s {
                    let row = &x.data()[(bi * s + si) * d..(bi * s + si + 1) * d];
                    let dst = &mut out[bi * d..(bi + 1) * d];
                    for (o, &v) in dst.iter_mut().zip(row) {
                        *o += v * inv;
                    }
                }
            }
            let cache = if keep_cache {
                Cache::InShape(x.shape().clone())
            } else {
                Cache::None
            };
            Ok((Tensor::from_vec([b, d], out)?, cache))
        }
        LayerKind::Conv2d { stride, pad, act, .. } => {
            let x = parents[0];
            let pre = conv2d(x, &p[0], &p[1], *stride, *pad)?;
            let out = apply_act(*act, &pre);
            let cache = if keep_cache {
                Cache::Conv { input: x.clone(), pre }
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
            let x = parents[0];
            let pre1 = conv2d(x, &p[0], &p[1], *stride, 1)?;
            let a1 = relu(&pre1);
            let a2 = conv2d(&a1, &p[2], &p[3], 1, 1)?;
            let skip = if *in_ch != *out_ch || *stride != 1 {
                conv2d(x, &p[4], &p[5], *stride, 0)?
            } else {
                x.clone()
            };
            let sum_pre = add(&a2, &skip)?;
            let out = relu(&sum_pre);
            let cache = if keep_cache {
                Cache::ResBlock(Box::new(ResBlockCache { x: x.clone(), pre1, a1, sum_pre }))
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::MaxPool2d { k, stride } => {
            let x = parents[0];
            let (out, argmax) = max_pool2d(x, *k, *stride)?;
            let cache = if keep_cache {
                Cache::MaxPool { in_shape: x.shape().clone(), argmax }
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::GlobalAvgPool => {
            let x = parents[0];
            let out = avg_pool2d_global(x)?;
            let cache = if keep_cache {
                Cache::InShape(x.shape().clone())
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::Flatten => {
            let x = parents[0];
            let b = x.shape().dim(0);
            let rest = x.len() / b.max(1);
            let out = x.reshape([b, rest])?;
            let cache = if keep_cache {
                Cache::InShape(x.shape().clone())
            } else {
                Cache::None
            };
            Ok((out, cache))
        }
        LayerKind::SliceSeq { index } => {
            let x = parents[0]; // [B, S, D]
            let (b, s, d) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
            let mut out = vec![0.0f32; b * d];
            for bi in 0..b {
                out[bi * d..(bi + 1) * d]
                    .copy_from_slice(&x.data()[(bi * s + index) * d..(bi * s + index + 1) * d]);
            }
            let cache = if keep_cache {
                Cache::InShape(x.shape().clone())
            } else {
                Cache::None
            };
            Ok((Tensor::from_vec([b, d], out)?, cache))
        }
        LayerKind::ZerosLike { shape } => {
            let b = parents[0].shape().dim(0);
            Ok((Tensor::zeros(Shape::new(shape.clone()).with_batch(b)), Cache::None))
        }
    }
}

/// Extracts head `h` of record `b` from `[B, S, D]` as `[S, dh]`.
fn slice_head(x: &Tensor, b: usize, s: usize, d: usize, h: usize, dh: usize) -> Tensor {
    let mut out = vec![0.0f32; s * dh];
    let base = b * s * d + h * dh;
    for si in 0..s {
        out[si * dh..(si + 1) * dh]
            .copy_from_slice(&x.data()[base + si * d..base + si * d + dh]);
    }
    Tensor::from_vec([s, dh], out).expect("head slice shape")
}

/// Adds `[S, dh]` into head `h` of record `b` of `[B, S, D]`.
fn add_head(dst: &mut Tensor, src: &Tensor, b: usize, s: usize, d: usize, h: usize, dh: usize) {
    let base = b * s * d + h * dh;
    let dd = dst.data_mut();
    for si in 0..s {
        let drow = &mut dd[base + si * d..base + si * d + dh];
        let srow = &src.data()[si * dh..(si + 1) * dh];
        for (o, &v) in drow.iter_mut().zip(srow) {
            *o += v;
        }
    }
}

fn transformer_forward(
    x: &Tensor,
    p: &[Tensor],
    dim: usize,
    heads: usize,
    keep_cache: bool,
) -> Result<(Tensor, Cache), TensorError> {
    let (b, s) = (x.shape().dim(0), x.shape().dim(1));
    let dh = dim / heads;
    let scale_f = 1.0 / (dh as f32).sqrt();
    let (wq, bq, wk, bk, wv, bv, wo, bo) =
        (&p[0], &p[1], &p[2], &p[3], &p[4], &p[5], &p[6], &p[7]);
    let (ln1g, ln1b) = (&p[8], &p[9]);
    let (w1, b1, w2, b2) = (&p[10], &p[11], &p[12], &p[13]);
    let (ln2g, ln2b) = (&p[14], &p[15]);

    let mut q = matmul(x, wq)?;
    add_assign(&mut q, bq)?;
    let mut k = matmul(x, wk)?;
    add_assign(&mut k, bk)?;
    let mut v = matmul(x, wv)?;
    add_assign(&mut v, bv)?;

    // Attention cores are independent per record; fan records out over the
    // pool. Each record's ctx block and attention matrices come back in
    // record order, so assembly (and results) are identical to the
    // sequential loop at any thread count. Each task's tensors span one
    // record, so its dispatch-site work estimates are already per-record:
    // pin the divisor to 1 so the kernel choice matches this record served
    // alone even when the enclosing `forward_batch` scope installed a
    // batch divisor.
    let record_attn = |bi: usize| -> Result<(Tensor, Vec<Tensor>), TensorError> {
        nautilus_tensor::ops::with_batch_invariant_dispatch(1, || {
            let mut ctx_rec = Tensor::zeros([1, s, dim]);
            let mut attn_rec = Vec::with_capacity(if keep_cache { heads } else { 0 });
            for h in 0..heads {
                let qh = slice_head(&q, bi, s, dim, h, dh);
                let kh = slice_head(&k, bi, s, dim, h, dh);
                let vh = slice_head(&v, bi, s, dim, h, dh);
                let scores = scale(&matmul_tb(&qh, &kh)?, scale_f);
                let attn = softmax_last(&scores);
                let ctx_h = matmul(&attn, &vh)?;
                add_head(&mut ctx_rec, &ctx_h, 0, s, dim, h, dh);
                if keep_cache {
                    attn_rec.push(attn);
                }
            }
            Ok((ctx_rec, attn_rec))
        })
    };
    let per_record: Vec<Result<(Tensor, Vec<Tensor>), TensorError>> = pool::join_all(
        (0..b)
            .map(|bi| {
                let f = &record_attn;
                Box::new(move || f(bi))
                    as Box<dyn FnOnce() -> Result<(Tensor, Vec<Tensor>), TensorError> + Send + '_>
            })
            .collect(),
    );
    let mut ctx = Tensor::zeros(x.shape().clone());
    let mut attn_mats = Vec::with_capacity(if keep_cache { b * heads } else { 0 });
    for (bi, result) in per_record.into_iter().enumerate() {
        let (ctx_rec, attn_rec) = result?;
        ctx.data_mut()[bi * s * dim..(bi + 1) * s * dim].copy_from_slice(ctx_rec.data());
        attn_mats.extend(attn_rec);
    }
    let mut ao = matmul(&ctx, wo)?;
    add_assign(&mut ao, bo)?;
    let res1 = add(x, &ao)?;
    let (h1, ln1_xhat, ln1_inv_std) = layer_norm(&res1, ln1g, ln1b, 1e-5)?;
    let mut ff_pre = matmul(&h1, w1)?;
    add_assign(&mut ff_pre, b1)?;
    let ff_act = gelu(&ff_pre);
    let mut ff = matmul(&ff_act, w2)?;
    add_assign(&mut ff, b2)?;
    let res2 = add(&h1, &ff)?;
    let (out, ln2_xhat, ln2_inv_std) = layer_norm(&res2, ln2g, ln2b, 1e-5)?;

    let cache = if keep_cache {
        Cache::Transformer(Box::new(TransformerCache {
            x: x.clone(),
            q,
            k,
            v,
            attn: attn_mats,
            ctx,
            ln1_xhat,
            ln1_inv_std,
            h1,
            ff_pre,
            ff_act,
            ln2_xhat,
            ln2_inv_std,
        }))
    } else {
        Cache::None
    };
    Ok((out, cache))
}

#[allow(clippy::too_many_lines)]
fn transformer_backward(
    tc: &TransformerCache,
    p: &[Tensor],
    dim: usize,
    heads: usize,
    dout: &Tensor,
    trainable: bool,
    need_input_grad: bool,
) -> Result<BackwardOut, TensorError> {
    let (b, s) = (tc.x.shape().dim(0), tc.x.shape().dim(1));
    let dh = dim / heads;
    let scale_f = 1.0 / (dh as f32).sqrt();
    let (wq, wk, wv, wo) = (&p[0], &p[2], &p[4], &p[6]);
    let (ln1g, w1, w2, ln2g) = (&p[8], &p[10], &p[12], &p[14]);

    // Output layer norm.
    let (dres2, dg2, db2ln) = layer_norm_backward(&tc.ln2_xhat, &tc.ln2_inv_std, ln2g, dout)?;
    // Feed-forward branch.
    let dff = &dres2;
    let dw2 = matmul_ta(&tc.ff_act, dff)?;
    let db2 = sum_rows(dff)?;
    let dff_act = matmul_tb_weight(dff, w2)?;
    let dff_pre = gelu_backward(&tc.ff_pre, &dff_act)?;
    let dw1 = matmul_ta(&tc.h1, &dff_pre)?;
    let db1 = sum_rows(&dff_pre)?;
    let mut dh1 = dres2.clone(); // residual path
    add_assign(&mut dh1, &matmul_tb_weight(&dff_pre, w1)?)?;
    // Attention layer norm.
    let (dres1, dg1, db1ln) = layer_norm_backward(&tc.ln1_xhat, &tc.ln1_inv_std, ln1g, &dh1)?;
    // Attention output projection.
    let dao = &dres1;
    let dwo = matmul_ta(&tc.ctx, dao)?;
    let dbo = sum_rows(dao)?;
    let dctx = matmul_tb_weight(dao, wo)?;
    // Attention cores, per record and head.
    // Per-record attention gradients fan out over the pool; each record's
    // dq/dk/dv blocks are assembled back in record order, bit-identical to
    // the sequential loop. As in the forward pass, each task spans one
    // record, so its dispatch estimates are already per-record — pin the
    // divisor to 1 regardless of any scope on the spawning thread.
    type RecGrads = (Tensor, Tensor, Tensor);
    let record_grads = |bi: usize| -> Result<RecGrads, TensorError> {
        nautilus_tensor::ops::with_batch_invariant_dispatch(1, || {
            let mut dq_rec = Tensor::zeros([1, s, dim]);
            let mut dk_rec = Tensor::zeros([1, s, dim]);
            let mut dv_rec = Tensor::zeros([1, s, dim]);
            for h in 0..heads {
                let attn = &tc.attn[bi * heads + h];
                let dctx_h = slice_head(&dctx, bi, s, dim, h, dh);
                let qh = slice_head(&tc.q, bi, s, dim, h, dh);
                let kh = slice_head(&tc.k, bi, s, dim, h, dh);
                let vh = slice_head(&tc.v, bi, s, dim, h, dh);
                let dattn = matmul_tb(&dctx_h, &vh)?;
                let dvh = matmul_ta(attn, &dctx_h)?;
                let dscores = softmax_last_backward(attn, &dattn)?;
                let dqh = scale(&matmul(&dscores, &kh)?, scale_f);
                let dkh = scale(&matmul_ta(&dscores, &qh)?, scale_f);
                add_head(&mut dq_rec, &dqh, 0, s, dim, h, dh);
                add_head(&mut dk_rec, &dkh, 0, s, dim, h, dh);
                add_head(&mut dv_rec, &dvh, 0, s, dim, h, dh);
            }
            Ok((dq_rec, dk_rec, dv_rec))
        })
    };
    let per_record: Vec<Result<RecGrads, TensorError>> = pool::join_all(
        (0..b)
            .map(|bi| {
                let f = &record_grads;
                Box::new(move || f(bi))
                    as Box<dyn FnOnce() -> Result<RecGrads, TensorError> + Send + '_>
            })
            .collect(),
    );
    let mut dq = Tensor::zeros(tc.q.shape().clone());
    let mut dk = Tensor::zeros(tc.k.shape().clone());
    let mut dv = Tensor::zeros(tc.v.shape().clone());
    for (bi, result) in per_record.into_iter().enumerate() {
        let (dq_rec, dk_rec, dv_rec) = result?;
        let range = bi * s * dim..(bi + 1) * s * dim;
        dq.data_mut()[range.clone()].copy_from_slice(dq_rec.data());
        dk.data_mut()[range.clone()].copy_from_slice(dk_rec.data());
        dv.data_mut()[range].copy_from_slice(dv_rec.data());
    }
    // Input projections.
    let param_grads = if trainable {
        vec![
            matmul_ta(&tc.x, &dq)?,
            sum_rows(&dq)?,
            matmul_ta(&tc.x, &dk)?,
            sum_rows(&dk)?,
            matmul_ta(&tc.x, &dv)?,
            sum_rows(&dv)?,
            dwo,
            dbo,
            dg1,
            db1ln,
            dw1,
            db1,
            dw2,
            db2,
            dg2,
            db2ln,
        ]
    } else {
        Vec::new()
    };
    let dx = if need_input_grad {
        let mut dx = dres1.clone(); // residual into the block input
        add_assign(&mut dx, &matmul_tb_weight(&dq, wq)?)?;
        add_assign(&mut dx, &matmul_tb_weight(&dk, wk)?)?;
        add_assign(&mut dx, &matmul_tb_weight(&dv, wv)?)?;
        Some(dx)
    } else {
        None
    };
    Ok(BackwardOut { input_grads: vec![dx], param_grads })
}

#[allow(clippy::too_many_lines)]
fn run_backward(
    node: &crate::graph::Node,
    cache: &Cache,
    parents: &[&Tensor],
    output: &Tensor,
    grad: &Tensor,
    needs_input_grads: &[bool],
) -> Result<BackwardOut, TensorError> {
    let p = &node.params;
    let trainable = node.trainable();
    let no_params = Vec::new();
    match (&node.kind, cache) {
        (LayerKind::Input { .. }, _) => {
            Ok(BackwardOut { input_grads: vec![], param_grads: no_params })
        }
        (LayerKind::Embedding { dim, .. }, Cache::Embedding { ids, xhat, inv_std }) => {
            let gamma = &p[2];
            let (de, dgamma, dbeta) = layer_norm_backward(xhat, inv_std, gamma, grad)?;
            let param_grads = if trainable {
                let (b, s) = (ids.shape().dim(0), ids.shape().dim(1));
                let mut dtok = Tensor::zeros(p[0].shape().clone());
                let mut dpos = Tensor::zeros(p[1].shape().clone());
                for bi in 0..b {
                    for si in 0..s {
                        let tid = ids.data()[bi * s + si] as usize;
                        let src = &de.data()[(bi * s + si) * dim..(bi * s + si + 1) * dim];
                        let trow = &mut dtok.data_mut()[tid * dim..(tid + 1) * dim];
                        for (o, &g) in trow.iter_mut().zip(src) {
                            *o += g;
                        }
                        let prow = &mut dpos.data_mut()[si * dim..(si + 1) * dim];
                        for (o, &g) in prow.iter_mut().zip(src) {
                            *o += g;
                        }
                    }
                }
                vec![dtok, dpos, dgamma, dbeta]
            } else {
                no_params
            };
            // ids are not differentiable.
            Ok(BackwardOut { input_grads: vec![None], param_grads })
        }
        (LayerKind::TransformerBlock { dim, heads, .. }, Cache::Transformer(tc)) => {
            transformer_backward(tc, p, *dim, *heads, grad, trainable, needs_input_grads[0])
        }
        (LayerKind::Dense { act, .. }, Cache::Dense { input, pre }) => {
            let dpre = act_backward(*act, pre, grad)?;
            let param_grads = if trainable {
                vec![matmul_ta(input, &dpre)?, sum_rows(&dpre)?]
            } else {
                no_params
            };
            let dx = if needs_input_grads[0] {
                Some(matmul_tb_weight(&dpre, &p[0])?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads })
        }
        (LayerKind::Adapter { .. }, Cache::Adapter { input, hidden_pre, hidden }) => {
            // out = x + relu(xWd + bd) Wu + bu
            let du = grad; // gradient into the up-projection output
            let mut param_grads = no_params;
            let dh = matmul_tb_weight(du, &p[2])?;
            let dh_pre = relu_backward(hidden_pre, &dh)?;
            if trainable {
                param_grads = vec![
                    matmul_ta(input, &dh_pre)?,
                    sum_rows(&dh_pre)?,
                    matmul_ta(hidden, du)?,
                    sum_rows(du)?,
                ];
            }
            let dx = if needs_input_grads[0] {
                let mut dx = grad.clone(); // residual path
                let through = matmul_tb_weight(&dh_pre, &p[0])?;
                add_assign(&mut dx, &through)?;
                Some(dx)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads })
        }
        (LayerKind::Add, _) => {
            let input_grads = needs_input_grads
                .iter()
                .map(|&need| if need { Some(grad.clone()) } else { None })
                .collect();
            Ok(BackwardOut { input_grads, param_grads: no_params })
        }
        (LayerKind::ConcatLast, Cache::Concat { widths }) => {
            let rows = grad.shape().outer_elements();
            let total = grad.shape().last_dim();
            let mut input_grads = Vec::with_capacity(widths.len());
            let mut off = 0usize;
            for (i, &w) in widths.iter().enumerate() {
                if needs_input_grads[i] {
                    let mut data = vec![0.0f32; rows * w];
                    for r in 0..rows {
                        data[r * w..(r + 1) * w]
                            .copy_from_slice(&grad.data()[r * total + off..r * total + off + w]);
                    }
                    input_grads.push(Some(Tensor::from_vec(
                        parents[i].shape().clone(),
                        data,
                    )?));
                } else {
                    input_grads.push(None);
                }
                off += w;
            }
            Ok(BackwardOut { input_grads, param_grads: no_params })
        }
        (LayerKind::MeanPoolSeq, Cache::InShape(in_shape)) => {
            let dx = if needs_input_grads[0] {
                let (b, s, d) = (in_shape.dim(0), in_shape.dim(1), in_shape.dim(2));
                let inv = 1.0 / s as f32;
                let mut data = vec![0.0f32; b * s * d];
                for bi in 0..b {
                    let src = &grad.data()[bi * d..(bi + 1) * d];
                    for si in 0..s {
                        let dst = &mut data[(bi * s + si) * d..(bi * s + si + 1) * d];
                        for (o, &g) in dst.iter_mut().zip(src) {
                            *o = g * inv;
                        }
                    }
                }
                Some(Tensor::from_vec(in_shape.clone(), data)?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads: no_params })
        }
        (LayerKind::Conv2d { stride, pad, act, .. }, Cache::Conv { input, pre }) => {
            let dpre = act_backward(*act, pre, grad)?;
            let (dx, dw, db) = conv2d_backward(input, &p[0], &dpre, *stride, *pad)?;
            let param_grads = if trainable { vec![dw, db] } else { no_params };
            let dx = if needs_input_grads[0] { Some(dx) } else { None };
            Ok(BackwardOut { input_grads: vec![dx], param_grads })
        }
        (LayerKind::ResidualBlock { in_ch, out_ch, stride }, Cache::ResBlock(rc)) => {
            let dsum = relu_backward(&rc.sum_pre, grad)?;
            // Main path: conv2 then conv1.
            let (da1, dw2, db2) = conv2d_backward(&rc.a1, &p[2], &dsum, 1, 1)?;
            let dpre1 = relu_backward(&rc.pre1, &da1)?;
            let (dx_main, dw1, db1) = conv2d_backward(&rc.x, &p[0], &dpre1, *stride, 1)?;
            // Skip path.
            let has_proj = *in_ch != *out_ch || *stride != 1;
            let (dx_skip, proj_grads) = if has_proj {
                let (dx, dwp, dbp) = conv2d_backward(&rc.x, &p[4], &dsum, *stride, 0)?;
                (dx, Some((dwp, dbp)))
            } else {
                (dsum.clone(), None)
            };
            let param_grads = if trainable {
                let mut g = vec![dw1, db1, dw2, db2];
                if let Some((dwp, dbp)) = proj_grads {
                    g.push(dwp);
                    g.push(dbp);
                }
                g
            } else {
                no_params
            };
            let dx = if needs_input_grads[0] {
                Some(add(&dx_main, &dx_skip)?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads })
        }
        (LayerKind::MaxPool2d { .. }, Cache::MaxPool { in_shape, argmax }) => {
            let dx = if needs_input_grads[0] {
                Some(max_pool2d_backward(in_shape, argmax, grad)?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads: no_params })
        }
        (LayerKind::GlobalAvgPool, Cache::InShape(in_shape)) => {
            let dx = if needs_input_grads[0] {
                let (b, c, h, w) =
                    (in_shape.dim(0), in_shape.dim(1), in_shape.dim(2), in_shape.dim(3));
                let inv = 1.0 / (h * w) as f32;
                let mut data = vec![0.0f32; b * c * h * w];
                for bi in 0..b {
                    for ci in 0..c {
                        let g = grad.data()[bi * c + ci] * inv;
                        let base = (bi * c + ci) * h * w;
                        data[base..base + h * w].iter_mut().for_each(|x| *x = g);
                    }
                }
                Some(Tensor::from_vec(in_shape.clone(), data)?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads: no_params })
        }
        (LayerKind::Flatten, Cache::InShape(in_shape)) => {
            let dx = if needs_input_grads[0] {
                Some(grad.reshape(in_shape.clone())?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads: no_params })
        }
        (LayerKind::SliceSeq { index }, Cache::InShape(in_shape)) => {
            let dx = if needs_input_grads[0] {
                let (b, s, d) = (in_shape.dim(0), in_shape.dim(1), in_shape.dim(2));
                let mut data = vec![0.0f32; b * s * d];
                for bi in 0..b {
                    data[(bi * s + index) * d..(bi * s + index + 1) * d]
                        .copy_from_slice(&grad.data()[bi * d..(bi + 1) * d]);
                }
                Some(Tensor::from_vec(in_shape.clone(), data)?)
            } else {
                None
            };
            Ok(BackwardOut { input_grads: vec![dx], param_grads: no_params })
        }
        (LayerKind::ZerosLike { .. }, _) => {
            // Constant output: no gradient flows to the (shape-donor) input.
            Ok(BackwardOut { input_grads: vec![None], param_grads: no_params })
        }
        (kind, _) => Err(TensorError::Incompatible(format!(
            "missing forward cache for {} backward (was the forward run with training=true? output shape {})",
            kind.type_name(),
            output.shape(),
        ))),
    }
}

/// `dX = dY · Wᵀ` where `W` is stored `(in, out)`: uses `matmul_tb` against
/// `W` viewed as `(out, in)` columns — i.e. plain `matmul_tb(dY, Wᵀstored)`.
/// Our `matmul_tb(a, b)` computes `a · bᵀ` for `b` stored `(k, n)`; here we
/// need `dY(…,out) · Wᵀ(out,in)` with `W` stored `(in, out)`, so transpose
/// the weight once.
fn matmul_tb_weight(dy: &Tensor, w: &Tensor) -> Result<Tensor, TensorError> {
    // W is (in, out); dX = dY · Wᵀ. matmul_tb(dy, b) computes dy · bᵀ with b
    // stored (k, n) = (in, out): dy(…,out)·bᵀ requires b's inner dim to be
    // out, i.e. b stored (in, out) transposed gives (out, in)... matmul_tb
    // expects b as (k, n) with n == dy's last dim. W is (in, out) with
    // out == dy.last, so matmul_tb(dy, W) = dy · Wᵀ with result (…, in). ✓
    matmul_tb(dy, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ModelGraph, ParamInit};
    use nautilus_tensor::init::{randn, seeded_rng};
    use nautilus_tensor::ops::cross_entropy_logits;

    /// Builds a graph, runs a scalar loss, and finite-difference-checks the
    /// gradient of every trainable parameter.
    fn grad_check(graph: &mut ModelGraph, inputs: &BatchInputs, targets: &[i64], tol: f32) {
        let out_id = graph.outputs()[0];
        let loss_of = |g: &ModelGraph| -> f32 {
            let fwd = forward(g, inputs, false).unwrap();
            cross_entropy_logits(fwd.output(out_id), targets).unwrap().0
        };
        let fwd = forward(graph, inputs, true).unwrap();
        let (_, dlogits) = cross_entropy_logits(fwd.output(out_id), targets).unwrap();
        let mut out_grads = HashMap::new();
        out_grads.insert(out_id, dlogits);
        let grads = backward(graph, &fwd, out_grads).unwrap();

        let trainable_ids: Vec<NodeId> =
            graph.ids().filter(|&id| graph.node(id).trainable()).collect();
        assert!(!trainable_ids.is_empty());
        for id in trainable_ids {
            let nparams = graph.node(id).params.len();
            let g = grads.params.get(&id).unwrap_or_else(|| {
                panic!("no grads for trainable node {}", graph.node(id).name)
            });
            assert_eq!(g.len(), nparams);
            #[allow(clippy::needless_range_loop)]
            for pi in 0..nparams {
                let plen = graph.node(id).params[pi].len();
                // Spot-check up to 4 coordinates per parameter.
                let step = (plen / 4).max(1);
                for ei in (0..plen).step_by(step) {
                    let eps = 1e-2f32;
                    let orig = graph.node(id).params[pi].data()[ei];
                    graph.node_mut(id).params[pi].data_mut()[ei] = orig + eps;
                    let lp = loss_of(graph);
                    graph.node_mut(id).params[pi].data_mut()[ei] = orig - eps;
                    let lm = loss_of(graph);
                    graph.node_mut(id).params[pi].data_mut()[ei] = orig;
                    let num = (lp - lm) / (2.0 * eps);
                    let ana = g[pi].data()[ei];
                    assert!(
                        (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                        "node {} param {pi} elem {ei}: numeric {num} vs analytic {ana}",
                        graph.node(id).name
                    );
                }
            }
        }
    }

    #[test]
    fn dense_stack_grad_check() {
        let mut rng = seeded_rng(11);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [6]);
        let h = g
            .add_layer(
                "hidden",
                LayerKind::Dense { in_dim: 6, out_dim: 5, act: Activation::Relu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 5, out_dim: 3, act: Activation::None },
                &[h],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([4, 6], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[0, 1, 2, 0], 5e-2);
    }

    #[test]
    fn adapter_grad_check() {
        let mut rng = seeded_rng(13);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let a = g
            .add_layer(
                "adapter",
                LayerKind::Adapter { dim: 4, bottleneck: 3 },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[a],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([3, 4], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[0, 1, 1], 5e-2);
    }

    #[test]
    fn transformer_grad_check() {
        let mut rng = seeded_rng(17);
        let mut g = ModelGraph::new();
        let inp = g.add_input("tokens", [5]);
        let emb = g
            .add_layer(
                "emb",
                LayerKind::Embedding { vocab: 11, dim: 8, max_len: 8 },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let t = g
            .add_layer(
                "block",
                LayerKind::TransformerBlock { dim: 8, heads: 2, ff_dim: 12 },
                &[emb],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 8, out_dim: 3, act: Activation::None },
                &[t],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let ids =
            Tensor::from_vec([2, 5], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
                .unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, ids);
        // Token tagging: 2 records x 5 tokens -> 10 targets.
        grad_check(&mut g, &inputs, &[0, 1, 2, 0, 1, 2, 0, 1, 2, 0], 8e-2);
    }

    #[test]
    fn conv_resblock_grad_check() {
        let mut rng = seeded_rng(19);
        let mut g = ModelGraph::new();
        let inp = g.add_input("img", [2, 6, 6]);
        let c = g
            .add_layer(
                "stem",
                LayerKind::Conv2d { in_ch: 2, out_ch: 4, k: 3, stride: 1, pad: 1, act: Activation::Relu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let r = g
            .add_layer(
                "res",
                LayerKind::ResidualBlock { in_ch: 4, out_ch: 8, stride: 2 },
                &[c],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let gap = g
            .add_layer("gap", LayerKind::GlobalAvgPool, &[r], true, ParamInit::Given(vec![]))
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 8, out_dim: 2, act: Activation::None },
                &[gap],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 2, 6, 6], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[0, 1], 8e-2);
    }

    #[test]
    fn concat_and_add_grad_check() {
        let mut rng = seeded_rng(23);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let a = g
            .add_layer(
                "a",
                LayerKind::Dense { in_dim: 4, out_dim: 3, act: Activation::Tanh },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let b = g
            .add_layer(
                "b",
                LayerKind::Dense { in_dim: 4, out_dim: 3, act: Activation::Gelu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let sum = g
            .add_layer("sum", LayerKind::Add, &[a, b], true, ParamInit::Given(vec![]))
            .unwrap();
        let cat = g
            .add_layer("cat", LayerKind::ConcatLast, &[sum, a], true, ParamInit::Given(vec![]))
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 6, out_dim: 2, act: Activation::None },
                &[cat],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([3, 4], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[1, 0, 1], 5e-2);
    }

    #[test]
    fn frozen_backbone_gets_no_gradients() {
        let mut rng = seeded_rng(29);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let frozen = g
            .add_layer(
                "frozen",
                LayerKind::Dense { in_dim: 4, out_dim: 4, act: Activation::Relu },
                &[inp],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let head = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[frozen],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(head).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 4], 1.0, &mut rng));
        let fwd = forward(&g, &inputs, true).unwrap();
        let (_, dl) = cross_entropy_logits(fwd.output(head), &[0, 1]).unwrap();
        let mut ogs = HashMap::new();
        ogs.insert(head, dl);
        let grads = backward(&g, &fwd, ogs).unwrap();
        assert!(grads.params.contains_key(&head));
        assert!(!grads.params.contains_key(&frozen));
    }

    #[test]
    fn forward_requires_bound_inputs() {
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let _ = inp;
        let r = forward(&g, &BatchInputs::new(), false);
        assert!(r.is_err());
    }

    #[test]
    fn forward_rejects_wrong_record_shape() {
        let mut rng = seeded_rng(31);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 5], 1.0, &mut rng));
        assert!(forward(&g, &inputs, false).is_err());
    }

    #[test]
    fn slice_seq_grad_check() {
        // A head over one sliced position: the scatter backward must place
        // gradient mass only at that position.
        let mut rng = seeded_rng(41);
        let mut g = ModelGraph::new();
        let inp = g.add_input("seq", [4, 3]);
        let proj = g
            .add_layer(
                "proj",
                LayerKind::Dense { in_dim: 3, out_dim: 3, act: Activation::Tanh },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let sl = g
            .add_layer(
                "pick2",
                LayerKind::SliceSeq { index: 2 },
                &[proj],
                true,
                ParamInit::Given(vec![]),
            )
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 3, out_dim: 2, act: Activation::None },
                &[sl],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([3, 4, 3], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[0, 1, 0], 5e-2);
    }

    #[test]
    fn zeros_like_blocks_gradients() {
        let mut rng = seeded_rng(43);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        // Trainable layer feeding a ZerosLike: its output is discarded, so
        // it must receive no gradient even though it is trainable.
        let dead = g
            .add_layer(
                "dead-branch",
                LayerKind::Dense { in_dim: 4, out_dim: 4, act: Activation::None },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let z = g
            .add_layer(
                "zeros",
                LayerKind::ZerosLike { shape: vec![4] },
                &[dead],
                true,
                ParamInit::Given(vec![]),
            )
            .unwrap();
        let live = g
            .add_layer(
                "live",
                LayerKind::Dense { in_dim: 4, out_dim: 4, act: Activation::Relu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let sum = g
            .add_layer("sum", LayerKind::Add, &[z, live], true, ParamInit::Given(vec![]))
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[sum],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 4], 1.0, &mut rng));
        let fwd = forward(&g, &inputs, true).unwrap();
        // Zeros output really is zeros.
        assert!(fwd.output(z).data().iter().all(|&x| x == 0.0));
        let (_, dl) = cross_entropy_logits(fwd.output(o), &[0, 1]).unwrap();
        let mut og = HashMap::new();
        og.insert(o, dl);
        let grads = backward(&g, &fwd, og).unwrap();
        assert!(!grads.params.contains_key(&dead), "gradient crossed ZerosLike");
        assert!(grads.params.contains_key(&live));
        assert!(grads.params.contains_key(&o));
    }

    #[test]
    fn multi_output_graph_trains_both_heads() {
        let mut rng = seeded_rng(47);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let trunk = g
            .add_layer(
                "trunk",
                LayerKind::Dense { in_dim: 4, out_dim: 6, act: Activation::Relu },
                &[inp],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let h1 = g
            .add_layer(
                "head1",
                LayerKind::Dense { in_dim: 6, out_dim: 2, act: Activation::None },
                &[trunk],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let h2 = g
            .add_layer(
                "head2",
                LayerKind::Dense { in_dim: 6, out_dim: 3, act: Activation::None },
                &[trunk],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(h1).unwrap();
        g.add_output(h2).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 4], 1.0, &mut rng));
        let fwd = forward(&g, &inputs, true).unwrap();
        let (_, g1) = cross_entropy_logits(fwd.output(h1), &[0, 1]).unwrap();
        let (_, g2) = cross_entropy_logits(fwd.output(h2), &[2, 0]).unwrap();
        let mut og = HashMap::new();
        og.insert(h1, g1);
        og.insert(h2, g2);
        let grads = backward(&g, &fwd, og).unwrap();
        assert!(grads.params.contains_key(&h1));
        assert!(grads.params.contains_key(&h2));
        assert!(!grads.params.contains_key(&trunk), "trunk frozen");
    }

    #[test]
    fn maxpool_flatten_pipeline() {
        let mut rng = seeded_rng(37);
        let mut g = ModelGraph::new();
        let inp = g.add_input("img", [1, 4, 4]);
        let mp = g
            .add_layer(
                "pool",
                LayerKind::MaxPool2d { k: 2, stride: 2 },
                &[inp],
                true,
                ParamInit::Given(vec![]),
            )
            .unwrap();
        let fl = g
            .add_layer("flat", LayerKind::Flatten, &[mp], true, ParamInit::Given(vec![]))
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[fl],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, randn([2, 1, 4, 4], 1.0, &mut rng));
        grad_check(&mut g, &inputs, &[0, 1], 5e-2);
    }

    /// `forward_batch` over a stacked batch must reproduce per-record
    /// `forward` bit for bit — including when the *stacked* matmul work
    /// crosses `GEMM_THRESHOLD` while the per-record work does not (the
    /// case where an unpinned dispatch would flip kernels).
    #[test]
    fn forward_batch_bit_identical_to_per_record_forward() {
        use nautilus_tensor::ops::matmul::GEMM_THRESHOLD;
        let mut rng = seeded_rng(42);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [64]);
        let h = g
            .add_layer(
                "hidden",
                LayerKind::Dense { in_dim: 64, out_dim: 64, act: Activation::Gelu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 64, out_dim: 48, act: Activation::None },
                &[h],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();

        let batch = 64usize;
        assert!(batch * 64 * 64 >= GEMM_THRESHOLD, "stacked work must cross the threshold");
        assert!(64 * 64 < GEMM_THRESHOLD, "per-record work must stay below it");

        let records: Vec<Tensor> = (0..batch).map(|_| randn([1, 64], 1.0, &mut rng)).collect();
        let mut stacked = Vec::new();
        for r in &records {
            stacked.extend_from_slice(r.data());
        }
        let stacked = Tensor::from_vec([batch, 64], stacked).unwrap();

        let mut bi = BatchInputs::new();
        bi.insert(inp, stacked);
        let batched = forward_batch(&g, &bi, batch).unwrap();
        let out = batched.output(o);
        let per_record = out.len() / batch;

        for (i, r) in records.iter().enumerate() {
            let mut solo_in = BatchInputs::new();
            solo_in.insert(inp, r.clone());
            let solo = forward(&g, &solo_in, false).unwrap();
            assert_eq!(
                &out.data()[i * per_record..(i + 1) * per_record],
                solo.output(o).data(),
                "record {i} diverged between batched and solo forward"
            );
        }
    }

    /// A shared-trunk batch over several variants of one base must be
    /// bit-identical to running each variant's records alone through its
    /// full graph: the trunk runs once at the union batch's divisor, each
    /// suffix at its group's, so kernel choices stay per-record.
    #[test]
    fn shared_trunk_forward_bit_identical_to_solo_variants() {
        use crate::delta::{extract_delta, strip_trainable};
        let dim = 16usize;
        let build = |tenant_seed: u64| {
            let mut frozen_rng = seeded_rng(7);
            let mut rng = seeded_rng(tenant_seed);
            let mut g = ModelGraph::new();
            let inp = g.add_input("in", [dim]);
            let trunk = g
                .add_layer(
                    "trunk",
                    LayerKind::Dense { in_dim: dim, out_dim: dim, act: Activation::Gelu },
                    &[inp],
                    true,
                    ParamInit::Seeded(&mut frozen_rng),
                )
                .unwrap();
            let ad = g
                .add_layer(
                    "adapter",
                    LayerKind::Adapter { dim, bottleneck: 4 },
                    &[trunk],
                    false,
                    ParamInit::Seeded(&mut rng),
                )
                .unwrap();
            // Frozen layer *above* the adapter: tenant-dependent activations
            // through tenant-independent weights — must run in the suffix.
            let post = g
                .add_layer(
                    "post",
                    LayerKind::Dense { in_dim: dim, out_dim: dim, act: Activation::Relu },
                    &[ad],
                    true,
                    ParamInit::Seeded(&mut frozen_rng),
                )
                .unwrap();
            let o = g
                .add_layer(
                    "head",
                    LayerKind::Dense { in_dim: dim, out_dim: 3, act: Activation::None },
                    &[post],
                    false,
                    ParamInit::Seeded(&mut rng),
                )
                .unwrap();
            g.add_output(o).unwrap();
            (g, inp, o)
        };

        let variants: Vec<_> = (0..3u64).map(|s| build(100 + s)).collect();
        let (base, inp, out) = {
            let (g, i, o) = &variants[0];
            (strip_trainable(g), *i, *o)
        };
        let overrides: Vec<ParamOverrides> = variants
            .iter()
            .map(|(g, _, _)| {
                extract_delta(g)
                    .unwrap()
                    .entries
                    .into_iter()
                    .map(|e| (NodeId(e.node), std::sync::Arc::new(e.params)))
                    .collect()
            })
            .collect();

        let mut rng = seeded_rng(55);
        let rows = [2usize, 1, 3];
        let records: Vec<Vec<Tensor>> = rows
            .iter()
            .map(|&k| (0..k).map(|_| randn([1, dim], 1.0, &mut rng)).collect())
            .collect();
        let mut stacked = Vec::new();
        for group in &records {
            for r in group {
                stacked.extend_from_slice(r.data());
            }
        }
        let stacked = Tensor::from_vec([rows.iter().sum::<usize>(), dim], stacked).unwrap();

        let groups: Vec<TrunkGroup<'_>> = rows
            .iter()
            .zip(&overrides)
            .map(|(&rows, ov)| TrunkGroup { rows, overrides: Some(ov) })
            .collect();
        let outs = forward_batch_shared_trunk(&base, inp, out, stacked, &groups).unwrap();

        for (gi, ((g, _, _), group)) in variants.iter().zip(&records).enumerate() {
            let per = outs[gi].len() / rows[gi];
            for (ri, r) in group.iter().enumerate() {
                let mut solo_in = BatchInputs::new();
                solo_in.insert(inp, r.clone());
                let solo = forward_batch(g, &solo_in, 1).unwrap();
                assert_eq!(
                    &outs[gi].data()[ri * per..(ri + 1) * per],
                    solo.output(out).data(),
                    "variant {gi} record {ri} diverged from solo serving"
                );
            }
        }
    }

    /// The transformer fans per-record attention tasks out over the shared
    /// pool, so `forward_batch` bit-identity must hold even though those
    /// tasks execute on different threads than the one holding the
    /// batch-invariant dispatch scope. Sized so each record's attention
    /// context matmul straddles `GEMM_THRESHOLD` — per-record work at or
    /// above the threshold, work/batch below it — and so its shared dim
    /// exceeds one GEMM `KC` panel, where the blocked and naive kernels
    /// genuinely round differently. A divisor that leaks (or fails to
    /// propagate) across pool threads flips the kernel for whichever
    /// records land on the wrong thread and changes their bits.
    #[test]
    fn forward_batch_transformer_attention_straddles_gemm_threshold() {
        use nautilus_tensor::ops::gemm::KC;
        use nautilus_tensor::ops::matmul::GEMM_THRESHOLD;
        let (seq, dim, heads, batch) = (288usize, 8usize, 1usize, 8usize);
        let ctx_work = seq * seq * (dim / heads);
        assert!(ctx_work >= GEMM_THRESHOLD, "per-record attention work must cross");
        assert!(ctx_work / batch < GEMM_THRESHOLD, "work/batch must stay below");
        assert!(seq > KC, "shared dim must exceed one KC panel so kernels differ");

        let mut rng = seeded_rng(23);
        let mut g = ModelGraph::new();
        let inp = g.add_input("seq", [seq, dim]);
        let t = g
            .add_layer(
                "block",
                LayerKind::TransformerBlock { dim, heads, ff_dim: 16 },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(t).unwrap();

        let records: Vec<Tensor> =
            (0..batch).map(|_| randn([1, seq, dim], 1.0, &mut rng)).collect();
        let mut stacked = Vec::new();
        for r in &records {
            stacked.extend_from_slice(r.data());
        }
        let stacked = Tensor::from_vec([batch, seq, dim], stacked).unwrap();

        let mut bi = BatchInputs::new();
        bi.insert(inp, stacked);
        let batched = forward_batch(&g, &bi, batch).unwrap();
        let out = batched.output(t);
        let per_record = out.len() / batch;

        for (i, r) in records.iter().enumerate() {
            let mut solo_in = BatchInputs::new();
            solo_in.insert(inp, r.clone());
            let solo = forward(&g, &solo_in, false).unwrap();
            assert_eq!(
                &out.data()[i * per_record..(i + 1) * per_record],
                solo.output(t).data(),
                "record {i} diverged between batched and solo transformer forward"
            );
        }
    }
}
