//! Human-readable model summaries (Keras `model.summary()` equivalent).

use crate::graph::ModelGraph;

/// Renders a per-layer table: name, type, output shape, parameter count,
/// frozen flag, and which analysis classes the node falls into.
pub fn summarize(graph: &ModelGraph) -> String {
    let materializable = graph.materializable();
    let requires_grad = graph.requires_grad();
    let mut rows: Vec<[String; 6]> = Vec::with_capacity(graph.len());
    for id in graph.ids() {
        let node = graph.node(id);
        let class = if materializable[id.index()] {
            "materializable"
        } else if node.trainable() {
            "trainable"
        } else if requires_grad[id.index()] {
            "frozen-pass-through"
        } else {
            "frozen"
        };
        rows.push([
            node.name.clone(),
            node.kind.type_name().to_string(),
            graph.shape(id).to_string(),
            node.param_elements().to_string(),
            if node.frozen { "yes".into() } else { "no".into() },
            class.to_string(),
        ]);
    }
    let headers = ["layer", "type", "output", "params", "frozen", "class"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (w, c) in widths.iter_mut().zip(r.iter()) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&headers.map(String::from)));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(&r));
        out.push('\n');
    }
    let total: usize = graph.nodes().iter().map(|n| n.param_elements()).sum();
    let trainable = graph.trainable_param_elements();
    out.push_str(&format!(
        "total params: {total} ({trainable} trainable, {} frozen)\n",
        total - trainable
    ));
    out
}

/// Renders the graph in Graphviz DOT format.
///
/// Nodes are shaded by analysis class: materializable (green), trainable
/// (orange), frozen pass-through (gray). Useful for eyeballing what the
/// planner can and cannot reuse.
pub fn to_dot(graph: &ModelGraph) -> String {
    let materializable = graph.materializable();
    let mut out = String::from("digraph model {\n  rankdir=BT;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n");
    for id in graph.ids() {
        let node = graph.node(id);
        let color = if materializable[id.index()] {
            "#c8e6c9"
        } else if node.trainable() {
            "#ffe0b2"
        } else {
            "#eeeeee"
        };
        let outline = if graph.outputs().contains(&id) { ", penwidth=3" } else { "" };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{} {}\", fillcolor=\"{color}\"{outline}];\n",
            id.index(),
            node.name.replace('"', "'"),
            node.kind.type_name(),
            graph.shape(id),
        ));
        for p in &node.inputs {
            out.push_str(&format!("  n{} -> n{};\n", p.index(), id.index()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ParamInit;
    use crate::layer::{Activation, LayerKind};
    use nautilus_tensor::init::seeded_rng;

    #[test]
    fn summary_lists_every_layer_and_totals() {
        let mut rng = seeded_rng(1);
        let mut g = ModelGraph::new();
        let i = g.add_input("in", [4]);
        let f = g
            .add_layer(
                "frozen",
                LayerKind::Dense { in_dim: 4, out_dim: 8, act: Activation::Relu },
                &[i],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let h = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 8, out_dim: 2, act: Activation::None },
                &[f],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(h).unwrap();
        let s = summarize(&g);
        assert!(s.contains("in"));
        assert!(s.contains("frozen"));
        assert!(s.contains("head"));
        assert!(s.contains("materializable"));
        assert!(s.contains("trainable"));
        let total = (4 * 8 + 8) + (8 * 2 + 2);
        let head = 8 * 2 + 2;
        assert!(s.contains(&format!("total params: {total} ({head} trainable")));

        // DOT export: one node line per layer, one edge per input, output
        // highlighted.
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph model {"));
        assert_eq!(dot.matches("fillcolor").count(), 3);
        assert_eq!(dot.matches(" -> ").count(), 2);
        assert!(dot.contains("penwidth=3"));
        assert!(dot.contains("#c8e6c9"), "materializable shading present");
        assert!(dot.contains("#ffe0b2"), "trainable shading present");
    }
}
