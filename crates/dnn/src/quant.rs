//! int8 row-quantized serving forward.
//!
//! The serving counterpart of [`crate::delta`]: where delta extraction
//! splits a trained variant into shared frozen base + per-tenant deltas,
//! this module compresses the *compute* of the hot path. Dense layers'
//! weights are row-quantized once at export/publish time (per output
//! channel, symmetric — see [`nautilus_tensor::ops::qgemm`]) and the
//! quantized forward runs an i32-accumulating int8 GEMM with one
//! dequantize per output element, skipping the f32 matmul entirely.
//!
//! Only [`LayerKind::Dense`] nodes quantize — they are where serving
//! FLOPs live in the MLP/head suffixes the multi-tenant plane hosts.
//! Every other node (embeddings, transformer blocks, adapters, norms,
//! combinators) runs its ordinary f32 path via the shared
//! [`crate::exec`] machinery, so a [`QuantizedModel`] composes with
//! [`ParamOverrides`]: a node present in `layers` serves int8, any other
//! trainable node still resolves through the overrides map.
//!
//! Accuracy contract: dynamic per-row activation scales plus per-channel
//! weight scales bound the logit delta tightly enough that top-1
//! decisions survive (gated by `tests/serving.rs`); the int8 path is
//! batch-invariant by construction since every input row quantizes
//! against its own scale.

use crate::exec::{apply_act, exec_err, run_forward, BatchInputs, ExecError, ParamOverrides};
use crate::graph::{ModelGraph, NodeId};
use crate::layer::LayerKind;
use nautilus_tensor::ops::qgemm::{qgemm_dyn, quantize_rows, QuantizedMatrix};
use nautilus_tensor::ops::with_batch_invariant_dispatch;
use nautilus_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// One dense layer's int8 serving form: weights transposed to
/// `[out_channel][in_dim]` row-major and quantized per channel, bias and
/// activation kept in f32 (they are O(out_dim), not worth quantizing).
#[derive(Debug, Clone)]
pub struct QuantDense {
    /// Per-output-channel quantized weights, `out_dim` rows of `in_dim`.
    pub weights: QuantizedMatrix,
    /// f32 bias, length `out_dim`.
    pub bias: Vec<f32>,
    /// Activation applied after the affine map.
    pub act: crate::layer::Activation,
}

impl QuantDense {
    /// Quantizes a dense layer's parameters: `w` stored `(in_dim,
    /// out_dim)` as in [`LayerKind::Dense`] nodes, `b` of `out_dim`.
    pub fn from_params(w: &Tensor, b: &Tensor, act: crate::layer::Activation) -> QuantDense {
        let (in_dim, out_dim) = (w.shape().dim(0), w.shape().dim(1));
        // Transpose to [out][in] so each channel's weights are one
        // contiguous strip for the int8 dot kernel.
        let wd = w.data();
        let mut wt = vec![0.0f32; out_dim * in_dim];
        for i in 0..in_dim {
            for o in 0..out_dim {
                wt[o * in_dim + i] = wd[i * out_dim + o];
            }
        }
        QuantDense {
            weights: quantize_rows(out_dim, in_dim, &wt),
            bias: b.data().to_vec(),
            act,
        }
    }

    /// Heap bytes of the quantized layer (codes + scales + bias).
    pub fn bytes(&self) -> usize {
        self.weights.bytes() + self.bias.len() * 4
    }

    /// Runs the layer on a batch: int8 GEMM, f32 bias, activation.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, ExecError> {
        let (m, k, xd) = x.as_matrix();
        let out_dim = self.weights.rows;
        if k != self.weights.cols {
            return Err(exec_err(
                "quant_dense",
                format!("input dim {k} vs quantized weights {}", self.weights.cols),
            ));
        }
        nautilus_tensor::ops::matmul::count_dispatch("int8");
        let mut out = nautilus_util::scratch::take_vec(m * out_dim);
        qgemm_dyn(m, k, xd, &self.weights, &mut out);
        for row in out.chunks_exact_mut(out_dim) {
            for (o, &b) in row.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
        let pre = Tensor::from_vec(x.shape().with_last_dim(out_dim), out)
            .map_err(|e| exec_err("quant_dense", e))?;
        Ok(apply_act(self.act, &pre))
    }
}

/// The int8 serving form of (part of) a model: quantized dense layers
/// keyed by node id. `Arc` granularity lets a registry share one resident
/// quantization of the frozen trunk across every tenant of a base.
#[derive(Debug, Clone, Default)]
pub struct QuantizedModel {
    /// Quantized dense layers by node.
    pub layers: HashMap<NodeId, Arc<QuantDense>>,
}

impl QuantizedModel {
    /// Empty model (no node serves int8).
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantizes every dense node of `graph` selected by `select`,
    /// resolving parameters through `overrides` exactly like the f32
    /// forward does. Non-dense nodes are never quantized.
    pub fn from_graph_where(
        graph: &ModelGraph,
        overrides: Option<&ParamOverrides>,
        mut select: impl FnMut(NodeId) -> bool,
    ) -> QuantizedModel {
        let mut layers = HashMap::new();
        for id in graph.ids() {
            let node = graph.node(id);
            let LayerKind::Dense { act, .. } = &node.kind else { continue };
            if !select(id) {
                continue;
            }
            let params: &[Tensor] = overrides
                .and_then(|o| o.get(&id))
                .map_or(&node.params[..], |v| &v[..]);
            layers.insert(id, Arc::new(QuantDense::from_params(&params[0], &params[1], *act)));
        }
        QuantizedModel { layers }
    }

    /// Quantizes every dense node of `graph` (params resolved through
    /// `overrides`).
    pub fn from_graph(graph: &ModelGraph, overrides: Option<&ParamOverrides>) -> QuantizedModel {
        Self::from_graph_where(graph, overrides, |_| true)
    }

    /// Whether any node serves int8.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total heap bytes across all quantized layers.
    pub fn bytes(&self) -> usize {
        self.layers.values().map(|l| l.bytes()).sum()
    }

    /// Merges `other`'s layers over `self`'s (other wins on conflict),
    /// sharing the `Arc`s. Used to combine a base's frozen-trunk
    /// quantization with a tenant's quantized head.
    pub fn merged_with(&self, other: &QuantizedModel) -> QuantizedModel {
        let mut layers = self.layers.clone();
        for (id, l) in &other.layers {
            layers.insert(*id, Arc::clone(l));
        }
        QuantizedModel { layers }
    }
}

/// Inference forward over a stacked batch of `batch` records where dense
/// nodes present in `quant` run the int8 row-quantized kernel and every
/// other node runs its ordinary f32 path (with `overrides` resolution,
/// exactly like [`crate::exec::forward_with_overrides`]).
///
/// Kernel dispatch for the residual f32 nodes is pinned to per-record
/// work via [`with_batch_invariant_dispatch`]; the int8 nodes are
/// batch-invariant by construction (per-row activation scales, exact
/// integer accumulation). Returns the output tensor of node `output`.
pub fn forward_batch_quantized(
    graph: &ModelGraph,
    inputs: &BatchInputs,
    batch: usize,
    output: NodeId,
    quant: &QuantizedModel,
    overrides: Option<&ParamOverrides>,
) -> Result<Tensor, ExecError> {
    let _sp = nautilus_util::telemetry::span("dnn", "dnn.forward_quantized");
    let n = graph.len();
    if output.index() >= n {
        return Err(exec_err("graph", "output node out of range"));
    }
    with_batch_invariant_dispatch(batch, || -> Result<Tensor, ExecError> {
        let mut outputs: Vec<Option<Tensor>> = vec![None; n];
        for id in graph.ids() {
            let node = graph.node(id);
            let parents: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|p| outputs[p.index()].as_ref().expect("topological order"))
                .collect();
            let out = if let Some(q) = quant.layers.get(&id) {
                q.forward(parents[0]).map_err(|mut e| {
                    e.node = node.name.clone();
                    e
                })?
            } else {
                let params: &[Tensor] = overrides
                    .and_then(|o| o.get(&id))
                    .map_or(&node.params[..], |v| &v[..]);
                let (out, _) = run_forward(node, params, &parents, inputs, id, false)
                    .map_err(|e| exec_err(&node.name, e))?;
                out
            };
            outputs[id.index()] = Some(out);
        }
        Ok(outputs[output.index()].take().expect("output computed"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ParamInit;
    use crate::layer::Activation;
    use nautilus_tensor::init::{randn, seeded_rng};
    use nautilus_tensor::ops::matmul;

    /// Frozen 32→48 trunk layer + trainable 48→10 head.
    fn mlp(seed: u64) -> (ModelGraph, NodeId, NodeId) {
        let mut rng = seeded_rng(seed);
        let mut g = ModelGraph::new();
        let x = g.add_input("x", [32]);
        let h = g
            .add_layer(
                "h",
                LayerKind::Dense { in_dim: 32, out_dim: 48, act: Activation::Relu },
                &[x],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let y = g
            .add_layer(
                "y",
                LayerKind::Dense { in_dim: 48, out_dim: 10, act: Activation::None },
                &[h],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(y).unwrap();
        (g, x, y)
    }

    #[test]
    fn quant_dense_matches_f32_within_tolerance() {
        let mut rng = seeded_rng(21);
        let w = randn([32, 48], 0.3, &mut rng);
        let b = randn([48], 0.3, &mut rng);
        let q = QuantDense::from_params(&w, &b, Activation::None);
        let x = randn([4, 32], 1.0, &mut rng);
        let got = q.forward(&x).unwrap();
        let mut want = matmul(&x, &w).unwrap();
        nautilus_tensor::ops::add_assign(&mut want, &b).unwrap();
        let abs_tol = 0.05 * 32f32.sqrt() * 0.3; // √k · weight sigma headroom
        for (i, (&g, &f)) in got.data().iter().zip(want.data()).enumerate() {
            assert!((g - f).abs() <= 0.05 * f.abs() + abs_tol, "[{i}] {g} vs {f}");
        }
    }

    #[test]
    fn quantized_forward_matches_f32_graph_within_tolerance() {
        let (g, x, y) = mlp(3);
        let mut rng = seeded_rng(22);
        let input = randn([6, 32], 1.0, &mut rng);
        let mut inputs = BatchInputs::new();
        inputs.insert(x, input);
        let f32_out = crate::exec::forward_batch(&g, &inputs, 6).unwrap();
        let f32_out = &f32_out.outputs[y.index()];
        let qm = QuantizedModel::from_graph(&g, None);
        assert_eq!(qm.layers.len(), 2);
        assert!(qm.bytes() > 0);
        let q_out = forward_batch_quantized(&g, &inputs, 6, y, &qm, None).unwrap();
        assert_eq!(q_out.shape(), f32_out.shape());
        for (i, (&a, &b)) in q_out.data().iter().zip(f32_out.data()).enumerate() {
            assert!((a - b).abs() <= 0.05 * b.abs() + 0.6, "[{i}] int8 {a} vs f32 {b}");
        }
    }

    #[test]
    fn quantized_forward_respects_overrides_for_unquantized_nodes() {
        let (g, x, y) = mlp(5);
        let mut rng = seeded_rng(23);
        let input = randn([2, 32], 1.0, &mut rng);
        let mut inputs = BatchInputs::new();
        inputs.insert(x, input);
        // Quantize only the frozen layer; serve the head through overrides.
        let rg = g.requires_grad();
        let qm = QuantizedModel::from_graph_where(&g, None, |id| !rg[id.index()]);
        assert_eq!(qm.layers.len(), 1);
        let new_w = randn([48, 10], 0.2, &mut rng);
        let new_b = randn([10], 0.2, &mut rng);
        let mut ov: ParamOverrides = HashMap::new();
        ov.insert(y, Arc::new(vec![new_w.clone(), new_b.clone()]));
        let out = forward_batch_quantized(&g, &inputs, 2, y, &qm, Some(&ov)).unwrap();
        // Reference: same quantized trunk, head applied by hand.
        let trunk_id = *qm.layers.keys().next().unwrap();
        let trunk = qm.layers[&trunk_id].forward(inputs.get(x).unwrap()).unwrap();
        let mut want = matmul(&trunk, &new_w).unwrap();
        nautilus_tensor::ops::add_assign(&mut want, &new_b).unwrap();
        assert_eq!(out.data(), want.data(), "override head must apply exactly");
    }

    /// A record's quantized outputs must not depend on what it is
    /// batched with — the serving bit-identity promise.
    #[test]
    fn quantized_forward_is_batch_invariant() {
        let (g, x, y) = mlp(8);
        let mut rng = seeded_rng(24);
        let batch = randn([5, 32], 1.0, &mut rng);
        let qm = QuantizedModel::from_graph(&g, None);
        let mut inputs = BatchInputs::new();
        inputs.insert(x, batch.clone());
        let stacked = forward_batch_quantized(&g, &inputs, 5, y, &qm, None).unwrap();
        let per = stacked.len() / 5;
        for r in 0..5 {
            let solo_in = Tensor::from_vec(
                [1usize, 32],
                batch.data()[r * 32..(r + 1) * 32].to_vec(),
            )
            .unwrap();
            let mut si = BatchInputs::new();
            si.insert(x, solo_in);
            let solo = forward_batch_quantized(&g, &si, 1, y, &qm, None).unwrap();
            assert_eq!(
                &stacked.data()[r * per..(r + 1) * per],
                solo.data(),
                "record {r} diverged from solo serving"
            );
        }
    }

    #[test]
    fn merged_with_prefers_other_and_shares_arcs() {
        let (g, _x, y) = mlp(11);
        let base = QuantizedModel::from_graph(&g, None);
        let head_only = QuantizedModel::from_graph_where(&g, None, |id| id == y);
        let merged = base.merged_with(&head_only);
        assert_eq!(merged.layers.len(), base.layers.len());
        assert!(Arc::ptr_eq(&merged.layers[&y], &head_only.layers[&y]));
    }
}
