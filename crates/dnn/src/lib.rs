#![warn(missing_docs)]

//! Deep-learning training substrate for the Nautilus reproduction.
//!
//! The paper builds on Keras/TensorFlow; this crate is the from-scratch
//! equivalent, providing exactly what Nautilus needs:
//!
//! * [`layer`] — typed layer kinds (dense, embedding, transformer block,
//!   convolution, residual block, adapters, combinators) with parameter
//!   initialization, shape inference, and per-record FLOP estimates. Blocks
//!   like the transformer encoder are *composite* layers: they expose the
//!   sizes of their internal activations, which the paper's peak-memory
//!   estimator needs (§4.3.3).
//! * [`graph`] — DAG model graphs ([`ModelGraph`]) with frozen-layer flags
//!   (Def 2.3), topological ordering, validation, and *expression
//!   signatures* used to detect identical sub-expressions (Def 4.3) when the
//!   multi-model graph is constructed.
//! * [`exec`] — forward/backward execution over a graph for a mini-batch,
//!   computing gradients only where a trainable layer can be reached
//!   (frozen sub-DAGs cost forward-only, matching the paper's `ccomp`
//!   multipliers).
//! * [`optim`] — SGD/momentum/Adam optimizers with per-parameter state; a
//!   fused model trains each branch with its *own* optimizer (§3, Trainer).
//! * [`loss`] — softmax cross-entropy heads for token tagging and
//!   classification.
//! * [`checkpoint`] — model (de)serialization with byte accounting, the
//!   basis of the paper's checkpoint-IO measurements (Fig 11).
//! * [`delta`] — splits a trained variant into a shared frozen base plus a
//!   per-tenant delta (trainable params only), with content hashes for
//!   dedup and a compact delta checkpoint format; the substrate of the
//!   multi-tenant serving plane.
//! * [`quant`] — int8 row-quantized serving forms of dense layers and a
//!   quantized batch forward, compressing the hot serving path's compute
//!   the way [`delta`] compresses its storage.

pub mod checkpoint;
pub mod delta;
pub mod exec;
pub mod graph;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod quant;
pub mod summary;

pub use delta::{apply_delta, base_signature, extract_delta, strip_trainable, GraphDelta};
pub use exec::{
    backward, forward, forward_batch_shared_trunk, forward_with_overrides, BatchInputs,
    ForwardResult, ParamOverrides, TrunkGroup,
};
pub use graph::{GraphError, ModelGraph, Node, NodeId};
pub use layer::{Activation, LayerKind};
pub use loss::TaskKind;
pub use optim::{Optimizer, OptimizerSpec};
pub use quant::{forward_batch_quantized, QuantDense, QuantizedModel};
