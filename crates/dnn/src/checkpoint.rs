//! Model checkpointing with byte accounting.
//!
//! A checkpoint is a JSON header (graph structure, layer configs, frozen
//! flags, output set) followed by the parameter tensors in
//! `nautilus-tensor`'s binary format. The paper's Fig 11 hinges on
//! checkpoint traffic: Current Practice writes the *whole* model (~400–500
//! MB for BERT) after every training run, while Nautilus's rewritten plans
//! prune frozen parameters; [`checkpoint_bytes`] provides both estimates
//! without serializing.

use crate::graph::{ModelGraph, Node, NodeId};
use crate::layer::LayerKind;
use nautilus_tensor::ser;
use nautilus_tensor::{Shape, Tensor};
use nautilus_util::bytesio::{PutBytes, TakeBytes};
use nautilus_util::{json, json_struct};

/// Checkpoint (de)serialization errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Header is not valid JSON / schema.
    BadHeader(String),
    /// Parameter payload is malformed.
    BadPayload(String),
    /// The reconstructed graph failed validation.
    BadGraph(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::BadPayload(m) => write!(f, "bad checkpoint payload: {m}"),
            CheckpointError::BadGraph(m) => write!(f, "bad checkpoint graph: {m}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

struct NodeHeader {
    name: String,
    kind: LayerKind,
    inputs: Vec<usize>,
    frozen: bool,
    param_sig: u64,
    param_shapes: Vec<Vec<usize>>,
    /// Whether real parameter data follows in the payload.
    has_data: bool,
}

json_struct!(NodeHeader { name, kind, inputs, frozen, param_sig, param_shapes, has_data });

struct GraphHeader {
    version: u32,
    nodes: Vec<NodeHeader>,
    outputs: Vec<usize>,
}

json_struct!(GraphHeader { version, nodes, outputs });

/// Serializes a model graph (structure + any real parameters) to bytes.
pub fn save_to_bytes(graph: &ModelGraph) -> Vec<u8> {
    let header = GraphHeader {
        version: 1,
        nodes: graph
            .nodes()
            .iter()
            .map(|n| NodeHeader {
                name: n.name.clone(),
                kind: n.kind.clone(),
                inputs: n.inputs.iter().map(|i| i.index()).collect(),
                frozen: n.frozen,
                param_sig: n.param_sig,
                param_shapes: n.param_shapes.iter().map(|s| s.0.clone()).collect(),
                has_data: !n.params.is_empty(),
            })
            .collect(),
        outputs: graph.outputs().iter().map(|o| o.index()).collect(),
    };
    let header_json = json::to_vec(&header);
    let mut buf = Vec::with_capacity(header_json.len() + 16 + graph.params_bytes());
    buf.put_u64_le(header_json.len() as u64);
    buf.put_slice(&header_json);
    for n in graph.nodes() {
        for p in &n.params {
            ser::encode_into(p, &mut buf);
        }
    }
    buf
}

/// Reconstructs a model graph from [`save_to_bytes`] output.
pub fn load_from_bytes(bytes: &[u8]) -> Result<ModelGraph, CheckpointError> {
    let mut cur = bytes;
    let hlen = cur
        .take_u64_le()
        .ok_or_else(|| CheckpointError::BadHeader("truncated length prefix".into()))?
        as usize;
    let header_bytes = cur
        .take_slice(hlen)
        .ok_or_else(|| CheckpointError::BadHeader("truncated header".into()))?;
    let header: GraphHeader = json::from_slice(header_bytes)
        .map_err(|e| CheckpointError::BadHeader(e.to_string()))?;
    if header.version != 1 {
        return Err(CheckpointError::BadHeader(format!(
            "unsupported version {}",
            header.version
        )));
    }
    let mut graph = ModelGraph::new();
    for nh in header.nodes {
        let params: Vec<Tensor> = if nh.has_data {
            (0..nh.param_shapes.len())
                .map(|_| {
                    ser::decode_from(&mut cur)
                        .map_err(|e| CheckpointError::BadPayload(e.to_string()))
                })
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };
        let node = Node {
            name: nh.name,
            kind: nh.kind,
            inputs: nh.inputs.into_iter().map(NodeId).collect(),
            frozen: nh.frozen,
            params,
            param_shapes: nh.param_shapes.into_iter().map(Shape::new).collect(),
            param_sig: nh.param_sig,
        };
        graph
            .push_node(node)
            .map_err(|e| CheckpointError::BadGraph(e.to_string()))?;
    }
    for o in header.outputs {
        graph
            .add_output(NodeId(o))
            .map_err(|e| CheckpointError::BadGraph(e.to_string()))?;
    }
    graph.validate().map_err(|e| CheckpointError::BadGraph(e.to_string()))?;
    Ok(graph)
}

/// Writes a checkpoint file; returns the number of bytes written.
pub fn save(graph: &ModelGraph, path: &std::path::Path) -> Result<usize, CheckpointError> {
    let bytes = save_to_bytes(graph);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len())
}

/// Reads a checkpoint file; returns the graph and the bytes read.
pub fn load(path: &std::path::Path) -> Result<(ModelGraph, usize), CheckpointError> {
    let data = std::fs::read(path)?;
    let n = data.len();
    Ok((load_from_bytes(&data)?, n))
}

/// Estimated checkpoint size in bytes.
///
/// `trainable_only` models Nautilus's pruned checkpoints (frozen parameters
/// are not re-saved); `false` models Current Practice, which re-saves the
/// entire model. A small per-node header overhead is included.
pub fn checkpoint_bytes(graph: &ModelGraph, trainable_only: bool) -> u64 {
    const NODE_HEADER_OVERHEAD: u64 = 160;
    let params = if trainable_only {
        graph.trainable_params_bytes()
    } else {
        graph.params_bytes()
    } as u64;
    params + NODE_HEADER_OVERHEAD * graph.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ParamInit;
    use crate::layer::Activation;
    use nautilus_tensor::init::seeded_rng;

    fn sample_graph() -> ModelGraph {
        let mut rng = seeded_rng(7);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [6]);
        let a = g
            .add_layer(
                "frozen",
                LayerKind::Dense { in_dim: 6, out_dim: 4, act: Activation::Gelu },
                &[inp],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let b = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[a],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(b).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample_graph();
        let bytes = save_to_bytes(&g);
        let back = load_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.outputs(), g.outputs());
        for (a, b) in g.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.frozen, b.frozen);
            assert_eq!(a.params, b.params);
            assert_eq!(a.param_sig, b.param_sig);
        }
        assert_eq!(g.expr_signatures(), back.expr_signatures());
    }

    #[test]
    fn file_round_trip_reports_bytes() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join(format!("nautilus-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let written = save(&g, &path).unwrap();
        let (back, read) = load(&path).unwrap();
        assert_eq!(written, read);
        assert_eq!(back.len(), g.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shapes_only_graphs_round_trip_without_payload() {
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [8]);
        let d = g
            .add_layer(
                "virtual",
                LayerKind::Dense { in_dim: 8, out_dim: 8, act: Activation::None },
                &[inp],
                true,
                ParamInit::ShapesOnly { sig: 42 },
            )
            .unwrap();
        g.add_output(d).unwrap();
        let bytes = save_to_bytes(&g);
        let back = load_from_bytes(&bytes).unwrap();
        assert!(back.node(d).params.is_empty());
        assert_eq!(back.node(d).param_sig, 42);
        assert_eq!(back.node(d).param_bytes(), (64 + 8) * 4);
    }

    #[test]
    fn estimate_tracks_trainable_split() {
        let g = sample_graph();
        let full = checkpoint_bytes(&g, false);
        let pruned = checkpoint_bytes(&g, true);
        assert!(full > pruned);
        // Trainable head: (4*2 + 2) * 4 bytes.
        assert_eq!(pruned - 160 * 3, 40);
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_from_bytes(b"nope").is_err());
        let mut b = Vec::new();
        b.put_u64_le(4);
        b.put_slice(b"{..}");
        assert!(load_from_bytes(&b).is_err());
    }
}
