//! DAG model graphs (paper Def 2.2) with frozen-layer flags, shape
//! inference, materializability analysis (Def 2.4), and expression
//! signatures (Def 4.3).
//!
//! Nodes are stored in insertion order, which is a topological order by
//! construction (a node's inputs must already exist). Graph rewrites in the
//! planner always build fresh graphs, so this invariant is global.

use crate::layer::{LayerError, LayerKind};
use nautilus_tensor::{Shape, Tensor};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Index of a node within its [`ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors raised while building or validating a graph.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the self-named fields
pub enum GraphError {
    /// A referenced input node does not exist (or would create a cycle).
    BadInput { node: String, input: usize },
    /// Layer-level configuration or shape problem.
    Layer(String),
    /// The provided parameters do not match the layer kind.
    BadParams { node: String, expected: usize, actual: usize },
    /// An output id is invalid.
    BadOutput(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadInput { node, input } => {
                write!(f, "node '{node}' references missing input #{input}")
            }
            GraphError::Layer(msg) => write!(f, "{msg}"),
            GraphError::BadParams { node, expected, actual } => {
                write!(f, "node '{node}' expects {expected} params, got {actual}")
            }
            GraphError::BadOutput(i) => write!(f, "output references missing node #{i}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<LayerError> for GraphError {
    fn from(e: LayerError) -> Self {
        GraphError::Layer(e.to_string())
    }
}

/// How a node's parameters are provided at construction time.
pub enum ParamInit<'a> {
    /// Initialize fresh tensors from the RNG (real-execution graphs).
    Seeded(&'a mut dyn nautilus_util::rng::RngCore),
    /// Record parameter shapes only and tag values with `sig`
    /// (paper-scale simulated graphs never allocate weights).
    ShapesOnly {
        /// Stable identity of the (virtual) parameter values.
        sig: u64,
    },
    /// Adopt the given tensors (used when rewriting graphs).
    Given(Vec<Tensor>),
}

/// One layer instance in a graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name; unique names make plans and stores debuggable.
    pub name: String,
    /// The layer type and configuration.
    pub kind: LayerKind,
    /// Ids of input nodes, in argument order.
    pub inputs: Vec<NodeId>,
    /// Whether the layer is frozen (paper Def 2.3). Layers without
    /// parameters are always frozen.
    pub frozen: bool,
    /// Parameter tensors (empty for shapes-only graphs).
    pub params: Vec<Tensor>,
    /// Parameter shapes (always populated).
    pub param_shapes: Vec<Shape>,
    /// Stable identity of the parameter *values*, used for expression
    /// signatures; equal sigs mean "identical trainable parameter values"
    /// per Def 4.3.
    pub param_sig: u64,
}

impl Node {
    /// Whether this node has parameters that training would update.
    pub fn trainable(&self) -> bool {
        !self.frozen && !self.param_shapes.is_empty()
    }

    /// Total parameter element count.
    pub fn param_elements(&self) -> usize {
        self.param_shapes.iter().map(Shape::num_elements).sum()
    }

    /// Total parameter bytes (f32).
    pub fn param_bytes(&self) -> usize {
        self.param_elements() * nautilus_tensor::ELEM_BYTES
    }

    /// True when parameter tensors are actually materialized in memory.
    pub fn has_real_params(&self) -> bool {
        self.params.len() == self.param_shapes.len() && !self.param_shapes.is_empty()
            || self.param_shapes.is_empty()
    }
}

fn hash_kind(kind: &LayerKind, h: &mut DefaultHasher) {
    kind.hash(h);
}

pub(crate) fn hash_params(params: &[Tensor]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in params {
        p.shape().0.hash(&mut h);
        for &x in p.data() {
            x.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

/// A DAG of layers with designated output nodes (paper Def 2.2).
#[derive(Debug, Clone, Default)]
pub struct ModelGraph {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    /// Cached per-record output shape of every node.
    shapes: Vec<Shape>,
}

impl ModelGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an input placeholder with the given per-record shape.
    pub fn add_input(&mut self, name: impl Into<String>, shape: impl Into<Shape>) -> NodeId {
        let shape = shape.into();
        let kind = LayerKind::Input { shape: shape.0.clone() };
        self.push_node(Node {
            name: name.into(),
            kind,
            inputs: Vec::new(),
            frozen: true,
            params: Vec::new(),
            param_shapes: Vec::new(),
            param_sig: 0,
        })
        .expect("input nodes cannot fail validation")
    }

    /// Adds a layer node.
    ///
    /// `frozen` marks the layer's parameters as not-to-be-updated (Def 2.3);
    /// parameterless layers are recorded as frozen regardless.
    pub fn add_layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: &[NodeId],
        frozen: bool,
        init: ParamInit<'_>,
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        for &i in inputs {
            if i.index() >= self.nodes.len() {
                return Err(GraphError::BadInput { node: name, input: i.index() });
            }
        }
        let expected = kind.num_params();
        let (params, param_shapes, param_sig) = match init {
            ParamInit::Seeded(mut rng) => {
                // `&mut dyn RngCore` is itself an RngCore (and hence Rng),
                // so one extra reference satisfies `&mut impl Rng`.
                let params = kind.init_params(&mut rng);
                let shapes = params.iter().map(|p| p.shape().clone()).collect();
                let sig = hash_params(&params);
                (params, shapes, sig)
            }
            ParamInit::ShapesOnly { sig } => (Vec::new(), kind.param_shapes(), sig),
            ParamInit::Given(params) => {
                if params.len() != expected {
                    return Err(GraphError::BadParams {
                        node: name,
                        expected,
                        actual: params.len(),
                    });
                }
                let shapes = params.iter().map(|p| p.shape().clone()).collect();
                let sig = hash_params(&params);
                (params, shapes, sig)
            }
        };
        if param_shapes.len() != expected {
            return Err(GraphError::BadParams {
                node: name,
                expected,
                actual: param_shapes.len(),
            });
        }
        let frozen = frozen || expected == 0;
        self.push_node(Node { name, kind, inputs: inputs.to_vec(), frozen, params, param_shapes, param_sig })
    }

    pub(crate) fn push_node(&mut self, node: Node) -> Result<NodeId, GraphError> {
        let input_shapes: Vec<Shape> =
            node.inputs.iter().map(|i| self.shapes[i.index()].clone()).collect();
        let out = node.kind.output_shape(&input_shapes)?;
        let id = NodeId(self.nodes.len());
        self.shapes.push(out);
        self.nodes.push(node);
        Ok(id)
    }

    /// Marks a node as a model output (paper `O`).
    pub fn add_output(&mut self, id: NodeId) -> Result<(), GraphError> {
        if id.index() >= self.nodes.len() {
            return Err(GraphError::BadOutput(id.index()));
        }
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(())
    }

    /// The designated output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node lookup (used by optimizers to update parameters).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Replaces a node's parameter tensors, checking shapes and refreshing
    /// the value signature (so expression signatures stay truthful).
    pub fn set_node_params(&mut self, id: NodeId, params: Vec<Tensor>) -> Result<(), GraphError> {
        if id.index() >= self.nodes.len() {
            return Err(GraphError::BadOutput(id.index()));
        }
        let node = &mut self.nodes[id.index()];
        if params.len() != node.param_shapes.len() {
            return Err(GraphError::BadParams {
                node: node.name.clone(),
                expected: node.param_shapes.len(),
                actual: params.len(),
            });
        }
        for (p, s) in params.iter().zip(&node.param_shapes) {
            if p.shape() != s {
                return Err(GraphError::BadParams {
                    node: node.name.clone(),
                    expected: s.num_elements(),
                    actual: p.shape().num_elements(),
                });
            }
        }
        node.param_sig = hash_params(&params);
        node.params = params;
        Ok(())
    }

    /// Ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Per-record output shape of a node.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// Ids of input (placeholder) nodes.
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&id| matches!(self.node(id).kind, LayerKind::Input { .. }))
            .collect()
    }

    /// Child adjacency: for every node, the nodes consuming its output.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &p in &n.inputs {
                ch[p.index()].push(NodeId(i));
            }
        }
        ch
    }

    /// Whether each node can reach a trainable parameterized layer through
    /// its ancestors — i.e. whether gradients must flow *into* the node.
    ///
    /// `requires_grad[l] = trainable(l) ∨ ∃ parent p: requires_grad[p]`.
    pub fn requires_grad(&self) -> Vec<bool> {
        let mut rg = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            rg[i] = n.trainable() || n.inputs.iter().any(|p| rg[p.index()]);
        }
        rg
    }

    /// The materializable set (paper Def 2.4): inputs, plus frozen layers
    /// whose parents are all materializable.
    pub fn materializable(&self) -> Vec<bool> {
        let mut m = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            m[i] = match n.kind {
                LayerKind::Input { .. } => true,
                _ => n.frozen && n.inputs.iter().all(|p| m[p.index()]),
            };
        }
        m
    }

    /// Expression signatures (paper Def 4.3): a node's signature covers its
    /// layer type, configuration, frozen flag, parameter values (via
    /// `param_sig`), and its parents' signatures — so equal signatures mean
    /// identical expressions rooted at identical layers.
    pub fn expr_signatures(&self) -> Vec<u64> {
        let mut sigs = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let mut h = DefaultHasher::new();
            hash_kind(&n.kind, &mut h);
            n.frozen.hash(&mut h);
            n.param_sig.hash(&mut h);
            for p in &n.inputs {
                sigs[p.index()].hash(&mut h);
            }
            sigs[i] = h.finish();
        }
        sigs
    }

    /// Total parameter bytes across all nodes.
    pub fn params_bytes(&self) -> usize {
        self.nodes.iter().map(Node::param_bytes).sum()
    }

    /// Total parameter bytes across trainable nodes only (what a
    /// frozen-aware checkpoint must write).
    pub fn trainable_params_bytes(&self) -> usize {
        self.nodes.iter().filter(|n| n.trainable()).map(Node::param_bytes).sum()
    }

    /// Number of trainable parameter elements.
    pub fn trainable_param_elements(&self) -> usize {
        self.nodes.iter().filter(|n| n.trainable()).map(Node::param_elements).sum()
    }

    /// Validates structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (i, n) in self.nodes.iter().enumerate() {
            for &p in &n.inputs {
                if p.index() >= i {
                    return Err(GraphError::BadInput { node: n.name.clone(), input: p.index() });
                }
            }
            if n.param_shapes.len() != n.kind.num_params() {
                return Err(GraphError::BadParams {
                    node: n.name.clone(),
                    expected: n.kind.num_params(),
                    actual: n.param_shapes.len(),
                });
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.nodes.len() {
                return Err(GraphError::BadOutput(o.index()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use nautilus_tensor::init::seeded_rng;

    /// input -> dense(frozen) -> dense(trainable) -> output
    fn small_graph() -> ModelGraph {
        let mut rng = seeded_rng(1);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let frozen = g
            .add_layer(
                "backbone",
                LayerKind::Dense { in_dim: 4, out_dim: 8, act: Activation::Relu },
                &[inp],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let head = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 8, out_dim: 2, act: Activation::None },
                &[frozen],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(head).unwrap();
        g
    }

    #[test]
    fn build_and_validate() {
        let g = small_graph();
        assert_eq!(g.len(), 3);
        g.validate().unwrap();
        assert_eq!(g.shape(NodeId(1)), &Shape::new([8]));
        assert_eq!(g.input_ids(), vec![NodeId(0)]);
        assert_eq!(g.outputs(), &[NodeId(2)]);
    }

    #[test]
    fn requires_grad_stops_at_frozen_prefix() {
        let g = small_graph();
        let rg = g.requires_grad();
        assert_eq!(rg, vec![false, false, true]);
    }

    #[test]
    fn materializable_per_definition() {
        let g = small_graph();
        let m = g.materializable();
        // Input and frozen dense are materializable; trainable head is not.
        assert_eq!(m, vec![true, true, false]);
    }

    #[test]
    fn materializable_blocked_by_trainable_ancestor() {
        let mut rng = seeded_rng(2);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let t = g
            .add_layer(
                "trainable",
                LayerKind::Dense { in_dim: 4, out_dim: 4, act: Activation::None },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        // Frozen layer *above* a trainable one is NOT materializable.
        let f = g
            .add_layer(
                "frozen-above",
                LayerKind::Dense { in_dim: 4, out_dim: 4, act: Activation::None },
                &[t],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(f).unwrap();
        assert_eq!(g.materializable(), vec![true, false, false]);
    }

    #[test]
    fn identical_construction_gives_identical_signatures() {
        let a = small_graph();
        let b = small_graph();
        assert_eq!(a.expr_signatures(), b.expr_signatures());
        // Different seed -> different parameter values -> different sigs for
        // parameterized nodes.
        let mut rng = seeded_rng(99);
        let mut c = ModelGraph::new();
        let inp = c.add_input("in", [4]);
        let f = c
            .add_layer(
                "backbone",
                LayerKind::Dense { in_dim: 4, out_dim: 8, act: Activation::Relu },
                &[inp],
                true,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        c.add_output(f).unwrap();
        assert_eq!(a.expr_signatures()[0], c.expr_signatures()[0]); // same input
        assert_ne!(a.expr_signatures()[1], c.expr_signatures()[1]); // diff params
    }

    #[test]
    fn shapes_only_nodes_report_sizes_without_data() {
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [16]);
        let d = g
            .add_layer(
                "big",
                LayerKind::Dense { in_dim: 16, out_dim: 32, act: Activation::None },
                &[inp],
                true,
                ParamInit::ShapesOnly { sig: 7 },
            )
            .unwrap();
        g.add_output(d).unwrap();
        let n = g.node(d);
        assert!(n.params.is_empty());
        assert_eq!(n.param_bytes(), (16 * 32 + 32) * 4);
        assert_eq!(n.param_sig, 7);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_bad_inputs_and_params() {
        let mut g = ModelGraph::new();
        let r = g.add_layer(
            "dangling",
            LayerKind::Add,
            &[NodeId(5), NodeId(6)],
            true,
            ParamInit::Given(vec![]),
        );
        assert!(matches!(r, Err(GraphError::BadInput { .. })));

        let inp = g.add_input("in", [4]);
        let r = g.add_layer(
            "wrong-params",
            LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
            &[inp],
            false,
            ParamInit::Given(vec![]),
        );
        assert!(matches!(r, Err(GraphError::BadParams { .. })));
    }

    #[test]
    fn trainable_bytes_exclude_frozen() {
        let g = small_graph();
        let frozen_bytes = (4 * 8 + 8) * 4;
        let head_bytes = (8 * 2 + 2) * 4;
        assert_eq!(g.params_bytes(), frozen_bytes + head_bytes);
        assert_eq!(g.trainable_params_bytes(), head_bytes);
    }

    #[test]
    fn children_adjacency() {
        let g = small_graph();
        let ch = g.children();
        assert_eq!(ch[0], vec![NodeId(1)]);
        assert_eq!(ch[1], vec![NodeId(2)]);
        assert!(ch[2].is_empty());
    }

    #[test]
    fn parameterless_layers_forced_frozen() {
        let mut g = ModelGraph::new();
        let a = g.add_input("a", [4]);
        let b = g.add_input("b", [4]);
        let add = g
            .add_layer("sum", LayerKind::Add, &[a, b], false, ParamInit::Given(vec![]))
            .unwrap();
        assert!(g.node(add).frozen);
    }
}
