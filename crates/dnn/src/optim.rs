//! Optimizers with per-parameter state.
//!
//! A fused Nautilus model trains each trainable branch with the optimizer of
//! its source model (§3, Trainer), so optimizers here are instantiated *per
//! node set* and carry their own state, keyed by `(node, param index)`.

use crate::exec::Gradients;
use crate::graph::{ModelGraph, NodeId};
use nautilus_tensor::ops::axpy;
use nautilus_tensor::Tensor;
use nautilus_util::bytesio::{PutBytes, TakeBytes};
use nautilus_util::{json, json_enum, json_struct};
use std::collections::HashMap;

/// Declarative optimizer configuration, part of a training hyperparameter
/// set `φ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerSpec {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum factor (0 disables momentum).
        momentum: f32,
    },
    /// Adam.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical floor.
        eps: f32,
    },
}

json_enum!(OptimizerSpec {
    Sgd { lr, momentum },
    Adam { lr, beta1, beta2, eps },
});

impl OptimizerSpec {
    /// Plain SGD with the given learning rate.
    pub fn sgd(lr: f32) -> Self {
        OptimizerSpec::Sgd { lr, momentum: 0.0 }
    }

    /// Adam with standard betas.
    pub fn adam(lr: f32) -> Self {
        OptimizerSpec::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        match self {
            OptimizerSpec::Sgd { lr, .. } | OptimizerSpec::Adam { lr, .. } => *lr,
        }
    }

    /// Builds a stateful optimizer over the given trainable nodes.
    pub fn build(&self, nodes: &[NodeId]) -> Optimizer {
        Optimizer { spec: *self, nodes: nodes.to_vec(), state: HashMap::new(), step: 0 }
    }
}

#[derive(Debug, Clone)]
struct ParamState {
    m: Tensor,
    v: Option<Tensor>,
}

/// A stateful optimizer bound to a set of trainable nodes (one branch of a
/// possibly fused model).
#[derive(Debug, Clone)]
pub struct Optimizer {
    spec: OptimizerSpec,
    nodes: Vec<NodeId>,
    state: HashMap<(NodeId, usize), ParamState>,
    step: u64,
}

impl Optimizer {
    /// The nodes this optimizer updates.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The configuration this optimizer was built from.
    pub fn spec(&self) -> OptimizerSpec {
        self.spec
    }

    /// Applies one update step to the graph using gradients from a backward
    /// pass. Nodes without gradients (e.g. unreached this step) are skipped.
    pub fn step(&mut self, graph: &mut ModelGraph, grads: &Gradients) {
        self.step += 1;
        for &id in &self.nodes.clone() {
            let Some(pgrads) = grads.params.get(&id) else { continue };
            for (pi, g) in pgrads.iter().enumerate() {
                self.update_param(graph, id, pi, g);
            }
        }
    }

    fn update_param(&mut self, graph: &mut ModelGraph, id: NodeId, pi: usize, g: &Tensor) {
        match self.spec {
            OptimizerSpec::Sgd { lr, momentum } => {
                if momentum == 0.0 {
                    let param = &mut graph.node_mut(id).params[pi];
                    axpy(-lr, g, param).expect("gradient shape matches parameter");
                } else {
                    let st = self
                        .state
                        .entry((id, pi))
                        .or_insert_with(|| ParamState { m: Tensor::zeros(g.shape().clone()), v: None });
                    // m = momentum * m + g
                    st.m.map_in_place(|x| x * momentum);
                    axpy(1.0, g, &mut st.m).expect("gradient shape matches state");
                    let update = st.m.clone();
                    let param = &mut graph.node_mut(id).params[pi];
                    axpy(-lr, &update, param).expect("state shape matches parameter");
                }
            }
            OptimizerSpec::Adam { lr, beta1, beta2, eps } => {
                let st = self.state.entry((id, pi)).or_insert_with(|| ParamState {
                    m: Tensor::zeros(g.shape().clone()),
                    v: Some(Tensor::zeros(g.shape().clone())),
                });
                let v = st.v.as_mut().expect("adam state has second moment");
                for ((m, vv), &gi) in
                    st.m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data())
                {
                    *m = beta1 * *m + (1.0 - beta1) * gi;
                    *vv = beta2 * *vv + (1.0 - beta2) * gi * gi;
                }
                let t = self.step as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let param = &mut graph.node_mut(id).params[pi];
                for ((p, &m), &vv) in
                    param.data_mut().iter_mut().zip(st.m.data()).zip(v.data())
                {
                    let mhat = m / bc1;
                    let vhat = vv / bc2;
                    *p -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

/// Serialized optimizer snapshot (spec + step counter + per-parameter
/// moment tensors). Together with a model checkpoint this captures
/// everything the paper's "model checkpoints" contain: architecture,
/// weights, and the optimizer (§3).
struct OptimizerHeader {
    spec: OptimizerSpec,
    nodes: Vec<usize>,
    step: u64,
    /// `(node index, param index, has second moment)` per state entry, in
    /// payload order.
    entries: Vec<(usize, usize, bool)>,
}

json_struct!(OptimizerHeader { spec, nodes, step, entries });

impl Optimizer {
    /// Serializes the optimizer (spec, bound nodes, step count, and all
    /// moment tensors) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut keys: Vec<&(NodeId, usize)> = self.state.keys().collect();
        keys.sort();
        let header = OptimizerHeader {
            spec: self.spec,
            nodes: self.nodes.iter().map(|n| n.index()).collect(),
            step: self.step,
            entries: keys
                .iter()
                .map(|(n, p)| (n.index(), *p, self.state[&(*n, *p)].v.is_some()))
                .collect(),
        };
        let header_json = json::to_vec(&header);
        let mut buf = Vec::new();
        buf.put_u64_le(header_json.len() as u64);
        buf.put_slice(&header_json);
        for k in keys {
            let st = &self.state[k];
            nautilus_tensor::ser::encode_into(&st.m, &mut buf);
            if let Some(v) = &st.v {
                nautilus_tensor::ser::encode_into(v, &mut buf);
            }
        }
        buf
    }

    /// Restores an optimizer from [`Optimizer::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = bytes;
        let hlen = cur.take_u64_le().ok_or("truncated optimizer snapshot")? as usize;
        let header_bytes = cur.take_slice(hlen).ok_or("truncated optimizer header")?;
        let header: OptimizerHeader =
            json::from_slice(header_bytes).map_err(|e| e.to_string())?;
        let mut state = HashMap::new();
        for (n, p, has_v) in header.entries {
            let m = nautilus_tensor::ser::decode_from(&mut cur).map_err(|e| e.to_string())?;
            let v = if has_v {
                Some(nautilus_tensor::ser::decode_from(&mut cur).map_err(|e| e.to_string())?)
            } else {
                None
            };
            state.insert((NodeId(n), p), ParamState { m, v });
        }
        Ok(Optimizer {
            spec: header.spec,
            nodes: header.nodes.into_iter().map(NodeId).collect(),
            state,
            step: header.step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{backward, forward, BatchInputs};
    use crate::graph::ParamInit;
    use crate::layer::{Activation, LayerKind};
    use nautilus_tensor::init::{randn, seeded_rng};
    use nautilus_tensor::ops::cross_entropy_logits;

    fn toy_problem() -> (ModelGraph, NodeId, BatchInputs, Vec<i64>) {
        let mut rng = seeded_rng(3);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let o = g
            .add_layer(
                "logits",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        // Separable data: class = sign of first feature.
        let mut x = randn([16, 4], 1.0, &mut rng);
        let targets: Vec<i64> =
            x.data().chunks(4).map(|r| if r[0] > 0.0 { 1 } else { 0 }).collect();
        for (i, r) in x.data_mut().chunks_mut(4).enumerate() {
            r[0] += if targets[i] == 1 { 1.0 } else { -1.0 };
        }
        let mut inputs = BatchInputs::new();
        inputs.insert(inp, x);
        (g, o, inputs, targets)
    }

    fn train_losses(spec: OptimizerSpec, steps: usize) -> Vec<f32> {
        let (mut g, o, inputs, targets) = toy_problem();
        let trainables: Vec<NodeId> = g.ids().filter(|&id| g.node(id).trainable()).collect();
        let mut opt = spec.build(&trainables);
        let mut losses = Vec::new();
        for _ in 0..steps {
            let fwd = forward(&g, &inputs, true).unwrap();
            let (loss, dl) = cross_entropy_logits(fwd.output(o), &targets).unwrap();
            losses.push(loss);
            let mut og = std::collections::HashMap::new();
            og.insert(o, dl);
            let grads = backward(&g, &fwd, og).unwrap();
            opt.step(&mut g, &grads);
        }
        losses
    }

    #[test]
    fn sgd_decreases_loss() {
        let losses = train_losses(OptimizerSpec::sgd(0.5), 30);
        assert!(losses.last().unwrap() < &(losses[0] * 0.5), "{losses:?}");
    }

    #[test]
    fn momentum_decreases_loss() {
        let losses = train_losses(OptimizerSpec::Sgd { lr: 0.2, momentum: 0.9 }, 30);
        assert!(losses.last().unwrap() < &(losses[0] * 0.5), "{losses:?}");
    }

    #[test]
    fn adam_decreases_loss() {
        let losses = train_losses(OptimizerSpec::adam(0.05), 30);
        assert!(losses.last().unwrap() < &(losses[0] * 0.5), "{losses:?}");
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = train_losses(OptimizerSpec::adam(0.05), 10);
        let b = train_losses(OptimizerSpec::adam(0.05), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_to_uninterrupted_training() {
        for spec in [
            OptimizerSpec::sgd(0.3),
            OptimizerSpec::Sgd { lr: 0.2, momentum: 0.9 },
            OptimizerSpec::adam(0.05),
        ] {
            let (mut g_cont, o, inputs, targets) = toy_problem();
            let trainables: Vec<NodeId> =
                g_cont.ids().filter(|&id| g_cont.node(id).trainable()).collect();
            let mut opt_cont = spec.build(&trainables);

            let step = |g: &mut ModelGraph, opt: &mut Optimizer| {
                let fwd = forward(g, &inputs, true).unwrap();
                let (_, dl) = cross_entropy_logits(fwd.output(o), &targets).unwrap();
                let mut og = std::collections::HashMap::new();
                og.insert(o, dl);
                let grads = backward(g, &fwd, og).unwrap();
                opt.step(g, &grads);
            };

            // 5 uninterrupted steps...
            for _ in 0..5 {
                step(&mut g_cont, &mut opt_cont);
            }
            // ...snapshot, 5 more.
            let snap_graph = g_cont.clone();
            let snap_opt = opt_cont.to_bytes();
            for _ in 0..5 {
                step(&mut g_cont, &mut opt_cont);
            }

            // Restore and replay the same 5 steps.
            let mut g_res = snap_graph;
            let mut opt_res = Optimizer::from_bytes(&snap_opt).unwrap();
            for _ in 0..5 {
                step(&mut g_res, &mut opt_res);
            }
            assert_eq!(
                g_cont.node(o).params,
                g_res.node(o).params,
                "{spec:?}: resumed training diverged"
            );
        }
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Optimizer::from_bytes(b"junk").is_err());
    }

    #[test]
    fn optimizer_only_touches_its_nodes() {
        let (mut g, o, inputs, targets) = toy_problem();
        // Optimizer bound to no nodes: parameters must not change.
        let mut opt = OptimizerSpec::sgd(1.0).build(&[]);
        let before = g.node(o).params.clone();
        let fwd = forward(&g, &inputs, true).unwrap();
        let (_, dl) = cross_entropy_logits(fwd.output(o), &targets).unwrap();
        let mut og = std::collections::HashMap::new();
        og.insert(o, dl);
        let grads = backward(&g, &fwd, og).unwrap();
        opt.step(&mut g, &grads);
        assert_eq!(g.node(o).params, before);
    }
}
