//! Layer kinds: configuration, parameter initialization, shape inference,
//! and cost metadata.
//!
//! A layer (paper Def 2.1) is a function from input tensors of fixed
//! per-record shape to one output tensor of fixed per-record shape. Layers
//! here are *typed configurations*; parameters live on the graph node so
//! that checkpoints and the multi-model merge can treat them uniformly.
//!
//! Composite blocks (transformer encoder, residual block, embedding-with-
//! layer-norm) are represented as single graph nodes — mirroring how the
//! paper's Keras graphs treat e.g. a transformer layer — and therefore
//! report their *internal* activation sizes via
//! [`LayerKind::internal_output_elements`], which §4.3.3 of the paper uses
//! to bound backward-pass memory.

use nautilus_tensor::init;
use nautilus_tensor::ops::conv::conv_out_dim;
use nautilus_tensor::{Shape, Tensor};
use nautilus_util::json_enum;
use nautilus_util::rng::Rng;

/// Pointwise activation applied by layers that take one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
}

json_enum!(Activation { None, Relu, Gelu, Tanh });

/// All supported layer types and their configurations.
///
/// Shapes are *per record* (no batch axis). Token inputs are `[seq]` id
/// tensors; image inputs are `[channels, height, width]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Model input placeholder with a per-record shape.
    Input {
        /// Per-record shape of the fed data.
        shape: Vec<usize>,
    },
    /// Token + learned positional embedding followed by layer norm
    /// (BERT-style). Input `[seq]` ids; output `[seq, dim]`.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding width.
        dim: usize,
        /// Maximum sequence length (positional table size).
        max_len: usize,
    },
    /// Post-LN transformer encoder block (multi-head self-attention +
    /// feed-forward). Input and output `[seq, dim]`.
    TransformerBlock {
        /// Model width.
        dim: usize,
        /// Number of attention heads (`dim % heads == 0`).
        heads: usize,
        /// Feed-forward inner width.
        ff_dim: usize,
    },
    /// Fully connected layer on the innermost axis with optional activation.
    Dense {
        /// Input width.
        in_dim: usize,
        /// Output width.
        out_dim: usize,
        /// Pointwise activation.
        act: Activation,
    },
    /// Houlsby-style bottleneck adapter: `x + W_up · relu(W_down · x)`.
    Adapter {
        /// Model width.
        dim: usize,
        /// Bottleneck width.
        bottleneck: usize,
    },
    /// N-ary elementwise sum of identically shaped inputs.
    Add,
    /// Concatenation of inputs along the innermost axis.
    ConcatLast,
    /// Mean over the sequence axis: `[seq, dim] -> [dim]`.
    MeanPoolSeq,
    /// 2-D convolution with optional activation. Input `[c, h, w]`.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Pointwise activation.
        act: Activation,
    },
    /// Two-convolution residual block with ReLUs; 1×1 projection shortcut
    /// when shape changes. Input `[in_ch, h, w]`.
    ResidualBlock {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Stride of the first convolution (downsampling when 2).
        stride: usize,
    },
    /// Max pooling with a square window.
    MaxPool2d {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling: `[c, h, w] -> [c]`.
    GlobalAvgPool,
    /// Flattens the record to one axis.
    Flatten,
    /// Extracts one sequence position: `[seq, dim] -> [dim]`.
    ///
    /// Used when unrolling recurrent models into DAGs (paper §2.5).
    SliceSeq {
        /// Position to extract.
        index: usize,
    },
    /// Produces zeros of a fixed per-record shape (batch inferred from the
    /// input, whose values are ignored) — the initial hidden state of an
    /// unrolled recurrent model.
    ZerosLike {
        /// Per-record output shape.
        shape: Vec<usize>,
    },
}

json_enum!(LayerKind {
    Input { shape },
    Embedding { vocab, dim, max_len },
    TransformerBlock { dim, heads, ff_dim },
    Dense { in_dim, out_dim, act },
    Adapter { dim, bottleneck },
    Add,
    ConcatLast,
    MeanPoolSeq,
    Conv2d { in_ch, out_ch, k, stride, pad, act },
    ResidualBlock { in_ch, out_ch, stride },
    MaxPool2d { k, stride },
    GlobalAvgPool,
    Flatten,
    SliceSeq { index },
    ZerosLike { shape },
});

/// Errors from layer configuration/shape checking.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerError(pub String);

impl std::fmt::Display for LayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "layer error: {}", self.0)
    }
}

impl std::error::Error for LayerError {}

fn err(msg: impl Into<String>) -> LayerError {
    LayerError(msg.into())
}

impl LayerKind {
    /// Short type name for diagnostics and store keys.
    pub fn type_name(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Embedding { .. } => "embedding",
            LayerKind::TransformerBlock { .. } => "transformer",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Adapter { .. } => "adapter",
            LayerKind::Add => "add",
            LayerKind::ConcatLast => "concat",
            LayerKind::MeanPoolSeq => "meanpool",
            LayerKind::Conv2d { .. } => "conv2d",
            LayerKind::ResidualBlock { .. } => "resblock",
            LayerKind::MaxPool2d { .. } => "maxpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::Flatten => "flatten",
            LayerKind::SliceSeq { .. } => "slice",
            LayerKind::ZerosLike { .. } => "zeros",
        }
    }

    /// Number of parameter tensors this kind carries.
    pub fn num_params(&self) -> usize {
        match self {
            LayerKind::Input { .. }
            | LayerKind::Add
            | LayerKind::ConcatLast
            | LayerKind::MeanPoolSeq
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Flatten
            | LayerKind::SliceSeq { .. }
            | LayerKind::ZerosLike { .. } => 0,
            LayerKind::Embedding { .. } => 4,
            LayerKind::TransformerBlock { .. } => 16,
            LayerKind::Dense { .. } => 2,
            LayerKind::Adapter { .. } => 4,
            LayerKind::Conv2d { .. } => 2,
            LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
                if in_ch == out_ch && *stride == 1 {
                    4
                } else {
                    6
                }
            }
        }
    }

    /// Expected number of graph inputs.
    pub fn arity(&self) -> Option<usize> {
        match self {
            LayerKind::Input { .. } => Some(0),
            LayerKind::Add | LayerKind::ConcatLast => None, // n-ary (>= 2)
            _ => Some(1),
        }
    }

    /// Shapes of this kind's parameter tensors, in the same order as
    /// [`LayerKind::init_params`].
    ///
    /// Used by shapes-only graphs (the simulated backend builds
    /// BERT-base-scale models without allocating their weights) and by
    /// checkpoint-size estimation.
    pub fn param_shapes(&self) -> Vec<Shape> {
        match *self {
            LayerKind::Input { .. }
            | LayerKind::Add
            | LayerKind::ConcatLast
            | LayerKind::MeanPoolSeq
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Flatten
            | LayerKind::SliceSeq { .. }
            | LayerKind::ZerosLike { .. } => Vec::new(),
            LayerKind::Embedding { vocab, dim, max_len } => vec![
                Shape::new([vocab, dim]),
                Shape::new([max_len, dim]),
                Shape::new([dim]),
                Shape::new([dim]),
            ],
            LayerKind::TransformerBlock { dim, ff_dim, .. } => vec![
                Shape::new([dim, dim]),
                Shape::new([dim]),
                Shape::new([dim, dim]),
                Shape::new([dim]),
                Shape::new([dim, dim]),
                Shape::new([dim]),
                Shape::new([dim, dim]),
                Shape::new([dim]),
                Shape::new([dim]),
                Shape::new([dim]),
                Shape::new([dim, ff_dim]),
                Shape::new([ff_dim]),
                Shape::new([ff_dim, dim]),
                Shape::new([dim]),
                Shape::new([dim]),
                Shape::new([dim]),
            ],
            LayerKind::Dense { in_dim, out_dim, .. } => {
                vec![Shape::new([in_dim, out_dim]), Shape::new([out_dim])]
            }
            LayerKind::Adapter { dim, bottleneck } => vec![
                Shape::new([dim, bottleneck]),
                Shape::new([bottleneck]),
                Shape::new([bottleneck, dim]),
                Shape::new([dim]),
            ],
            LayerKind::Conv2d { in_ch, out_ch, k, .. } => {
                vec![Shape::new([out_ch, in_ch, k, k]), Shape::new([out_ch])]
            }
            LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
                let mut p = vec![
                    Shape::new([out_ch, in_ch, 3, 3]),
                    Shape::new([out_ch]),
                    Shape::new([out_ch, out_ch, 3, 3]),
                    Shape::new([out_ch]),
                ];
                if in_ch != out_ch || stride != 1 {
                    p.push(Shape::new([out_ch, in_ch, 1, 1]));
                    p.push(Shape::new([out_ch]));
                }
                p
            }
        }
    }

    /// Initializes this kind's parameter tensors with the given RNG.
    ///
    /// Deterministic given the RNG stream: the model zoo derives all
    /// "pre-trained" weights from fixed seeds so identical layers compare
    /// equal (paper Def 4.3).
    pub fn init_params(&self, rng: &mut impl Rng) -> Vec<Tensor> {
        match *self {
            LayerKind::Input { .. }
            | LayerKind::Add
            | LayerKind::ConcatLast
            | LayerKind::MeanPoolSeq
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Flatten
            | LayerKind::SliceSeq { .. }
            | LayerKind::ZerosLike { .. } => Vec::new(),
            LayerKind::Embedding { vocab, dim, max_len } => vec![
                init::randn([vocab, dim], 0.05, rng),
                init::randn([max_len, dim], 0.05, rng),
                Tensor::ones([dim]),
                Tensor::zeros([dim]),
            ],
            LayerKind::TransformerBlock { dim, ff_dim, .. } => {
                let proj = |rng: &mut _| init::glorot([dim, dim], dim, dim, rng);
                // Output projections are damped so untrained blocks stay
                // residual-dominant (like pre-trained transformers, which
                // preserve token identity through the stack); without this a
                // random frozen backbone scrambles its inputs.
                let damp = 0.2f32;
                vec![
                    proj(rng),                                        // wq
                    Tensor::zeros([dim]),                             // bq
                    proj(rng),                                        // wk
                    Tensor::zeros([dim]),                             // bk
                    proj(rng),                                        // wv
                    Tensor::zeros([dim]),                             // bv
                    nautilus_tensor::ops::scale(&proj(rng), damp),    // wo
                    Tensor::zeros([dim]),                             // bo
                    Tensor::ones([dim]),                              // ln1 gamma
                    Tensor::zeros([dim]),                             // ln1 beta
                    init::glorot([dim, ff_dim], dim, ff_dim, rng),    // w1
                    Tensor::zeros([ff_dim]),                          // b1
                    nautilus_tensor::ops::scale(
                        &init::glorot([ff_dim, dim], ff_dim, dim, rng),
                        damp,
                    ),                                                // w2
                    Tensor::zeros([dim]),                             // b2
                    Tensor::ones([dim]),                              // ln2 gamma
                    Tensor::zeros([dim]),                             // ln2 beta
                ]
            }
            LayerKind::Dense { in_dim, out_dim, .. } => vec![
                init::glorot([in_dim, out_dim], in_dim, out_dim, rng),
                Tensor::zeros([out_dim]),
            ],
            LayerKind::Adapter { dim, bottleneck } => vec![
                init::glorot([dim, bottleneck], dim, bottleneck, rng),
                Tensor::zeros([bottleneck]),
                // Near-zero up-projection: adapters start close to identity.
                init::randn([bottleneck, dim], 1e-3, rng),
                Tensor::zeros([dim]),
            ],
            LayerKind::Conv2d { in_ch, out_ch, k, .. } => vec![
                init::glorot([out_ch, in_ch, k, k], in_ch * k * k, out_ch * k * k, rng),
                Tensor::zeros([out_ch]),
            ],
            LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
                let mut p = vec![
                    init::glorot([out_ch, in_ch, 3, 3], in_ch * 9, out_ch * 9, rng),
                    Tensor::zeros([out_ch]),
                    init::glorot([out_ch, out_ch, 3, 3], out_ch * 9, out_ch * 9, rng),
                    Tensor::zeros([out_ch]),
                ];
                if in_ch != out_ch || stride != 1 {
                    p.push(init::glorot([out_ch, in_ch, 1, 1], in_ch, out_ch, rng));
                    p.push(Tensor::zeros([out_ch]));
                }
                p
            }
        }
    }

    /// Per-record output shape given per-record input shapes.
    pub fn output_shape(&self, inputs: &[Shape]) -> Result<Shape, LayerError> {
        if let Some(a) = self.arity() {
            if inputs.len() != a {
                return Err(err(format!(
                    "{} expects {a} inputs, got {}",
                    self.type_name(),
                    inputs.len()
                )));
            }
        } else if inputs.len() < 2 {
            return Err(err(format!("{} expects >= 2 inputs", self.type_name())));
        }
        match self {
            LayerKind::Input { shape } => Ok(Shape::new(shape.clone())),
            LayerKind::Embedding { dim, max_len, .. } => {
                let s = &inputs[0];
                if s.rank() != 1 {
                    return Err(err(format!("embedding expects [seq] ids, got {s}")));
                }
                if s.dim(0) > *max_len {
                    return Err(err(format!(
                        "sequence length {} exceeds max_len {max_len}",
                        s.dim(0)
                    )));
                }
                Ok(Shape::new([s.dim(0), *dim]))
            }
            LayerKind::TransformerBlock { dim, heads, .. } => {
                let s = &inputs[0];
                if s.rank() != 2 || s.dim(1) != *dim {
                    return Err(err(format!(
                        "transformer(dim={dim}) expects [seq, {dim}], got {s}"
                    )));
                }
                if dim % heads != 0 {
                    return Err(err(format!("dim {dim} not divisible by heads {heads}")));
                }
                Ok(s.clone())
            }
            LayerKind::Dense { in_dim, out_dim, .. } => {
                let s = &inputs[0];
                if s.last_dim() != *in_dim {
                    return Err(err(format!(
                        "dense(in={in_dim}) got innermost {}",
                        s.last_dim()
                    )));
                }
                Ok(s.with_last_dim(*out_dim))
            }
            LayerKind::Adapter { dim, .. } => {
                let s = &inputs[0];
                if s.last_dim() != *dim {
                    return Err(err(format!(
                        "adapter(dim={dim}) got innermost {}",
                        s.last_dim()
                    )));
                }
                Ok(s.clone())
            }
            LayerKind::Add => {
                let first = &inputs[0];
                for s in &inputs[1..] {
                    first.expect_eq(s).map_err(|e| err(e.to_string()))?;
                }
                Ok(first.clone())
            }
            LayerKind::ConcatLast => {
                let first = &inputs[0];
                let mut total = first.last_dim();
                for s in &inputs[1..] {
                    if s.rank() != first.rank()
                        || s.0[..s.rank() - 1] != first.0[..first.rank() - 1]
                    {
                        return Err(err(format!("concat shape mismatch: {first} vs {s}")));
                    }
                    total += s.last_dim();
                }
                Ok(first.with_last_dim(total))
            }
            LayerKind::MeanPoolSeq => {
                let s = &inputs[0];
                if s.rank() != 2 {
                    return Err(err(format!("meanpool expects [seq, dim], got {s}")));
                }
                Ok(Shape::new([s.dim(1)]))
            }
            LayerKind::Conv2d { in_ch, out_ch, k, stride, pad, .. } => {
                let s = &inputs[0];
                if s.rank() != 3 || s.dim(0) != *in_ch {
                    return Err(err(format!("conv2d(in={in_ch}) got {s}")));
                }
                Ok(Shape::new([
                    *out_ch,
                    conv_out_dim(s.dim(1), *k, *stride, *pad),
                    conv_out_dim(s.dim(2), *k, *stride, *pad),
                ]))
            }
            LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
                let s = &inputs[0];
                if s.rank() != 3 || s.dim(0) != *in_ch {
                    return Err(err(format!("resblock(in={in_ch}) got {s}")));
                }
                Ok(Shape::new([
                    *out_ch,
                    conv_out_dim(s.dim(1), 3, *stride, 1),
                    conv_out_dim(s.dim(2), 3, *stride, 1),
                ]))
            }
            LayerKind::MaxPool2d { k, stride } => {
                let s = &inputs[0];
                if s.rank() != 3 {
                    return Err(err(format!("maxpool expects [c, h, w], got {s}")));
                }
                Ok(Shape::new([
                    s.dim(0),
                    conv_out_dim(s.dim(1), *k, *stride, 0),
                    conv_out_dim(s.dim(2), *k, *stride, 0),
                ]))
            }
            LayerKind::GlobalAvgPool => {
                let s = &inputs[0];
                if s.rank() != 3 {
                    return Err(err(format!("gap expects [c, h, w], got {s}")));
                }
                Ok(Shape::new([s.dim(0)]))
            }
            LayerKind::Flatten => Ok(Shape::new([inputs[0].num_elements()])),
            LayerKind::SliceSeq { index } => {
                let s = &inputs[0];
                if s.rank() != 2 {
                    return Err(err(format!("slice expects [seq, dim], got {s}")));
                }
                if *index >= s.dim(0) {
                    return Err(err(format!(
                        "slice index {index} out of range for seq {}",
                        s.dim(0)
                    )));
                }
                Ok(Shape::new([s.dim(1)]))
            }
            LayerKind::ZerosLike { shape } => Ok(Shape::new(shape.clone())),
        }
    }

    /// Forward-pass FLOPs for one record given per-record input shapes.
    ///
    /// This is the paper's profiled forward cost; the `ccomp` multipliers
    /// for frozen / materializable layers are applied by the profiler, not
    /// here.
    pub fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        let act_cost = |n: u64, act: &Activation| match act {
            Activation::None => 0,
            Activation::Relu => n,
            Activation::Gelu => 12 * n,
            Activation::Tanh => 8 * n,
        };
        match self {
            LayerKind::Input { .. } => 0,
            LayerKind::Embedding { dim, .. } => {
                let s = inputs[0].dim(0) as u64;
                let d = *dim as u64;
                // lookup+positional add + layer norm (~8 flops/element)
                s * d + 8 * s * d
            }
            LayerKind::TransformerBlock { dim, heads, ff_dim } => {
                let s = inputs[0].dim(0) as u64;
                let d = *dim as u64;
                let f = *ff_dim as u64;
                let h = *heads as u64;
                let proj = 4 * 2 * s * d * d; // q, k, v, o projections
                let attn = 2 * (2 * s * s * d) + 5 * h * s * s; // scores+ctx+softmax
                let ff = 2 * s * d * f * 2 + 12 * s * f; // two mat-muls + gelu
                let ln = 2 * 8 * s * d;
                let residual = 2 * s * d;
                proj + attn + ff + ln + residual
            }
            LayerKind::Dense { in_dim, out_dim, act } => {
                let rows = inputs[0].outer_elements() as u64;
                let base = 2 * rows * (*in_dim as u64) * (*out_dim as u64);
                base + act_cost(rows * *out_dim as u64, act)
            }
            LayerKind::Adapter { dim, bottleneck } => {
                let rows = inputs[0].outer_elements() as u64;
                let d = *dim as u64;
                let b = *bottleneck as u64;
                2 * rows * d * b * 2 + rows * b + rows * d
            }
            LayerKind::Add => {
                (inputs.len().saturating_sub(1) * inputs[0].num_elements()) as u64
            }
            LayerKind::ConcatLast | LayerKind::Flatten => 0,
            LayerKind::MeanPoolSeq => inputs[0].num_elements() as u64,
            LayerKind::Conv2d { in_ch, out_ch, k, stride, pad, act } => {
                let s = &inputs[0];
                let oh = conv_out_dim(s.dim(1), *k, *stride, *pad) as u64;
                let ow = conv_out_dim(s.dim(2), *k, *stride, *pad) as u64;
                let base =
                    2 * (*k * *k * *in_ch) as u64 * (*out_ch as u64) * oh * ow;
                base + act_cost(*out_ch as u64 * oh * ow, act)
            }
            LayerKind::ResidualBlock { in_ch, out_ch, stride } => {
                let s = &inputs[0];
                let oh = conv_out_dim(s.dim(1), 3, *stride, 1) as u64;
                let ow = conv_out_dim(s.dim(2), 3, *stride, 1) as u64;
                let c1 = 2 * (9 * *in_ch) as u64 * *out_ch as u64 * oh * ow;
                let c2 = 2 * (9 * *out_ch) as u64 * *out_ch as u64 * oh * ow;
                let proj = if in_ch != out_ch || *stride != 1 {
                    2 * (*in_ch as u64) * (*out_ch as u64) * oh * ow
                } else {
                    0
                };
                c1 + c2 + proj + 3 * (*out_ch as u64) * oh * ow
            }
            LayerKind::MaxPool2d { k, stride } => {
                let s = &inputs[0];
                let oh = conv_out_dim(s.dim(1), *k, *stride, 0) as u64;
                let ow = conv_out_dim(s.dim(2), *k, *stride, 0) as u64;
                s.dim(0) as u64 * oh * ow * (*k * *k) as u64
            }
            LayerKind::GlobalAvgPool => inputs[0].num_elements() as u64,
            LayerKind::SliceSeq { .. } | LayerKind::ZerosLike { .. } => 0,
        }
    }

    /// Element counts of all activations a backward pass through this layer
    /// may need (internal intermediates plus the output), per record.
    ///
    /// For simple layers this is just the output size; composite blocks
    /// enumerate their sub-layer outputs, implementing the paper's composite
    /// `smem` rule (§4.1, §4.3.3).
    pub fn internal_output_elements(&self, inputs: &[Shape]) -> Vec<usize> {
        let out = match self.output_shape(inputs) {
            Ok(s) => s.num_elements(),
            Err(_) => 0,
        };
        match self {
            LayerKind::TransformerBlock { dim, heads, ff_dim } => {
                let s = inputs[0].dim(0);
                let d = *dim;
                vec![
                    s * d, // q
                    s * d, // k
                    s * d, // v
                    heads * s * s, // attention probabilities
                    s * d, // context
                    s * d, // attention output projection
                    s * d, // residual 1 (pre-LN)
                    s * d, // h1 (post-LN)
                    s * ff_dim, // ff pre-activation
                    s * ff_dim, // ff activation
                    s * d, // ff output
                    s * d, // residual 2 (pre-LN)
                    out,   // block output
                ]
            }
            LayerKind::Embedding { dim, .. } => {
                let s = inputs[0].dim(0);
                vec![s * dim, out]
            }
            LayerKind::ResidualBlock { .. } => {
                // conv1 out, conv1 act, conv2 out, (proj), sum, relu ≈ 4–5
                // activations of the output size.
                vec![out; 4]
            }
            LayerKind::Adapter { bottleneck, .. } => {
                let rows = inputs[0].outer_elements();
                vec![rows * bottleneck, rows * bottleneck, out]
            }
            _ => vec![out],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_tensor::init::seeded_rng;

    #[test]
    fn dense_shape_and_flops() {
        let k = LayerKind::Dense { in_dim: 8, out_dim: 4, act: Activation::Relu };
        let out = k.output_shape(&[Shape::new([10, 8])]).unwrap();
        assert_eq!(out, Shape::new([10, 4]));
        assert_eq!(k.forward_flops(&[Shape::new([10, 8])]), 2 * 10 * 8 * 4 + 40);
        assert!(k.output_shape(&[Shape::new([10, 7])]).is_err());
    }

    #[test]
    fn flop_estimates_unchanged_by_kernel_lowering() {
        // Literal pins: FLOP accounting is a function of shapes only, so the
        // blocked-GEMM / im2col kernel lowering must never change these
        // numbers (panel packing and column materialization are memory
        // traffic, not FLOPs). If either assertion moves, the cost model —
        // and every Nautilus planner decision built on it — silently shifts.
        let conv =
            LayerKind::Conv2d { in_ch: 8, out_ch: 16, k: 3, stride: 1, pad: 1, act: Activation::None };
        // 2 * (3*3*8) * 16 * 16 * 16 mult-adds over a 16x16 output plane.
        assert_eq!(conv.forward_flops(&[Shape::new([8, 16, 16])]), 589_824);

        use nautilus_tensor::ops::{matmul_ex_flops, MatmulSpec};
        let a = Tensor::zeros([64, 128]);
        let b = Tensor::zeros([128, 32]);
        // 2 * 64 * 128 * 32, regardless of which kernel strategy runs it.
        assert_eq!(matmul_ex_flops(&a, &b, MatmulSpec::plain()), 524_288);
        let bt = Tensor::zeros([32, 128]);
        assert_eq!(matmul_ex_flops(&a, &bt, MatmulSpec::tb()), 524_288);
    }

    #[test]
    fn embedding_shape() {
        let k = LayerKind::Embedding { vocab: 100, dim: 16, max_len: 32 };
        assert_eq!(k.output_shape(&[Shape::new([20])]).unwrap(), Shape::new([20, 16]));
        assert!(k.output_shape(&[Shape::new([40])]).is_err()); // > max_len
        assert!(k.output_shape(&[Shape::new([4, 4])]).is_err());
    }

    #[test]
    fn transformer_preserves_shape_and_checks_dim() {
        let k = LayerKind::TransformerBlock { dim: 16, heads: 4, ff_dim: 32 };
        let s = Shape::new([10, 16]);
        assert_eq!(k.output_shape(std::slice::from_ref(&s)).unwrap(), s);
        assert!(k.output_shape(&[Shape::new([10, 8])]).is_err());
        let bad = LayerKind::TransformerBlock { dim: 16, heads: 5, ff_dim: 32 };
        assert!(bad.output_shape(&[Shape::new([10, 16])]).is_err());
    }

    #[test]
    fn concat_and_add_shapes() {
        let a = Shape::new([5, 8]);
        let b = Shape::new([5, 4]);
        assert_eq!(
            LayerKind::ConcatLast.output_shape(&[a.clone(), b]).unwrap(),
            Shape::new([5, 12])
        );
        assert_eq!(LayerKind::Add.output_shape(&[a.clone(), a.clone()]).unwrap(), a.clone());
        assert!(LayerKind::Add.output_shape(std::slice::from_ref(&a)).is_err()); // arity
        assert!(LayerKind::Add
            .output_shape(&[a, Shape::new([5, 4])])
            .is_err());
    }

    #[test]
    fn conv_chain_shapes() {
        let conv = LayerKind::Conv2d { in_ch: 3, out_ch: 8, k: 3, stride: 1, pad: 1, act: Activation::Relu };
        let s = conv.output_shape(&[Shape::new([3, 16, 16])]).unwrap();
        assert_eq!(s, Shape::new([8, 16, 16]));
        let pool = LayerKind::MaxPool2d { k: 2, stride: 2 };
        let s = pool.output_shape(&[s]).unwrap();
        assert_eq!(s, Shape::new([8, 8, 8]));
        let res = LayerKind::ResidualBlock { in_ch: 8, out_ch: 16, stride: 2 };
        let s = res.output_shape(&[s]).unwrap();
        assert_eq!(s, Shape::new([16, 4, 4]));
        let gap = LayerKind::GlobalAvgPool;
        assert_eq!(gap.output_shape(&[s]).unwrap(), Shape::new([16]));
    }

    #[test]
    fn param_counts_match_init() {
        let mut rng = seeded_rng(1);
        for kind in [
            LayerKind::Embedding { vocab: 10, dim: 4, max_len: 8 },
            LayerKind::TransformerBlock { dim: 8, heads: 2, ff_dim: 16 },
            LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
            LayerKind::Adapter { dim: 8, bottleneck: 2 },
            LayerKind::Conv2d { in_ch: 3, out_ch: 4, k: 3, stride: 1, pad: 1, act: Activation::Relu },
            LayerKind::ResidualBlock { in_ch: 4, out_ch: 4, stride: 1 },
            LayerKind::ResidualBlock { in_ch: 4, out_ch: 8, stride: 2 },
            LayerKind::Add,
            LayerKind::Flatten,
        ] {
            assert_eq!(kind.init_params(&mut rng).len(), kind.num_params(), "{kind:?}");
        }
    }

    #[test]
    fn param_shapes_match_init_shapes() {
        let mut rng = seeded_rng(5);
        for kind in [
            LayerKind::Embedding { vocab: 10, dim: 4, max_len: 8 },
            LayerKind::TransformerBlock { dim: 8, heads: 2, ff_dim: 16 },
            LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::Gelu },
            LayerKind::Adapter { dim: 8, bottleneck: 2 },
            LayerKind::Conv2d { in_ch: 3, out_ch: 4, k: 3, stride: 2, pad: 1, act: Activation::None },
            LayerKind::ResidualBlock { in_ch: 4, out_ch: 4, stride: 1 },
            LayerKind::ResidualBlock { in_ch: 4, out_ch: 8, stride: 2 },
            LayerKind::MaxPool2d { k: 2, stride: 2 },
        ] {
            let shapes = kind.param_shapes();
            let params = kind.init_params(&mut rng);
            assert_eq!(shapes.len(), params.len(), "{kind:?}");
            for (s, p) in shapes.iter().zip(&params) {
                assert_eq!(s, p.shape(), "{kind:?}");
            }
        }
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let k = LayerKind::Dense { in_dim: 8, out_dim: 8, act: Activation::None };
        let a = k.init_params(&mut seeded_rng(42));
        let b = k.init_params(&mut seeded_rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn composite_internal_outputs_exceed_simple() {
        let t = LayerKind::TransformerBlock { dim: 8, heads: 2, ff_dim: 16 };
        let internals = t.internal_output_elements(&[Shape::new([4, 8])]);
        let total: usize = internals.iter().sum();
        assert!(total > 4 * 8, "composite must report more than its output");
        let d = LayerKind::Dense { in_dim: 8, out_dim: 8, act: Activation::None };
        assert_eq!(d.internal_output_elements(&[Shape::new([4, 8])]), vec![32]);
    }

    #[test]
    fn transformer_flops_dominated_by_projections() {
        let k = LayerKind::TransformerBlock { dim: 64, heads: 4, ff_dim: 128 };
        let fl = k.forward_flops(&[Shape::new([16, 64])]);
        // 4 projections alone: 4*2*16*64*64 = 524288
        assert!(fl > 524_288, "flops {fl}");
    }
}
