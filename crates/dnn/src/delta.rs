//! Delta extraction and application against a frozen base.
//!
//! Transfer-learning variants share their frozen trunk bit-for-bit; only
//! the trainable layers (Houlsby adapters, task heads) differ per variant.
//! This module splits a trained graph into a *base* (the frozen layers,
//! shared once across all tenants) and a *delta* (the trainable parameter
//! tensors, stored per tenant), with content hashes over tensors so stores
//! can deduplicate structurally identical deltas (NeurStore-style).
//!
//! The pairing is keyed by [`base_signature`]: a hash over the graph's
//! structure, layer configs, frozen flags, frozen parameter *values*, and
//! trainable parameter *shapes* — everything a delta relies on, and nothing
//! a delta provides. Two variants with equal base signatures can share one
//! resident copy of the base weights; a delta applies only to a base with
//! the signature it was extracted against.

use crate::graph::{hash_params, GraphError, ModelGraph, NodeId};
use nautilus_tensor::{ser, Tensor};
use nautilus_util::bytesio::{PutBytes, TakeBytes};
use nautilus_util::{json, json_struct};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Delta (de)serialization and application errors.
#[derive(Debug)]
pub enum DeltaError {
    /// The delta was extracted against a different base.
    BaseMismatch {
        /// Signature the delta expects.
        expected: u64,
        /// Signature of the base it was applied to.
        actual: u64,
    },
    /// An entry references a node that is missing or not trainable, or its
    /// tensors do not match the declared shapes.
    BadEntry(String),
    /// Serialized payload is malformed.
    BadPayload(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, actual } => {
                write!(f, "delta base signature {expected:#x} does not match base {actual:#x}")
            }
            DeltaError::BadEntry(m) => write!(f, "bad delta entry: {m}"),
            DeltaError::BadPayload(m) => write!(f, "bad delta payload: {m}"),
            DeltaError::Io(e) => write!(f, "delta io: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        DeltaError::Io(e)
    }
}

impl From<GraphError> for DeltaError {
    fn from(e: GraphError) -> Self {
        DeltaError::BadEntry(e.to_string())
    }
}

/// Content hash of one tensor (shape + exact f32 bit patterns). Equal
/// hashes are the dedup candidate key; stores must still verify equality
/// on hash collisions before sharing storage.
pub fn tensor_hash(t: &Tensor) -> u64 {
    let mut h = DefaultHasher::new();
    t.shape().0.hash(&mut h);
    for &x in t.data() {
        x.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Content hash of an ordered tensor list (one delta entry's parameters).
pub fn tensors_hash(ts: &[Tensor]) -> u64 {
    let mut h = DefaultHasher::new();
    ts.len().hash(&mut h);
    for t in ts {
        tensor_hash(t).hash(&mut h);
    }
    h.finish()
}

/// Hash of everything a delta relies on: structure, layer configs, frozen
/// flags and frozen parameter values, trainable parameter shapes, and the
/// output set. Trainable parameter *values* are deliberately excluded —
/// they are exactly what the delta provides.
pub fn base_signature(g: &ModelGraph) -> u64 {
    let mut h = DefaultHasher::new();
    g.len().hash(&mut h);
    for n in g.nodes() {
        n.name.hash(&mut h);
        n.kind.hash(&mut h);
        n.frozen.hash(&mut h);
        for i in &n.inputs {
            i.index().hash(&mut h);
        }
        for s in &n.param_shapes {
            s.0.hash(&mut h);
        }
        if n.trainable() {
            // Shapes only: the values live in the delta.
            0u8.hash(&mut h);
        } else {
            n.param_sig.hash(&mut h);
        }
    }
    for o in g.outputs() {
        o.index().hash(&mut h);
    }
    h.finish()
}

/// One trainable node's parameter tensors.
#[derive(Debug, Clone)]
pub struct DeltaEntry {
    /// Node index in the base graph.
    pub node: usize,
    /// Parameter tensors, in the node's parameter order.
    pub params: Vec<Tensor>,
}

impl DeltaEntry {
    /// Content hash of this entry's tensors.
    pub fn content_hash(&self) -> u64 {
        tensors_hash(&self.params)
    }

    /// Total parameter bytes in this entry.
    pub fn bytes(&self) -> usize {
        self.params.iter().map(|t| t.shape().num_bytes()).sum()
    }
}

/// The trainable parameters of a variant, relative to a frozen base.
#[derive(Debug, Clone)]
pub struct GraphDelta {
    /// [`base_signature`] of the graph this delta was extracted from.
    pub base_sig: u64,
    /// Entries in node-index order, one per trainable node.
    pub entries: Vec<DeltaEntry>,
}

impl GraphDelta {
    /// Total delta parameter bytes.
    pub fn bytes(&self) -> usize {
        self.entries.iter().map(DeltaEntry::bytes).sum()
    }
}

/// Extracts the trainable parameters of `g` as a delta against its base.
///
/// Every trainable node must have materialized parameters.
pub fn extract_delta(g: &ModelGraph) -> Result<GraphDelta, DeltaError> {
    let mut entries = Vec::new();
    for (i, n) in g.nodes().iter().enumerate() {
        if !n.trainable() {
            continue;
        }
        if n.params.len() != n.param_shapes.len() {
            return Err(DeltaError::BadEntry(format!(
                "trainable node '{}' has no materialized parameters",
                n.name
            )));
        }
        entries.push(DeltaEntry { node: i, params: n.params.clone() });
    }
    Ok(GraphDelta { base_sig: base_signature(g), entries })
}

/// Clones `g` with trainable parameter tensors dropped (shapes stay).
///
/// The result is the shared base: all frozen weights present, trainable
/// slots empty. Its [`base_signature`] equals the original's, so any delta
/// extracted from a variant of `g` applies to it.
pub fn strip_trainable(g: &ModelGraph) -> ModelGraph {
    let mut base = g.clone();
    for id in g.ids() {
        if g.node(id).trainable() {
            let node = base.node_mut(id);
            node.params = Vec::new();
            // Neutralize the value signature: all stripped bases of one
            // architecture are interchangeable regardless of which variant
            // they were stripped from.
            node.param_sig = 0;
        }
    }
    base
}

/// Applies `delta` to (a clone of) `base`, producing the full variant
/// graph. `base` may be a stripped base or any variant with the same
/// [`base_signature`].
pub fn apply_delta(base: &ModelGraph, delta: &GraphDelta) -> Result<ModelGraph, DeltaError> {
    let sig = base_signature(base);
    if sig != delta.base_sig {
        return Err(DeltaError::BaseMismatch { expected: delta.base_sig, actual: sig });
    }
    let mut g = base.clone();
    let mut covered = 0usize;
    for e in &delta.entries {
        if e.node >= g.len() {
            return Err(DeltaError::BadEntry(format!("entry references missing node #{}", e.node)));
        }
        let id = NodeId(e.node);
        if !g.node(id).trainable() {
            return Err(DeltaError::BadEntry(format!(
                "entry targets non-trainable node '{}'",
                g.node(id).name
            )));
        }
        g.set_node_params(id, e.params.clone())?;
        covered += 1;
    }
    let trainable = g.nodes().iter().filter(|n| n.trainable()).count();
    if covered != trainable {
        return Err(DeltaError::BadEntry(format!(
            "delta covers {covered} of {trainable} trainable nodes"
        )));
    }
    Ok(g)
}

struct DeltaHeader {
    version: u32,
    base_sig: u64,
    nodes: Vec<usize>,
    counts: Vec<usize>,
    hashes: Vec<u64>,
}

json_struct!(DeltaHeader { version, base_sig, nodes, counts, hashes });

/// Serializes a delta: JSON header (node indices + per-tensor content
/// hashes) followed by the tensors in `nautilus-tensor` binary format.
pub fn save_delta_to_bytes(delta: &GraphDelta) -> Vec<u8> {
    let mut nodes = Vec::with_capacity(delta.entries.len());
    let mut counts = Vec::with_capacity(delta.entries.len());
    let mut hashes = Vec::new();
    for e in &delta.entries {
        nodes.push(e.node);
        counts.push(e.params.len());
        for t in &e.params {
            hashes.push(tensor_hash(t));
        }
    }
    let header = DeltaHeader { version: 1, base_sig: delta.base_sig, nodes, counts, hashes };
    let header_json = json::to_vec(&header);
    let mut buf = Vec::with_capacity(header_json.len() + 16 + delta.bytes());
    buf.put_u64_le(header_json.len() as u64);
    buf.put_slice(&header_json);
    for e in &delta.entries {
        for t in &e.params {
            ser::encode_into(t, &mut buf);
        }
    }
    buf
}

/// Reconstructs a delta from [`save_delta_to_bytes`] output, verifying the
/// recorded per-tensor content hashes.
pub fn load_delta_from_bytes(bytes: &[u8]) -> Result<GraphDelta, DeltaError> {
    let mut cur = bytes;
    let hlen = cur
        .take_u64_le()
        .ok_or_else(|| DeltaError::BadPayload("truncated length prefix".into()))?
        as usize;
    let header_bytes = cur
        .take_slice(hlen)
        .ok_or_else(|| DeltaError::BadPayload("truncated header".into()))?;
    let header: DeltaHeader =
        json::from_slice(header_bytes).map_err(|e| DeltaError::BadPayload(e.to_string()))?;
    if header.version != 1 {
        return Err(DeltaError::BadPayload(format!("unsupported version {}", header.version)));
    }
    if header.nodes.len() != header.counts.len() {
        return Err(DeltaError::BadPayload("nodes/counts length mismatch".into()));
    }
    if header.hashes.len() != header.counts.iter().sum::<usize>() {
        return Err(DeltaError::BadPayload("hash count mismatch".into()));
    }
    let mut entries = Vec::with_capacity(header.nodes.len());
    let mut hi = 0usize;
    for (&node, &count) in header.nodes.iter().zip(&header.counts) {
        let mut params = Vec::with_capacity(count);
        for _ in 0..count {
            let t = ser::decode_from(&mut cur).map_err(|e| DeltaError::BadPayload(e.to_string()))?;
            if tensor_hash(&t) != header.hashes[hi] {
                return Err(DeltaError::BadPayload(format!(
                    "content hash mismatch for node #{node} tensor #{hi}"
                )));
            }
            hi += 1;
            params.push(t);
        }
        entries.push(DeltaEntry { node, params });
    }
    Ok(GraphDelta { base_sig: header.base_sig, entries })
}

/// Writes a delta checkpoint file; returns the bytes written.
pub fn save_delta(delta: &GraphDelta, path: &std::path::Path) -> Result<usize, DeltaError> {
    let bytes = save_delta_to_bytes(delta);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len())
}

/// Reads a delta checkpoint file; returns the delta and the bytes read.
pub fn load_delta(path: &std::path::Path) -> Result<(GraphDelta, usize), DeltaError> {
    let data = std::fs::read(path)?;
    let n = data.len();
    Ok((load_delta_from_bytes(&data)?, n))
}

/// Re-hash a node's parameters (the value identity used by expression
/// signatures and [`base_signature`]).
pub fn params_signature(params: &[Tensor]) -> u64 {
    hash_params(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ParamInit;
    use crate::layer::{Activation, LayerKind};
    use nautilus_tensor::init::seeded_rng;

    /// input -> dense(frozen) -> adapter(trainable) -> head(trainable)
    fn variant(seed: u64) -> ModelGraph {
        let mut frozen_rng = seeded_rng(11);
        let mut rng = seeded_rng(seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [6]);
        let f = g
            .add_layer(
                "trunk",
                LayerKind::Dense { in_dim: 6, out_dim: 8, act: Activation::Gelu },
                &[inp],
                true,
                ParamInit::Seeded(&mut frozen_rng),
            )
            .unwrap();
        let a = g
            .add_layer(
                "adapter",
                LayerKind::Adapter { dim: 8, bottleneck: 4 },
                &[f],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let h = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 8, out_dim: 3, act: Activation::None },
                &[a],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(h).unwrap();
        g
    }

    #[test]
    fn base_signature_ignores_trainable_values_only() {
        let a = variant(1);
        let b = variant(2);
        assert_eq!(base_signature(&a), base_signature(&b), "same base, different deltas");
        assert_eq!(base_signature(&a), base_signature(&strip_trainable(&a)));
        // A frozen-value change breaks the base pairing.
        let mut c = variant(1);
        let mut params = c.node(NodeId(1)).params.clone();
        let mut d = params[0].data().to_vec();
        d[0] += 1.0;
        params[0] = Tensor::from_vec(params[0].shape().clone(), d).unwrap();
        c.set_node_params(NodeId(1), params).unwrap();
        assert_ne!(base_signature(&a), base_signature(&c));
    }

    #[test]
    fn extract_apply_round_trip_is_exact() {
        let v = variant(5);
        let base = strip_trainable(&v);
        assert_eq!(base.node(NodeId(2)).params.len(), 0);
        assert!(base.node(NodeId(1)).params.len() > 0, "frozen weights stay");
        let delta = extract_delta(&v).unwrap();
        assert_eq!(delta.entries.len(), 2);
        let back = apply_delta(&base, &delta).unwrap();
        for (x, y) in v.nodes().iter().zip(back.nodes()) {
            assert_eq!(x.params, y.params);
            assert_eq!(x.param_sig, y.param_sig);
        }
        assert_eq!(v.expr_signatures(), back.expr_signatures());
    }

    #[test]
    fn delta_bytes_round_trip_and_verify_hashes() {
        let v = variant(9);
        let delta = extract_delta(&v).unwrap();
        let bytes = save_delta_to_bytes(&delta);
        assert!(bytes.len() < crate::checkpoint::save_to_bytes(&v).len());
        let back = load_delta_from_bytes(&bytes).unwrap();
        assert_eq!(back.base_sig, delta.base_sig);
        assert_eq!(back.entries.len(), delta.entries.len());
        for (a, b) in delta.entries.iter().zip(&back.entries) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.params, b.params);
        }
        // Corrupt one payload byte: the content hash check must catch it.
        let mut bad = bytes.clone();
        let off = bad.len() - 2;
        bad[off] ^= 0x40;
        assert!(load_delta_from_bytes(&bad).is_err());
    }

    #[test]
    fn apply_rejects_wrong_base_and_partial_cover() {
        let v = variant(3);
        let delta = extract_delta(&v).unwrap();
        let mut other = variant(3);
        let mut params = other.node(NodeId(1)).params.clone();
        let mut d = params[0].data().to_vec();
        d[1] -= 0.5;
        params[0] = Tensor::from_vec(params[0].shape().clone(), d).unwrap();
        other.set_node_params(NodeId(1), params).unwrap();
        assert!(matches!(
            apply_delta(&other, &delta),
            Err(DeltaError::BaseMismatch { .. })
        ));
        let mut partial = delta.clone();
        partial.entries.pop();
        assert!(matches!(
            apply_delta(&strip_trainable(&v), &partial),
            Err(DeltaError::BadEntry(_))
        ));
    }

    #[test]
    fn identical_deltas_share_content_hashes() {
        let a = extract_delta(&variant(4)).unwrap();
        let b = extract_delta(&variant(4)).unwrap();
        let c = extract_delta(&variant(6)).unwrap();
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.content_hash(), y.content_hash());
        }
        assert_ne!(a.entries[0].content_hash(), c.entries[0].content_hash());
    }

    #[test]
    fn extract_requires_materialized_params() {
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        let d = g
            .add_layer(
                "virtual-head",
                LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                &[inp],
                false,
                ParamInit::ShapesOnly { sig: 3 },
            )
            .unwrap();
        g.add_output(d).unwrap();
        assert!(extract_delta(&g).is_err());
    }
}
