//! Task heads: loss and accuracy computation over model logits.

use nautilus_tensor::ops::{argmax_last, cross_entropy_logits};
use nautilus_tensor::{Tensor, TensorError};
use nautilus_util::json_enum;

/// The prediction task shape, fixed per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Per-token classification (NER tagging): logits `[B, S, C]`, targets
    /// `[B, S]` with `-1` for padding.
    TokenTagging,
    /// Whole-record classification: logits `[B, C]`, targets `[B]`.
    Classification,
}

json_enum!(TaskKind { TokenTagging, Classification });

impl TaskKind {
    /// Mean cross-entropy loss and logits gradient.
    pub fn loss(&self, logits: &Tensor, targets: &[i64]) -> Result<(f32, Tensor), TensorError> {
        cross_entropy_logits(logits, targets)
    }

    /// Fraction of non-padding targets predicted correctly.
    pub fn accuracy(&self, logits: &Tensor, targets: &[i64]) -> Result<f32, TensorError> {
        let preds = argmax_last(logits);
        if preds.len() != targets.len() {
            return Err(TensorError::Incompatible(format!(
                "predictions {} vs targets {}",
                preds.len(),
                targets.len()
            )));
        }
        let mut counted = 0usize;
        let mut correct = 0usize;
        for (&p, &t) in preds.iter().zip(targets) {
            if t < 0 {
                continue;
            }
            counted += 1;
            if p as i64 == t {
                correct += 1;
            }
        }
        Ok(if counted == 0 { 0.0 } else { correct as f32 / counted as f32 })
    }

    /// Per-row maximum softmax probability — the confidence score consumed
    /// by uncertainty-based active-learning samplers.
    pub fn confidences(&self, logits: &Tensor) -> Vec<f32> {
        let probs = nautilus_tensor::ops::softmax_last(logits);
        let (rows, cols, data) = probs.as_matrix();
        (0..rows)
            .map(|r| data[r * cols..(r + 1) * cols].iter().fold(0.0f32, |m, &x| m.max(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_non_padding() {
        let logits =
            Tensor::from_vec([3, 2], vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0]).unwrap();
        let t = TaskKind::Classification;
        assert_eq!(t.accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(t.accuracy(&logits, &[0, 1, -1]).unwrap(), 1.0);
        assert!(t.accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn loss_decreasing_in_confidence() {
        let t = TaskKind::TokenTagging;
        let weak = Tensor::from_vec([1, 2], vec![0.1, 0.0]).unwrap();
        let strong = Tensor::from_vec([1, 2], vec![5.0, 0.0]).unwrap();
        let (lw, _) = t.loss(&weak, &[0]).unwrap();
        let (ls, _) = t.loss(&strong, &[0]).unwrap();
        assert!(ls < lw);
    }

    #[test]
    fn confidences_are_max_probs() {
        let logits = Tensor::from_vec([2, 2], vec![0.0, 0.0, 10.0, 0.0]).unwrap();
        let c = TaskKind::Classification.confidences(&logits);
        assert!((c[0] - 0.5).abs() < 1e-5);
        assert!(c[1] > 0.99);
    }
}
