//! MiniResNet: convolutional stem + residual stages + classifier, plus the
//! fine-tuning adaptation used by the FTU workload.

use crate::{shapes_only_sig, BuildScale};
use nautilus_dnn::graph::{GraphError, ModelGraph, NodeId, ParamInit};
use nautilus_dnn::layer::{Activation, LayerKind};
use nautilus_tensor::init::seeded_rng;

/// Configuration of a MiniResNet backbone.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Input image side (square RGB, CHW).
    pub image_size: usize,
    /// Stem output channels.
    pub stem_channels: usize,
    /// Residual blocks per stage.
    pub stage_blocks: Vec<usize>,
    /// Channels per stage (first block of each stage downsamples).
    pub stage_channels: Vec<usize>,
    /// Stem convolution stride (2 downsamples like ResNet-50's 7x7/2 stem).
    pub stem_stride: usize,
    /// Whether a 2x2/2 max-pool follows the stem (ResNet-50 style).
    pub stem_pool: bool,
    /// Seed for the deterministic "pre-trained" parameters.
    pub seed: u64,
}

impl ResNetConfig {
    /// A CPU-trainable configuration with 16 residual blocks — enough depth
    /// for the FTU workload's "last {3, 6, 9, 12} blocks" sweeps.
    pub fn tiny(image_size: usize) -> Self {
        ResNetConfig {
            image_size,
            stem_channels: 8,
            stage_blocks: vec![3, 4, 6, 3],
            stage_channels: vec![8, 16, 24, 32],
            stem_stride: 1,
            stem_pool: false,
            seed: 2000,
        }
    }

    /// ResNet-50-like cost profile for the simulated backend: 16 residual
    /// blocks in the classic 3-4-6-3 arrangement, a downsampling stem
    /// (stride-2 conv + max-pool), and channel growth tuned so early stages
    /// carry most of the FLOPs (the paper notes FTU uses a less
    /// compute-intensive model than BERT).
    pub fn resnet50_like() -> Self {
        ResNetConfig {
            image_size: 224,
            stem_channels: 64,
            stage_blocks: vec![3, 4, 6, 3],
            stage_channels: vec![64, 96, 128, 160],
            stem_stride: 2,
            stem_pool: true,
            seed: 2000,
        }
    }

    /// Total number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.stage_blocks.iter().sum()
    }
}

/// Handles into a built backbone.
#[derive(Debug, Clone)]
pub struct ResNetBackbone {
    /// Image input placeholder.
    pub input: NodeId,
    /// Stem convolution output.
    pub stem: NodeId,
    /// Residual block outputs, bottom to top.
    pub blocks: Vec<NodeId>,
    /// Global-average-pool output (feature vector).
    pub pooled: NodeId,
    /// Feature width after pooling.
    pub feature_dim: usize,
}

#[allow(clippy::too_many_arguments)]
fn add_node(
    cfg: &ResNetConfig,
    g: &mut ModelGraph,
    name: &str,
    kind: LayerKind,
    inputs: &[NodeId],
    frozen: bool,
    scale: BuildScale,
    rng: &mut nautilus_util::rng::StdRng,
) -> Result<NodeId, GraphError> {
    match scale {
        BuildScale::Real => g.add_layer(name, kind, inputs, frozen, ParamInit::Seeded(rng)),
        BuildScale::ShapesOnly => g.add_layer(
            name,
            kind,
            inputs,
            frozen,
            ParamInit::ShapesOnly { sig: shapes_only_sig(cfg.seed, name) },
        ),
    }
}

/// Builds the frozen pre-trained backbone into `g`.
pub fn build_backbone(
    cfg: &ResNetConfig,
    g: &mut ModelGraph,
    scale: BuildScale,
) -> Result<ResNetBackbone, GraphError> {
    if cfg.stage_blocks.len() != cfg.stage_channels.len() {
        return Err(GraphError::Layer(format!(
            "stage_blocks ({}) and stage_channels ({}) must align",
            cfg.stage_blocks.len(),
            cfg.stage_channels.len()
        )));
    }
    let mut rng = seeded_rng(cfg.seed);
    let input = g.add_input("image", [3, cfg.image_size, cfg.image_size]);
    let stem = add_node(
        cfg,
        g,
        "resnet/stem",
        LayerKind::Conv2d {
            in_ch: 3,
            out_ch: cfg.stem_channels,
            k: 3,
            stride: cfg.stem_stride,
            pad: 1,
            act: Activation::Relu,
        },
        &[input],
        true,
        scale,
        &mut rng,
    )?;
    let mut prev = stem;
    if cfg.stem_pool {
        prev = g.add_layer(
            "resnet/stem-pool",
            LayerKind::MaxPool2d { k: 2, stride: 2 },
            &[prev],
            true,
            ParamInit::Given(vec![]),
        )?;
    }
    let mut prev_ch = cfg.stem_channels;
    let mut blocks = Vec::with_capacity(cfg.num_blocks());
    let mut idx = 0usize;
    for (stage, (&count, &ch)) in
        cfg.stage_blocks.iter().zip(&cfg.stage_channels).enumerate()
    {
        for b in 0..count {
            // First block of each stage after the first downsamples.
            let stride = if b == 0 && stage > 0 { 2 } else { 1 };
            let block = add_node(
                cfg,
                g,
                &format!("resnet/block{idx}"),
                LayerKind::ResidualBlock { in_ch: prev_ch, out_ch: ch, stride },
                &[prev],
                true,
                scale,
                &mut rng,
            )?;
            prev = block;
            prev_ch = ch;
            blocks.push(block);
            idx += 1;
        }
    }
    let pooled = g.add_layer(
        "resnet/gap",
        LayerKind::GlobalAvgPool,
        &[prev],
        true,
        ParamInit::Given(vec![]),
    )?;
    Ok(ResNetBackbone { input, stem, blocks, pooled, feature_dim: prev_ch })
}

/// Builds a fine-tuning candidate (Fig 2C, the FTU workload): the top
/// `unfrozen_blocks` residual blocks unfrozen, classifier head on pooled
/// features.
pub fn fine_tune_model(
    cfg: &ResNetConfig,
    unfrozen_blocks: usize,
    num_classes: usize,
    scale: BuildScale,
) -> Result<ModelGraph, GraphError> {
    let mut g = ModelGraph::new();
    let bb = build_backbone(cfg, &mut g, scale)?;
    let total = bb.blocks.len();
    let first_unfrozen = total.saturating_sub(unfrozen_blocks);
    for (i, &b) in bb.blocks.iter().enumerate() {
        if i >= first_unfrozen {
            g.node_mut(b).frozen = false;
        }
    }
    let mut hrng = seeded_rng(cfg.seed ^ 0xCAFE ^ unfrozen_blocks as u64);
    let logits = match scale {
        BuildScale::Real => g.add_layer(
            "head/classifier",
            LayerKind::Dense { in_dim: bb.feature_dim, out_dim: num_classes, act: Activation::None },
            &[bb.pooled],
            false,
            ParamInit::Seeded(&mut hrng),
        )?,
        BuildScale::ShapesOnly => g.add_layer(
            "head/classifier",
            LayerKind::Dense { in_dim: bb.feature_dim, out_dim: num_classes, act: Activation::None },
            &[bb.pooled],
            false,
            ParamInit::ShapesOnly { sig: shapes_only_sig(cfg.seed, "head/classifier") },
        )?,
    };
    g.add_output(logits)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_structure() {
        let cfg = ResNetConfig::tiny(16);
        let mut g = ModelGraph::new();
        let bb = build_backbone(&cfg, &mut g, BuildScale::Real).unwrap();
        g.validate().unwrap();
        assert_eq!(bb.blocks.len(), 16);
        // Spatial dims shrink by 2^3 across the 4 stages.
        let last = *bb.blocks.last().unwrap();
        assert_eq!(g.shape(last).0, vec![32, 2, 2]);
        assert_eq!(g.shape(bb.pooled).0, vec![32]);
    }

    #[test]
    fn fine_tune_freezing_schemes() {
        let cfg = ResNetConfig::tiny(16);
        for k in [3usize, 6, 9, 12] {
            let g = fine_tune_model(&cfg, k, 2, BuildScale::Real).unwrap();
            g.validate().unwrap();
            let trainable_blocks = g
                .ids()
                .filter(|&id| g.node(id).name.starts_with("resnet/block") && g.node(id).trainable())
                .count();
            assert_eq!(trainable_blocks, k);
            // Materializable frontier: everything strictly below the first
            // unfrozen block.
            let m = g.materializable();
            let mat_blocks = g
                .ids()
                .filter(|&id| g.node(id).name.starts_with("resnet/block") && m[id.index()])
                .count();
            assert_eq!(mat_blocks, 16 - k);
        }
    }

    #[test]
    fn shared_backbone_signatures_across_freezing_schemes() {
        let cfg = ResNetConfig::tiny(16);
        let a = fine_tune_model(&cfg, 3, 2, BuildScale::Real).unwrap();
        let b = fine_tune_model(&cfg, 6, 2, BuildScale::Real).unwrap();
        let sa = a.expr_signatures();
        let sb = b.expr_signatures();
        // Nodes below both unfreezing points share signatures: input, stem,
        // and the first 10 blocks (ids 0..=11).
        for i in 0..12 {
            assert_eq!(sa[i], sb[i], "node {i}");
        }
        // An unfrozen block differs (frozen flag is part of the signature).
        assert_ne!(sa[14], sb[14]);
    }

    #[test]
    fn resnet50_like_params_in_range() {
        let g = fine_tune_model(&ResNetConfig::resnet50_like(), 3, 2, BuildScale::ShapesOnly)
            .unwrap();
        let params = g.params_bytes() / 4;
        // Plain blocks at the cost-decaying widths: a few million params.
        assert!(params > 1_000_000 && params < 40_000_000, "params {params}");
    }

    #[test]
    fn misaligned_stages_rejected() {
        let cfg = ResNetConfig {
            stage_blocks: vec![2, 2],
            stage_channels: vec![8],
            ..ResNetConfig::tiny(16)
        };
        let mut g = ModelGraph::new();
        assert!(build_backbone(&cfg, &mut g, BuildScale::Real).is_err());
    }
}
