//! MiniBERT: embedding + stack of transformer encoder blocks, plus the
//! BERT-based transfer-learning adaptations (feature transfer, adapters,
//! fine-tuning) used by the FTR-* and ATR workloads.

use crate::{shapes_only_sig, BuildScale};
use nautilus_dnn::graph::{GraphError, ModelGraph, NodeId, ParamInit};
use nautilus_dnn::layer::{Activation, LayerKind};
use nautilus_tensor::init::seeded_rng;

/// Configuration of a MiniBERT backbone.
#[derive(Debug, Clone)]
pub struct BertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ff: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Maximum (and, in this reproduction, fixed) sequence length.
    pub seq_len: usize,
    /// Seed for the deterministic "pre-trained" parameters.
    pub seed: u64,
}

impl BertConfig {
    /// A CPU-trainable configuration used by tests, examples, and the
    /// real-backend experiments.
    pub fn tiny(seq_len: usize, vocab: usize) -> Self {
        BertConfig { vocab, hidden: 32, heads: 4, ff: 64, layers: 6, seq_len, seed: 1000 }
    }

    /// BERT-base-like dimensions for the simulated backend (12 layers,
    /// hidden 768, ff 3072, sequences tokenized and padded to 128 — the
    /// standard BERT fine-tuning setting).
    pub fn base_like() -> Self {
        BertConfig { vocab: 30_522, hidden: 768, heads: 12, ff: 3072, layers: 12, seq_len: 128, seed: 1000 }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_node(
        &self,
        g: &mut ModelGraph,
        name: &str,
        kind: LayerKind,
        inputs: &[NodeId],
        frozen: bool,
        scale: BuildScale,
        rng: &mut nautilus_util::rng::StdRng,
    ) -> Result<NodeId, GraphError> {
        match scale {
            BuildScale::Real => g.add_layer(name, kind, inputs, frozen, ParamInit::Seeded(rng)),
            BuildScale::ShapesOnly => {
                // Keep the RNG stream aligned with the Real build so both
                // scales produce structurally identical graphs, then tag
                // parameters with a seed+name signature.
                let sig = shapes_only_sig(self.seed, name);
                g.add_layer(name, kind, inputs, frozen, ParamInit::ShapesOnly { sig })
            }
        }
    }
}

/// Handles into a built backbone.
#[derive(Debug, Clone)]
pub struct BertBackbone {
    /// Token-id input placeholder.
    pub input: NodeId,
    /// Embedding layer output.
    pub embedding: NodeId,
    /// Transformer block outputs, bottom to top.
    pub blocks: Vec<NodeId>,
    /// Hidden width.
    pub hidden: usize,
}

impl BertBackbone {
    /// The top (last) hidden layer.
    pub fn last_hidden(&self) -> NodeId {
        *self.blocks.last().expect("backbone has at least one block")
    }
}

/// Builds the frozen pre-trained backbone into `g`.
///
/// `adapters_after` optionally interleaves trainable bottleneck adapters
/// after the listed block indices (0-based), producing the ATR topology of
/// Fig 2(D): blocks stay frozen, adapters train, and everything *above* the
/// lowest adapter stops being materializable.
pub fn build_backbone(
    cfg: &BertConfig,
    g: &mut ModelGraph,
    scale: BuildScale,
    adapters_after: &[(usize, usize)], // (block index, bottleneck width)
) -> Result<BertBackbone, GraphError> {
    let mut rng = seeded_rng(cfg.seed);
    let input = g.add_input("tokens", [cfg.seq_len]);
    let embedding = cfg.add_node(
        g,
        "bert/embedding",
        LayerKind::Embedding { vocab: cfg.vocab, dim: cfg.hidden, max_len: cfg.seq_len },
        &[input],
        true,
        scale,
        &mut rng,
    )?;
    let mut prev = embedding;
    let mut blocks = Vec::with_capacity(cfg.layers);
    for i in 0..cfg.layers {
        let block = cfg.add_node(
            g,
            &format!("bert/block{i}"),
            LayerKind::TransformerBlock { dim: cfg.hidden, heads: cfg.heads, ff_dim: cfg.ff },
            &[prev],
            true,
            scale,
            &mut rng,
        )?;
        prev = block;
        if let Some(&(_, bottleneck)) = adapters_after.iter().find(|(bi, _)| *bi == i) {
            // Adapters are *new* trainable layers, not pre-trained: they get
            // their own parameters regardless of scale. A fresh RNG keyed by
            // block index keeps builds deterministic.
            let name = format!("adapter{i}");
            let kind = LayerKind::Adapter { dim: cfg.hidden, bottleneck };
            let adapter = match scale {
                BuildScale::Real => {
                    let mut arng = seeded_rng(cfg.seed ^ (0xADA0 + i as u64));
                    g.add_layer(&name, kind, &[prev], false, ParamInit::Seeded(&mut arng))?
                }
                BuildScale::ShapesOnly => g.add_layer(
                    &name,
                    kind,
                    &[prev],
                    false,
                    ParamInit::ShapesOnly { sig: shapes_only_sig(cfg.seed, &name) },
                )?,
            };
            prev = adapter;
        }
        blocks.push(prev);
    }
    Ok(BertBackbone { input, embedding, blocks, hidden: cfg.hidden })
}

/// The six feature-extraction strategies of the FTR workloads (Table 3,
/// taken from Devlin et al.'s feature-based experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureStrategy {
    /// The embedding layer output.
    EmbeddingOut,
    /// The second-to-last hidden layer.
    SecondLastHidden,
    /// The last hidden layer.
    LastHidden,
    /// Elementwise sum of the last four hidden layers.
    SumLast4,
    /// Concatenation of the last four hidden layers.
    ConcatLast4,
    /// Elementwise sum of all hidden layers.
    SumAllHidden,
}

impl FeatureStrategy {
    /// All strategies in Table 3 order.
    pub const ALL: [FeatureStrategy; 6] = [
        FeatureStrategy::EmbeddingOut,
        FeatureStrategy::SecondLastHidden,
        FeatureStrategy::LastHidden,
        FeatureStrategy::SumLast4,
        FeatureStrategy::ConcatLast4,
        FeatureStrategy::SumAllHidden,
    ];

    /// Short label used in workload tables.
    pub fn label(&self) -> &'static str {
        match self {
            FeatureStrategy::EmbeddingOut => "embedding",
            FeatureStrategy::SecondLastHidden => "second-last-hidden",
            FeatureStrategy::LastHidden => "last-hidden",
            FeatureStrategy::SumLast4 => "sum-last-4",
            FeatureStrategy::ConcatLast4 => "concat-last-4",
            FeatureStrategy::SumAllHidden => "sum-all-hidden",
        }
    }

    /// Feature width produced on a backbone of width `hidden`.
    pub fn feature_dim(&self, hidden: usize) -> usize {
        match self {
            FeatureStrategy::ConcatLast4 => 4 * hidden,
            _ => hidden,
        }
    }
}

/// Builds a feature-transfer candidate (Fig 2B): the whole backbone frozen,
/// features extracted per `strategy`, then a *new* trainable transformer
/// block over the features and a token-classification head.
pub fn feature_transfer_model(
    cfg: &BertConfig,
    strategy: FeatureStrategy,
    num_tags: usize,
    scale: BuildScale,
) -> Result<ModelGraph, GraphError> {
    let mut g = ModelGraph::new();
    let bb = build_backbone(cfg, &mut g, scale, &[])?;
    let l = bb.blocks.len();
    if l < 4 {
        return Err(GraphError::Layer(format!(
            "feature strategies need >= 4 blocks, got {l}"
        )));
    }
    let features = match strategy {
        FeatureStrategy::EmbeddingOut => bb.embedding,
        FeatureStrategy::SecondLastHidden => bb.blocks[l - 2],
        FeatureStrategy::LastHidden => bb.blocks[l - 1],
        FeatureStrategy::SumLast4 => g.add_layer(
            "features/sum-last-4",
            LayerKind::Add,
            &[bb.blocks[l - 4], bb.blocks[l - 3], bb.blocks[l - 2], bb.blocks[l - 1]],
            true,
            ParamInit::Given(vec![]),
        )?,
        FeatureStrategy::ConcatLast4 => g.add_layer(
            "features/concat-last-4",
            LayerKind::ConcatLast,
            &[bb.blocks[l - 4], bb.blocks[l - 3], bb.blocks[l - 2], bb.blocks[l - 1]],
            true,
            ParamInit::Given(vec![]),
        )?,
        FeatureStrategy::SumAllHidden => g.add_layer(
            "features/sum-all-hidden",
            LayerKind::Add,
            &bb.blocks,
            true,
            ParamInit::Given(vec![]),
        )?,
    };
    let fdim = strategy.feature_dim(cfg.hidden);
    let head_seed = cfg.seed ^ 0xF00D ^ strategy.label().len() as u64;
    let mut hrng = seeded_rng(head_seed);
    // Wide features (concat-last-4) are first projected back to the model
    // width so the new transformer layer has the backbone's cost profile
    // regardless of strategy (the paper's added layer operates at the
    // standard hidden size).
    let head_in = if fdim == cfg.hidden {
        features
    } else {
        add_head_node(
            &mut g,
            "head/projection",
            LayerKind::Dense { in_dim: fdim, out_dim: cfg.hidden, act: Activation::None },
            &[features],
            scale,
            cfg.seed,
            &mut hrng,
        )?
    };
    let head_block = add_head_node(
        &mut g,
        "head/transformer",
        LayerKind::TransformerBlock { dim: cfg.hidden, heads: cfg.heads, ff_dim: cfg.ff },
        &[head_in],
        scale,
        cfg.seed,
        &mut hrng,
    )?;
    let logits = add_head_node(
        &mut g,
        "head/classifier",
        LayerKind::Dense { in_dim: cfg.hidden, out_dim: num_tags, act: Activation::None },
        &[head_block],
        scale,
        cfg.seed,
        &mut hrng,
    )?;
    g.add_output(logits)?;
    Ok(g)
}

/// Builds an adapter-training candidate (Fig 2D): backbone frozen, adapters
/// adapting the top `adapted_layers` blocks, token-classification head.
///
/// "Adapting block j" inserts a bottleneck adapter *below* block j (after
/// block j−1), matching Houlsby adapters living inside the block: gradients
/// must pass through the adapted blocks, so they are frozen but not
/// materializable.
pub fn adapter_model(
    cfg: &BertConfig,
    adapted_layers: usize,
    bottleneck: usize,
    num_tags: usize,
    scale: BuildScale,
) -> Result<ModelGraph, GraphError> {
    let lo = cfg.layers.saturating_sub(adapted_layers + 1);
    let adapters: Vec<(usize, usize)> =
        (lo..cfg.layers.saturating_sub(1)).map(|i| (i, bottleneck)).collect();
    let mut g = ModelGraph::new();
    let bb = build_backbone(cfg, &mut g, scale, &adapters)?;
    let mut hrng = seeded_rng(cfg.seed ^ 0xAD00 ^ adapted_layers as u64);
    let logits = add_head_node(
        &mut g,
        "head/classifier",
        LayerKind::Dense { in_dim: cfg.hidden, out_dim: num_tags, act: Activation::None },
        &[bb.last_hidden()],
        scale,
        cfg.seed,
        &mut hrng,
    )?;
    g.add_output(logits)?;
    Ok(g)
}

/// Builds a fine-tuning candidate (Fig 2C): the top `unfrozen_layers`
/// transformer blocks unfrozen, the rest frozen, token-classification head.
pub fn fine_tune_model(
    cfg: &BertConfig,
    unfrozen_layers: usize,
    num_tags: usize,
    scale: BuildScale,
) -> Result<ModelGraph, GraphError> {
    let mut g = ModelGraph::new();
    let bb = build_backbone(cfg, &mut g, scale, &[])?;
    let first_unfrozen = cfg.layers.saturating_sub(unfrozen_layers);
    // Unfreezing must not change parameter values, only the flag.
    for (i, &b) in bb.blocks.iter().enumerate() {
        if i >= first_unfrozen {
            g.node_mut(b).frozen = false;
        }
    }
    let mut hrng = seeded_rng(cfg.seed ^ 0xFE00 ^ unfrozen_layers as u64);
    let logits = add_head_node(
        &mut g,
        "head/classifier",
        LayerKind::Dense { in_dim: cfg.hidden, out_dim: num_tags, act: Activation::None },
        &[bb.last_hidden()],
        scale,
        cfg.seed,
        &mut hrng,
    )?;
    g.add_output(logits)?;
    Ok(g)
}

fn add_head_node(
    g: &mut ModelGraph,
    name: &str,
    kind: LayerKind,
    inputs: &[NodeId],
    scale: BuildScale,
    seed: u64,
    rng: &mut nautilus_util::rng::StdRng,
) -> Result<NodeId, GraphError> {
    match scale {
        BuildScale::Real => g.add_layer(name, kind, inputs, false, ParamInit::Seeded(rng)),
        BuildScale::ShapesOnly => g.add_layer(
            name,
            kind,
            inputs,
            false,
            ParamInit::ShapesOnly { sig: shapes_only_sig(seed, name) },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BertConfig {
        BertConfig::tiny(8, 50)
    }

    #[test]
    fn backbone_is_fully_frozen_and_materializable() {
        let mut g = ModelGraph::new();
        let bb = build_backbone(&tiny(), &mut g, BuildScale::Real, &[]).unwrap();
        assert_eq!(bb.blocks.len(), 6);
        let m = g.materializable();
        assert!(m.iter().all(|&x| x), "whole frozen backbone is materializable");
    }

    #[test]
    fn feature_transfer_structure() {
        for strategy in FeatureStrategy::ALL {
            let g = feature_transfer_model(&tiny(), strategy, 9, BuildScale::Real).unwrap();
            g.validate().unwrap();
            assert_eq!(g.outputs().len(), 1);
            let out = g.outputs()[0];
            // Token tagging: [seq, num_tags].
            assert_eq!(g.shape(out).0, vec![8, 9], "{strategy:?}");
            // Trainable nodes: head transformer + classifier, plus a
            // projection for the wide concat strategy.
            let trainables =
                g.ids().filter(|&id| g.node(id).trainable()).count();
            let expected = if strategy == FeatureStrategy::ConcatLast4 { 3 } else { 2 };
            assert_eq!(trainables, expected, "{strategy:?}");
            // Everything below the head is materializable.
            let m = g.materializable();
            let mat_count = m.iter().filter(|&&x| x).count();
            assert!(mat_count >= 8, "{strategy:?}: {mat_count}");
        }
    }

    #[test]
    fn concat_strategy_widens_features() {
        let g =
            feature_transfer_model(&tiny(), FeatureStrategy::ConcatLast4, 9, BuildScale::Real)
                .unwrap();
        let concat = g
            .ids()
            .find(|&id| g.node(id).name.contains("concat"))
            .expect("concat node present");
        assert_eq!(g.shape(concat).0, vec![8, 4 * 32]);
    }

    #[test]
    fn identical_configs_share_backbone_signatures() {
        let a = feature_transfer_model(&tiny(), FeatureStrategy::LastHidden, 9, BuildScale::Real)
            .unwrap();
        let b =
            feature_transfer_model(&tiny(), FeatureStrategy::SumLast4, 9, BuildScale::Real)
                .unwrap();
        let sa = a.expr_signatures();
        let sb = b.expr_signatures();
        // Backbone nodes 0..=7 (input, embedding, 6 blocks) line up.
        for i in 0..8 {
            assert_eq!(sa[i], sb[i], "backbone node {i} signature differs");
        }
    }

    #[test]
    fn shapes_only_matches_real_structure_and_signatures_are_stable() {
        let cfg = tiny();
        let real =
            feature_transfer_model(&cfg, FeatureStrategy::SumLast4, 9, BuildScale::Real).unwrap();
        let sim = feature_transfer_model(&cfg, FeatureStrategy::SumLast4, 9, BuildScale::ShapesOnly)
            .unwrap();
        assert_eq!(real.len(), sim.len());
        for (a, b) in real.nodes().iter().zip(sim.nodes()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.frozen, b.frozen);
            assert_eq!(a.param_shapes, b.param_shapes);
            assert!(b.params.is_empty() || b.param_shapes.is_empty());
        }
        let sim2 =
            feature_transfer_model(&cfg, FeatureStrategy::SumLast4, 9, BuildScale::ShapesOnly)
                .unwrap();
        assert_eq!(sim.expr_signatures(), sim2.expr_signatures());
    }

    #[test]
    fn adapter_model_breaks_materializability_above_lowest_adapter() {
        let cfg = tiny();
        let g = adapter_model(&cfg, 2, 8, 9, BuildScale::Real).unwrap();
        g.validate().unwrap();
        let m = g.materializable();
        let rg = g.requires_grad();
        // Blocks 0..3 and embedding materializable; adapters trainable.
        let adapters: Vec<NodeId> =
            g.ids().filter(|&id| g.node(id).name.starts_with("adapter")).collect();
        assert_eq!(adapters.len(), 2);
        for &a in &adapters {
            assert!(g.node(a).trainable());
            assert!(!m[a.index()]);
            assert!(rg[a.index()]);
        }
        // The top block (after an adapter) is frozen but not materializable.
        let top_block = g.ids().find(|&id| g.node(id).name == "bert/block5").unwrap();
        assert!(g.node(top_block).frozen);
        assert!(!m[top_block.index()]);
        // But blocks below the first adapter are.
        let low_block = g.ids().find(|&id| g.node(id).name == "bert/block3").unwrap();
        assert!(m[low_block.index()]);
    }

    #[test]
    fn fine_tune_model_unfreezes_top_blocks_without_touching_params() {
        let cfg = tiny();
        let frozen_version = feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 9, BuildScale::Real).unwrap();
        let g = fine_tune_model(&cfg, 2, 9, BuildScale::Real).unwrap();
        g.validate().unwrap();
        let m = g.materializable();
        let b3 = g.ids().find(|&id| g.node(id).name == "bert/block3").unwrap();
        let b4 = g.ids().find(|&id| g.node(id).name == "bert/block4").unwrap();
        let b5 = g.ids().find(|&id| g.node(id).name == "bert/block5").unwrap();
        assert!(m[b3.index()] && !m[b4.index()] && !m[b5.index()]);
        assert!(g.node(b4).trainable() && g.node(b5).trainable());
        // Parameter values equal the frozen build (only the flag changed).
        let f4 = frozen_version.ids().find(|&id| frozen_version.node(id).name == "bert/block4").unwrap();
        assert_eq!(frozen_version.node(f4).params, g.node(b4).params);
    }

    #[test]
    fn base_like_dimensions() {
        let cfg = BertConfig::base_like();
        let g = feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 9, BuildScale::ShapesOnly)
            .unwrap();
        // ~110M params like BERT-base (within 20%).
        let params = g.params_bytes() / 4;
        assert!(params > 80_000_000 && params < 140_000_000, "params {params}");
    }
}
