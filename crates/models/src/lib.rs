#![warn(missing_docs)]

//! Model zoo: pre-trained backbones and transfer-learning adaptations.
//!
//! The paper adapts BERT-base (FTR-*, ATR workloads) and ResNet-50 (FTU);
//! real pre-trained weights are unavailable here, so backbones carry
//! deterministic seeded "pre-trained" parameters. Two build scales share all
//! code paths:
//!
//! * **real** — small dimensions with actual parameter tensors, trainable on
//!   CPU (accuracy experiments, tests, examples);
//! * **shapes-only** — BERT-base / ResNet-50-like dimensions with parameter
//!   *shapes* but no data, consumed by the simulated backend for the
//!   paper-scale runtime figures.
//!
//! Recurrent source models are supported by unrolling them in time
//! ([`rnn`], paper §2.5).
//!
//! The three transfer approaches of §2.4 are provided as graph builders:
//! [`bert::feature_transfer_model`] (Fig 2B), [`bert::fine_tune_model`] /
//! [`resnet::fine_tune_model`] (Fig 2C), and [`bert::adapter_model`]
//! (Fig 2D). All builders derive backbone parameters from the config seed,
//! so every candidate model in a workload shares bit-identical frozen
//! layers — the premise of the multi-model graph merge (Def 4.3).

pub mod bert;
pub mod resnet;
pub mod rnn;

use nautilus_dnn::graph::{GraphError, ModelGraph};
use nautilus_tensor::init::{randn, seeded_rng};

/// Derives a per-tenant variant of `graph`: the frozen backbone is kept
/// bit-identical (so every variant pairs with the same serving base — see
/// `nautilus_dnn::delta::base_signature`) while every trainable node's
/// parameters are re-drawn from `tenant_seed`. This stands in for the
/// per-tenant fine-tuning a real deployment would run; what matters for
/// the serving layer is the resulting shape of the artifact: one shared
/// base plus a small tenant-specific delta.
pub fn personalize(graph: &ModelGraph, tenant_seed: u64) -> Result<ModelGraph, GraphError> {
    let mut g = graph.clone();
    let mut rng = seeded_rng(tenant_seed ^ 0x7E4A_4751);
    let ids: Vec<_> = g.ids().filter(|&id| g.node(id).trainable()).collect();
    for id in ids {
        let params = g
            .node(id)
            .param_shapes
            .iter()
            .map(|s| randn(s.clone(), 0.02, &mut rng))
            .collect();
        g.set_node_params(id, params)?;
    }
    Ok(g)
}

/// Whether to build graphs with real parameters or shapes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildScale {
    /// Allocate and initialize real parameter tensors.
    Real,
    /// Record parameter shapes only (simulated backend).
    ShapesOnly,
}

/// Derives a stable parameter signature for shapes-only nodes from the
/// backbone seed and a layer tag (two builds of the same config produce
/// identical signatures; different seeds do not).
pub(crate) fn shapes_only_sig(seed: u64, tag: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    tag.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::delta::base_signature;

    #[test]
    fn personalize_keeps_base_and_redraws_trainables() {
        let cfg = bert::BertConfig::tiny(8, 50);
        let base = bert::adapter_model(&cfg, 2, 8, 9, BuildScale::Real).unwrap();
        let a = personalize(&base, 1).unwrap();
        let b = personalize(&base, 2).unwrap();
        // Same base pairing signature across tenants...
        assert_eq!(base_signature(&base), base_signature(&a));
        assert_eq!(base_signature(&a), base_signature(&b));
        // ...but distinct trainable parameters per tenant seed, and
        // deterministic per seed.
        let trainable_params = |g: &ModelGraph| -> Vec<_> {
            g.ids()
                .filter(|&id| g.node(id).trainable())
                .flat_map(|id| g.node(id).params.clone())
                .collect::<Vec<_>>()
        };
        assert_ne!(trainable_params(&a), trainable_params(&b));
        let a2 = personalize(&base, 1).unwrap();
        assert_eq!(trainable_params(&a), trainable_params(&a2));
        // Frozen weights are untouched.
        for (na, nb) in base.nodes().iter().zip(a.nodes()) {
            if na.frozen {
                assert_eq!(na.params, nb.params);
            }
        }
    }
}
