#![warn(missing_docs)]

//! Model zoo: pre-trained backbones and transfer-learning adaptations.
//!
//! The paper adapts BERT-base (FTR-*, ATR workloads) and ResNet-50 (FTU);
//! real pre-trained weights are unavailable here, so backbones carry
//! deterministic seeded "pre-trained" parameters. Two build scales share all
//! code paths:
//!
//! * **real** — small dimensions with actual parameter tensors, trainable on
//!   CPU (accuracy experiments, tests, examples);
//! * **shapes-only** — BERT-base / ResNet-50-like dimensions with parameter
//!   *shapes* but no data, consumed by the simulated backend for the
//!   paper-scale runtime figures.
//!
//! Recurrent source models are supported by unrolling them in time
//! ([`rnn`], paper §2.5).
//!
//! The three transfer approaches of §2.4 are provided as graph builders:
//! [`bert::feature_transfer_model`] (Fig 2B), [`bert::fine_tune_model`] /
//! [`resnet::fine_tune_model`] (Fig 2C), and [`bert::adapter_model`]
//! (Fig 2D). All builders derive backbone parameters from the config seed,
//! so every candidate model in a workload shares bit-identical frozen
//! layers — the premise of the multi-model graph merge (Def 4.3).

pub mod bert;
pub mod resnet;
pub mod rnn;

/// Whether to build graphs with real parameters or shapes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildScale {
    /// Allocate and initialize real parameter tensors.
    Real,
    /// Record parameter shapes only (simulated backend).
    ShapesOnly,
}

/// Derives a stable parameter signature for shapes-only nodes from the
/// backbone seed and a layer tag (two builds of the same config produce
/// identical signatures; different seeds do not).
pub(crate) fn shapes_only_sig(seed: u64, tag: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    tag.hash(&mut h);
    h.finish()
}
