//! Recurrent encoders, unrolled in time.
//!
//! The paper's formalization covers DAGs only and notes (§2.5) that
//! recurrent models are supported "by unraveling them in time and
//! transforming them into a non-recurrent DL model". This module does
//! exactly that: an Elman-style RNN cell `h_t = tanh(W·[x_t; h_{t−1}])` is
//! unrolled into `steps` graph nodes that *share one parameter tensor set*
//! (every step node carries the same tensors, hence the same `param_sig`).
//! Because a pre-trained recurrent encoder is frozen, weight sharing never
//! interacts with training, and every unrolled step is materializable —
//! Nautilus can cut the recurrence at any step.

use crate::{shapes_only_sig, BuildScale};
use nautilus_dnn::graph::{GraphError, ModelGraph, NodeId, ParamInit};
use nautilus_dnn::layer::{Activation, LayerKind};
use nautilus_tensor::init::{glorot, seeded_rng};
use nautilus_tensor::Tensor;

/// Configuration of an unrolled recurrent encoder.
#[derive(Debug, Clone)]
pub struct RnnEncoderConfig {
    /// Per-step input width.
    pub input_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Sequence length (= unrolled depth).
    pub steps: usize,
    /// Seed for the deterministic "pre-trained" cell weights.
    pub seed: u64,
}

impl RnnEncoderConfig {
    /// A CPU-trainable configuration.
    pub fn tiny(steps: usize) -> Self {
        RnnEncoderConfig { input_dim: 8, hidden: 16, steps, seed: 3000 }
    }
}

/// Handles into an unrolled encoder.
#[derive(Debug, Clone)]
pub struct RnnBackbone {
    /// Sequence input placeholder (`[steps, input_dim]` per record).
    pub input: NodeId,
    /// Hidden state after each step, `h_1 .. h_steps`.
    pub hiddens: Vec<NodeId>,
}

impl RnnBackbone {
    /// The final hidden state.
    pub fn last_hidden(&self) -> NodeId {
        *self.hiddens.last().expect("at least one step")
    }
}

/// Unrolls the frozen pre-trained encoder into `g`.
pub fn build_backbone(
    cfg: &RnnEncoderConfig,
    g: &mut ModelGraph,
    scale: BuildScale,
) -> Result<RnnBackbone, GraphError> {
    let input = g.add_input("sequence", [cfg.steps, cfg.input_dim]);
    let h0 = g.add_layer(
        "rnn/h0",
        LayerKind::ZerosLike { shape: vec![cfg.hidden] },
        &[input],
        true,
        ParamInit::Given(vec![]),
    )?;
    // One shared parameter set for every unrolled step.
    let cell_kind = LayerKind::Dense {
        in_dim: cfg.input_dim + cfg.hidden,
        out_dim: cfg.hidden,
        act: Activation::Tanh,
    };
    let shared: Option<Vec<Tensor>> = match scale {
        BuildScale::Real => {
            let mut rng = seeded_rng(cfg.seed);
            Some(vec![
                glorot(
                    [cfg.input_dim + cfg.hidden, cfg.hidden],
                    cfg.input_dim + cfg.hidden,
                    cfg.hidden,
                    &mut rng,
                ),
                Tensor::zeros([cfg.hidden]),
            ])
        }
        BuildScale::ShapesOnly => None,
    };
    let mut h = h0;
    let mut hiddens = Vec::with_capacity(cfg.steps);
    for t in 0..cfg.steps {
        let xt = g.add_layer(
            format!("rnn/x{t}"),
            LayerKind::SliceSeq { index: t },
            &[input],
            true,
            ParamInit::Given(vec![]),
        )?;
        let cat = g.add_layer(
            format!("rnn/cat{t}"),
            LayerKind::ConcatLast,
            &[xt, h],
            true,
            ParamInit::Given(vec![]),
        )?;
        let init = match &shared {
            Some(params) => ParamInit::Given(params.clone()),
            None => ParamInit::ShapesOnly { sig: shapes_only_sig(cfg.seed, "rnn/cell") },
        };
        h = g.add_layer(format!("rnn/h{}", t + 1), cell_kind.clone(), &[cat], true, init)?;
        hiddens.push(h);
    }
    Ok(RnnBackbone { input, hiddens })
}

/// A sequence-classification candidate: frozen unrolled encoder + trainable
/// classifier on the final hidden state (feature transfer, Fig 2B, over a
/// recurrent source model).
pub fn sequence_classifier(
    cfg: &RnnEncoderConfig,
    num_classes: usize,
    scale: BuildScale,
) -> Result<ModelGraph, GraphError> {
    let mut g = ModelGraph::new();
    let bb = build_backbone(cfg, &mut g, scale)?;
    let mut hrng = seeded_rng(cfg.seed ^ 0x5E0);
    let logits = match scale {
        BuildScale::Real => g.add_layer(
            "head/classifier",
            LayerKind::Dense { in_dim: cfg.hidden, out_dim: num_classes, act: Activation::None },
            &[bb.last_hidden()],
            false,
            ParamInit::Seeded(&mut hrng),
        )?,
        BuildScale::ShapesOnly => g.add_layer(
            "head/classifier",
            LayerKind::Dense { in_dim: cfg.hidden, out_dim: num_classes, act: Activation::None },
            &[bb.last_hidden()],
            false,
            ParamInit::ShapesOnly { sig: shapes_only_sig(cfg.seed, "head/classifier") },
        )?,
    };
    g.add_output(logits)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::exec::{forward, BatchInputs};
    use nautilus_tensor::init::randn;

    #[test]
    fn unrolled_encoder_is_fully_materializable() {
        let cfg = RnnEncoderConfig::tiny(5);
        let g = sequence_classifier(&cfg, 3, BuildScale::Real).unwrap();
        g.validate().unwrap();
        let m = g.materializable();
        // Everything except the trainable classifier head.
        let mat = m.iter().filter(|&&x| x).count();
        assert_eq!(mat, g.len() - 1);
    }

    #[test]
    fn steps_share_parameters_but_not_expressions() {
        let cfg = RnnEncoderConfig::tiny(4);
        let mut g = ModelGraph::new();
        let bb = build_backbone(&cfg, &mut g, BuildScale::Real).unwrap();
        let sigs = g.expr_signatures();
        let cells: Vec<&nautilus_dnn::Node> =
            bb.hiddens.iter().map(|&h| g.node(h)).collect();
        // Identical layers (same params)...
        for w in cells.windows(2) {
            assert_eq!(w[0].param_sig, w[1].param_sig);
            assert_eq!(w[0].params, w[1].params);
        }
        // ...but distinct expressions (different parents -> different sigs).
        let mut step_sigs: Vec<u64> = bb.hiddens.iter().map(|h| sigs[h.index()]).collect();
        step_sigs.dedup();
        assert_eq!(step_sigs.len(), bb.hiddens.len());
    }

    #[test]
    fn unrolling_matches_manual_recurrence() {
        let cfg = RnnEncoderConfig::tiny(3);
        let mut g = ModelGraph::new();
        let bb = build_backbone(&cfg, &mut g, BuildScale::Real).unwrap();
        for (i, &h) in bb.hiddens.iter().enumerate() {
            let _ = i;
            g.add_output(h).unwrap();
        }
        let mut rng = seeded_rng(9);
        let x = randn([2, 3, 8], 1.0, &mut rng);
        let mut inputs = BatchInputs::new();
        inputs.insert(bb.input, x.clone());
        let fwd = forward(&g, &inputs, false).unwrap();

        // Manual recurrence with the same shared weights.
        let cell = g.node(bb.hiddens[0]);
        let (w, b) = (&cell.params[0], &cell.params[1]);
        let mut h = Tensor::zeros([2, 16]);
        for t in 0..3 {
            // x_t: [2, 8]
            let mut xt = vec![0.0f32; 2 * 8];
            for bi in 0..2 {
                xt[bi * 8..(bi + 1) * 8]
                    .copy_from_slice(&x.data()[(bi * 3 + t) * 8..(bi * 3 + t + 1) * 8]);
            }
            let xt = Tensor::from_vec([2, 8], xt).unwrap();
            let cat = {
                let mut d = vec![0.0f32; 2 * 24];
                for bi in 0..2 {
                    d[bi * 24..bi * 24 + 8].copy_from_slice(&xt.data()[bi * 8..(bi + 1) * 8]);
                    d[bi * 24 + 8..(bi + 1) * 24]
                        .copy_from_slice(&h.data()[bi * 16..(bi + 1) * 16]);
                }
                Tensor::from_vec([2, 24], d).unwrap()
            };
            let mut pre = nautilus_tensor::ops::matmul(&cat, w).unwrap();
            nautilus_tensor::ops::add_assign(&mut pre, b).unwrap();
            h = nautilus_tensor::ops::tanh_act(&pre);
            assert_eq!(fwd.output(bb.hiddens[t]), &h, "step {t}");
        }
    }

    #[test]
    fn classifier_head_trains_through_frozen_unroll() {
        use nautilus_dnn::exec::backward;
        use nautilus_tensor::ops::cross_entropy_logits;
        let cfg = RnnEncoderConfig::tiny(4);
        let g = sequence_classifier(&cfg, 2, BuildScale::Real).unwrap();
        let input = g.input_ids()[0];
        let out = g.outputs()[0];
        let mut rng = seeded_rng(11);
        let mut inputs = BatchInputs::new();
        inputs.insert(input, randn([3, 4, 8], 1.0, &mut rng));
        let fwd = forward(&g, &inputs, true).unwrap();
        let (_, grad) = cross_entropy_logits(fwd.output(out), &[0, 1, 0]).unwrap();
        let mut og = std::collections::HashMap::new();
        og.insert(out, grad);
        let grads = backward(&g, &fwd, og).unwrap();
        assert_eq!(grads.params.len(), 1, "only the head is trainable");
    }

    #[test]
    fn shapes_only_build_matches_structure() {
        let cfg = RnnEncoderConfig::tiny(3);
        let real = sequence_classifier(&cfg, 2, BuildScale::Real).unwrap();
        let sim = sequence_classifier(&cfg, 2, BuildScale::ShapesOnly).unwrap();
        assert_eq!(real.len(), sim.len());
        for (a, b) in real.nodes().iter().zip(sim.nodes()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.param_shapes, b.param_shapes);
        }
    }
}
