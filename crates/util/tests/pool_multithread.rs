//! Exercises the pool with real OS worker threads regardless of host core
//! count, by pinning `NAUTILUS_THREADS` before the pool's first use.
//!
//! Everything lives in ONE test function: integration-test binaries are
//! separate processes, but #[test] fns within a binary run concurrently,
//! and the env var must be set before anything touches the pool.

use nautilus_util::pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn pool_with_four_workers() {
    std::env::set_var("NAUTILUS_THREADS", "4");
    assert_eq!(pool::num_threads(), 4);

    // scope_chunks: disjoint writes land correctly with real workers.
    let mut out = vec![0u64; 10_000];
    pool::scope_chunks(&mut out, 97, |ci, chunk| {
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = (ci * 97 + j) as u64 * 3;
        }
    });
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));

    // join_all: results come back in input order under true concurrency.
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
        .map(|i| {
            Box::new(move || {
                let mut acc = 0usize;
                for k in 0..(64 - i) * 500 {
                    acc = std::hint::black_box(acc.wrapping_add(k));
                }
                std::hint::black_box(acc);
                i * i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    assert_eq!(pool::join_all(tasks), (0..64).map(|i| i * i).collect::<Vec<_>>());

    // Nested scopes: jobs that themselves fan out must not deadlock.
    let total = AtomicU64::new(0);
    let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
        .map(|_| {
            Box::new(|| {
                let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> =
                    (0..16u64).map(|j| Box::new(move || j) as Box<_>).collect();
                let s: u64 = pool::join_all(inner).into_iter().sum();
                total.fetch_add(s, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_scope(outer);
    assert_eq!(total.load(Ordering::Relaxed), 16 * 120);

    // A worker-side panic resurfaces on the submitting thread, and the
    // pool keeps working afterwards.
    let r = catch_unwind(AssertUnwindSafe(|| {
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool::run_scope(tasks);
    }));
    assert!(r.is_err());
    let after: Vec<Box<dyn FnOnce() -> u32 + Send>> =
        (0..8u32).map(|i| Box::new(move || i + 1) as Box<_>).collect();
    assert_eq!(pool::join_all(after).into_iter().sum::<u32>(), 36);

    // The limit clamp keeps results identical while shrinking splits.
    let reference = {
        let mut v = vec![0.0f32; 4096];
        pool::scope_chunks(&mut v, 128, |ci, c| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = ((ci * 128 + j) as f32).sin();
            }
        });
        v
    };
    for limit in [1usize, 2, 8] {
        let got = pool::with_parallelism_limit(limit, || {
            let mut v = vec![0.0f32; 4096];
            pool::scope_chunks(&mut v, 128, |ci, c| {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = ((ci * 128 + j) as f32).sin();
                }
            });
            v
        });
        assert_eq!(got, reference, "limit {limit} diverged");
    }
}
