//! Minimal HTTP/1.1 over `std::net`: an incremental request parser, a
//! response builder, a tiny blocking client, and a generic threaded
//! server loop.
//!
//! Scope is deliberately narrow — exactly what the loopback inference
//! endpoint and the distributed execution plane need. One request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked encoding), byte-exact CRLF framing. The parser is
//! incremental: feed it the bytes read so far and it answers *complete /
//! need more / malformed*, so handler threads can read in a loop without
//! buffering policy leaking into the protocol code. All limits (header
//! size, body size) are enforced while bytes arrive, never after.
//!
//! This module began life inside `crates/serve` and was factored out so
//! `nautilus-dist` workers reuse the same hardened parser and connection
//! handling instead of forking them; `crates/serve/src/http.rs` re-exports
//! everything here, so serving behavior is unchanged.

use crate::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Parser limits, enforced during (not after) reading.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for the body (`413` beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 8 * 1024, max_body_bytes: 1 << 20 }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (no scheme/authority).
    pub path: String,
    /// Header name/value pairs, in order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps directly to a status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or header framing → `400`.
    Malformed,
    /// Head grew beyond [`Limits::max_head_bytes`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge,
}

impl ParseError {
    /// The status code this error answers with.
    pub fn status(self) -> u16 {
        match self {
            ParseError::Malformed => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }
}

/// Outcome of parsing the bytes received so far.
#[derive(Debug)]
pub enum ParseOutcome {
    /// A full request; `usize` is the bytes consumed.
    Complete(Request, usize),
    /// Valid prefix; read more bytes and try again.
    Incomplete,
    /// Irrecoverably malformed or over a limit.
    Error(ParseError),
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses one request from `buf`. Incremental and restartable: call again
/// with the same buffer plus newly read bytes after `Incomplete`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> ParseOutcome {
    parse_request_resumable(buf, limits, &mut 0)
}

/// [`parse_request`] with a persistent head-scan offset. `scanned` must
/// start at 0 for a fresh buffer and be carried unchanged across
/// `Incomplete` retries on the same (growing) buffer: bytes already known
/// to hold no `\r\n\r\n` are never rescanned, so a read loop costs O(bytes)
/// total against a client that trickles the head byte by byte, instead of
/// O(bytes²). The head-size limit is enforced as soon as an unterminated
/// head outgrows it.
pub fn parse_request_resumable(
    buf: &[u8],
    limits: &Limits,
    scanned: &mut usize,
) -> ParseOutcome {
    // Resume the terminator scan 3 bytes early: a `\r\n\r\n` may straddle
    // the previously scanned prefix and the new bytes.
    let start = scanned.saturating_sub(3).min(buf.len());
    let head_end = buf[start..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| start + p);
    let Some(head_len) = head_end else {
        *scanned = buf.len();
        return if buf.len() > limits.max_head_bytes {
            ParseOutcome::Error(ParseError::HeadTooLarge)
        } else {
            ParseOutcome::Incomplete
        };
    };
    // Park the scan position at the terminator (never moving backwards —
    // an earlier partial scan may sit up to 3 bytes past it, which the
    // resume back-off covers) so body-completeness retries re-find it in
    // constant time.
    *scanned = (*scanned).max(head_len);
    if head_len > limits.max_head_bytes {
        return ParseOutcome::Error(ParseError::HeadTooLarge);
    }
    let head = &buf[..head_len];
    let Ok(head) = std::str::from_utf8(head) else {
        return ParseOutcome::Error(ParseError::Malformed);
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Error(ParseError::Malformed);
    };
    if method.is_empty()
        || !method.bytes().all(is_token_byte)
        || path.is_empty()
        || !path.starts_with('/')
        || !matches!(version, "HTTP/1.1" | "HTTP/1.0")
    {
        return ParseOutcome::Error(ParseError::Malformed);
    }

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error(ParseError::Malformed);
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return ParseOutcome::Error(ParseError::Malformed);
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            // RFC 9112 §6.3: conflicting or repeated Content-Length must
            // be rejected, not resolved — a second header field here, or a
            // comma-separated list (which fails the integer parse below),
            // is malformed rather than last-one-wins.
            if content_length.is_some() {
                return ParseOutcome::Error(ParseError::Malformed);
            }
            let Ok(n) = value.parse::<usize>() else {
                return ParseOutcome::Error(ParseError::Malformed);
            };
            if n > limits.max_body_bytes {
                return ParseOutcome::Error(ParseError::BodyTooLarge);
            }
            content_length = Some(n);
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);

    let body_start = head_len + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    ParseOutcome::Complete(
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf[body_start..total].to_vec(),
        },
        total,
    )
}

/// Reason a request could not be read off a socket.
#[derive(Debug)]
pub enum ReadError {
    /// Parse failure (status from [`ParseError::status`]).
    Parse(ParseError),
    /// The client went quiet past the read timeout → `408`.
    Timeout,
    /// Connection closed before a full request (no response possible).
    Disconnected,
}

/// Reads one full request from `stream`, honoring its read timeout.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Carried across retries so slow (trickling) clients cost O(bytes)
    // of head scanning per connection, not O(bytes²).
    let mut scanned = 0usize;
    loop {
        match parse_request_resumable(&buf, limits, &mut scanned) {
            ParseOutcome::Complete(req, _) => return Ok(req),
            ParseOutcome::Error(e) => return Err(ReadError::Parse(e)),
            ParseOutcome::Incomplete => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ReadError::Disconnected)
                } else {
                    // Truncated mid-request: answer 400 rather than hang.
                    Err(ReadError::Parse(ParseError::Malformed))
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ReadError::Timeout);
            }
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        426 => "Upgrade Required",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Length/Type and Connection are automatic).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response { status, headers: Vec::new(), body: value.to_string().into_bytes() }
    }

    /// A response with an explicit content type (suppresses the
    /// `application/json` default).
    pub fn text(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type", content_type.to_string())],
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj([("error", Json::Str(message.into()))]))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response (always `Connection: close`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status)).as_bytes(),
        );
        if !self.headers.iter().any(|(k, _)| k.eq_ignore_ascii_case("Content-Type")) {
            out.extend_from_slice(b"Content-Type: application/json\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to `stream` (best-effort flush).
    pub fn send(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Writes `resp`, half-closes the write side, and drains a bounded amount
/// of late client bytes so the client sees the full response before RST
/// can clobber it (the classic close-with-unread-data hazard).
pub fn finish_connection(mut stream: TcpStream, resp: &Response) {
    let _ = resp.send(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Blocking one-shot HTTP client for loopback tests, demos, and the
/// distributed coordinator: opens a connection, sends one request, reads
/// until the server closes, and returns `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
}

/// Splits a raw HTTP response into `(status, body)`.
pub fn parse_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    let head_len = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_len]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    Some((status, raw[head_len + 4..].to_vec()))
}

/// Handle for a running [`serve`] loop: address + graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept threads to stop and joins them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Generic threaded accept loop over the parser above: `threads` workers
/// each accept connections, read one request (honoring `read_timeout` and
/// `limits`), call `handler`, and finish the connection with
/// `Connection: close` semantics. Parse failures answer with the mapped
/// status code without invoking the handler. Used by `nautilus-dist`
/// workers; `crates/serve` keeps its own queue/backpressure server and
/// shares only the protocol layer.
pub fn serve(
    listener: TcpListener,
    limits: Limits,
    read_timeout: Duration,
    threads: usize,
    handler: Arc<dyn Fn(&Request) -> Response + Send + Sync>,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let listener = Arc::new(listener);
    let mut joins = Vec::with_capacity(threads.max(1));
    for _ in 0..threads.max(1) {
        let listener = Arc::clone(&listener);
        let stop = Arc::clone(&stop);
        let handler = Arc::clone(&handler);
        joins.push(std::thread::spawn(move || loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(_) => continue,
            };
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(read_timeout));
            let _ = stream.set_write_timeout(Some(read_timeout));
            let mut stream = stream;
            let resp = match read_request(&mut stream, &limits) {
                Ok(req) => handler(&req),
                Err(ReadError::Parse(e)) => Response::error(e.status(), "bad request"),
                Err(ReadError::Timeout) => Response::error(408, "timeout"),
                Err(ReadError::Disconnected) => continue,
            };
            finish_connection(stream, &resp);
        }));
    }
    Ok(ServerHandle { addr, stop, threads: joins })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> ParseOutcome {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match parse(raw) {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/predict");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"abcd");
                assert_eq!(used, raw.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw), ParseOutcome::Incomplete));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), ParseOutcome::Error(ParseError::Malformed)),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        let no_colon = b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n";
        assert!(matches!(parse(no_colon), ParseOutcome::Error(ParseError::Malformed)));
        let bad_len = b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(parse(bad_len), ParseOutcome::Error(ParseError::Malformed)));
    }

    /// RFC 9112 §6.3: repeated or conflicting Content-Length is rejected
    /// outright — never resolved last-one-wins.
    #[test]
    fn rejects_duplicate_or_listed_content_length() {
        for raw in [
            // Two agreeing fields are still malformed.
            &b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd"[..],
            // Two conflicting fields.
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd",
            // A comma-separated list inside one field.
            b"POST / HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\nabcd",
        ] {
            assert!(
                matches!(parse(raw), ParseOutcome::Error(ParseError::Malformed)),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    /// Feeding the parser byte by byte with a persistent scan offset must
    /// reach the same result as one-shot parsing, without rescanning the
    /// prefix (the offset only moves forward).
    #[test]
    fn resumable_parse_handles_trickled_delivery() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let limits = Limits::default();
        let mut scanned = 0usize;
        let mut prev_scanned = 0usize;
        for n in 1..raw.len() {
            match parse_request_resumable(&raw[..n], &limits, &mut scanned) {
                ParseOutcome::Incomplete => {}
                other => panic!("unexpected outcome at {n} bytes: {other:?}"),
            }
            assert!(scanned >= prev_scanned, "scan offset moved backwards at {n}");
            prev_scanned = scanned;
        }
        match parse_request_resumable(raw, &limits, &mut scanned) {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.body, b"abcd");
                assert_eq!(used, raw.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
        // The head terminator straddling a read boundary is found even
        // though the scan resumed mid-sequence.
        let head_only = b"GET / HTTP/1.1\r\n\r\n";
        let mut scanned = 0usize;
        let split = head_only.len() - 2; // "\r\n\r" delivered, final "\n" pending
        assert!(matches!(
            parse_request_resumable(&head_only[..split], &Limits::default(), &mut scanned),
            ParseOutcome::Incomplete
        ));
        assert!(matches!(
            parse_request_resumable(head_only, &Limits::default(), &mut scanned),
            ParseOutcome::Complete(..)
        ));
    }

    #[test]
    fn enforces_limits_while_reading() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 8 };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            parse_request(long_head.as_bytes(), &limits),
            ParseOutcome::Error(ParseError::HeadTooLarge)
        ));
        // Oversized body is rejected from the *declared* length — before
        // the body bytes ever arrive.
        let big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(
            parse_request(big, &limits),
            ParseOutcome::Error(ParseError::BodyTooLarge)
        ));
        // A growing head with no terminator trips the limit too.
        let partial = vec![b'A'; 65];
        assert!(matches!(
            parse_request(&partial, &limits),
            ParseOutcome::Error(ParseError::HeadTooLarge)
        ));
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let resp = Response::json(200, &Json::obj([("ok", Json::Bool(true))]))
            .with_header("Retry-After", "1");
        let bytes = resp.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let (status, body) = parse_response(&bytes).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }

    /// The generic threaded server answers requests through the handler
    /// and maps parse failures to status codes without invoking it.
    #[test]
    fn generic_server_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(
            listener,
            Limits::default(),
            Duration::from_secs(2),
            2,
            Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/healthz") => Response::text(200, "text/plain", "ok"),
                ("POST", "/echo") => {
                    Response::text(200, "application/octet-stream", req.body.clone())
                }
                _ => Response::error(404, "no such route"),
            }),
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let (status, body) =
            request(&addr, "GET", "/healthz", None, Duration::from_secs(2)).unwrap();
        assert_eq!((status, body.as_slice()), (200, &b"ok"[..]));
        let payload = vec![7u8; 512];
        let (status, body) =
            request(&addr, "POST", "/echo", Some(&payload), Duration::from_secs(2)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload);
        let (status, _) =
            request(&addr, "GET", "/missing", None, Duration::from_secs(2)).unwrap();
        assert_eq!(status, 404);
        handle.stop();
    }
}
