//! Minimal JSON: a value type, serializer, recursive-descent parser, and
//! derive-free [`ToJson`]/[`FromJson`] conversion traits.
//!
//! An in-tree replacement for the slice of `serde`/`serde_json` this
//! workspace uses: checkpoint and store manifests, session state headers,
//! metrics output, and benchmark result files. Object key order is
//! preserved (insertion order), so serialized output is deterministic.
//!
//! Conventions match what `serde_json` produced for the same types, so the
//! on-disk artifacts stay human-readable and diffable:
//! - structs → objects with field-name keys (see [`json_struct!`](crate::json_struct)),
//! - unit enum variants → strings, data variants → `{"Variant": {...}}`
//!   (see [`json_enum!`](crate::json_enum)),
//! - `Option` → value or `null`, missing object fields read as `null`,
//! - tuples → fixed-length arrays.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer (or huge) number, stored as `f64`.
    Num(f64),
    /// An integer, stored exactly. `f64` alone silently rounds integers
    /// above 2^53, which corrupts 64-bit hashes/signatures.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` (must be an integer).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            Json::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, ind, d| {
                    items[i].write(out, ind, d)
                })
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, ind, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind, d)
                })
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            // `1` and `1.0` are the same JSON number; compare numerically so
            // parse/print round trips don't depend on the storage variant.
            (Json::Num(a), Json::Int(b)) | (Json::Int(b), Json::Num(a)) => *a == *b as f64,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serialize as null (lenient, like
        // `JSON.stringify`).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Errors from parsing or conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Documents from untrusted
/// peers (distributed workers/coordinators, serving clients) must produce
/// a parse error rather than exhaust the call stack: `value`/`array`/
/// `object` are mutually recursive, so unbounded `[[[…]]]` input would
/// otherwise overflow. 128 is far deeper than any wire DTO in the tree
/// (checkpoint headers nest < 10) while staying thousands of frames below
/// stack limits.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    /// Called on entering an array/object; errors past [`MAX_PARSE_DEPTH`].
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = s.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        s.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into [`Json`].
pub trait ToJson {
    /// This value as a JSON tree.
    fn to_json(&self) -> Json;
}

/// Conversion from [`Json`].
pub trait FromJson: Sized {
    /// Reconstructs the value from a JSON tree.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] value compactly (the `serde_json::to_vec`
/// replacement).
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    value.to_json().to_string().into_bytes()
}

/// Serializes any [`ToJson`] value with pretty indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses bytes and converts (the `serde_json::from_slice` replacement).
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    let s = std::str::from_utf8(bytes).map_err(|e| JsonError(format!("invalid utf-8: {e}")))?;
    T::from_json(&Json::parse(s)?)
}

/// Parses a string and converts.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

/// Reads a struct field by name; missing keys read as `null` (so `Option`
/// fields default to `None`, matching serde's behavior).
pub fn from_field<T: FromJson>(j: &Json, name: &str) -> Result<T, JsonError> {
    if j.as_obj().is_none() {
        return Err(JsonError(format!("expected object with field '{name}'")));
    }
    let field = j.get(name).unwrap_or(&Json::Null);
    T::from_json(field).map_err(|e| JsonError(format!("field '{name}': {}", e.0)))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError(format!("expected bool, got {j}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str().map(str::to_string).ok_or_else(|| JsonError(format!("expected string, got {j}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_u64().ok_or_else(|| JsonError(format!(
                    concat!("expected ", stringify!($t), ", got {}"), j)))?;
                <$t>::try_from(v).map_err(|_| JsonError(format!(
                    concat!("value {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_i64().ok_or_else(|| JsonError(format!(
                    concat!("expected ", stringify!($t), ", got {}"), j)))?;
                <$t>::try_from(v).map_err(|_| JsonError(format!(
                    concat!("value {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        match i128::try_from(*self) {
            Ok(i) => Json::Int(i),
            // Above i128::MAX the textual integer would not re-parse as
            // `Int`; degrade to the nearest f64 like JavaScript would.
            Err(_) => Json::Num(*self as f64),
        }
    }
}

impl FromJson for u128 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Int(i) if *i >= 0 => Ok(*i as u128),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u128),
            _ => Err(JsonError(format!("expected u128, got {j}"))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64().map(|v| v as f32).ok_or_else(|| JsonError(format!("expected number, got {j}")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64().ok_or_else(|| JsonError(format!("expected number, got {j}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if j.is_null() {
            Ok(None)
        } else {
            T::from_json(j).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()
            .ok_or_else(|| JsonError(format!("expected array, got {j}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_obj()
            .ok_or_else(|| JsonError(format!("expected object, got {j}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(keys.into_iter().map(|k| (k.clone(), self[k].to_json())).collect())
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_obj()
            .ok_or_else(|| JsonError(format!("expected object, got {j}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let a = j.as_arr().ok_or_else(|| JsonError(format!("expected array, got {j}")))?;
                if a.len() != $len {
                    return Err(JsonError(format!("expected {}-tuple, got {} items", $len, a.len())));
                }
                Ok(($($name::from_json(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// ```ignore
/// struct P { x: f64, label: String }
/// json_struct!(P { x, label });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field)), )*
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $( $field: $crate::json::from_field(j, stringify!($field))?, )*
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum whose variants are unit
/// or struct-like, using serde's externally-tagged convention: unit
/// variants serialize as `"Name"`, data variants as `{"Name": {fields}}`.
///
/// ```ignore
/// enum E { A, B { x: u32 } }
/// json_enum!(E { A, B { x } });
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $( $variant:ident $( { $($f:ident),* $(,)? } )? ),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(
                        $crate::json_enum!(@pat $ty, $variant $( { $($f),* } )?) =>
                            $crate::json_enum!(@ser $variant $( { $($f),* } )?),
                    )*
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match j {
                    $crate::json::Json::Str(s) => {
                        let tag = s.as_str();
                        $( $crate::json_enum!(@unit_try tag, $ty, $variant $( { $($f),* } )?); )*
                        Err($crate::json::JsonError(format!(
                            concat!("unknown ", stringify!($ty), " variant '{}'"), tag)))
                    }
                    $crate::json::Json::Obj(pairs) if pairs.len() == 1 => {
                        let (tag, inner) = &pairs[0];
                        let tag = tag.as_str();
                        $( $crate::json_enum!(@data_try tag, inner, $ty, $variant $( { $($f),* } )?); )*
                        Err($crate::json::JsonError(format!(
                            concat!("unknown ", stringify!($ty), " variant '{}'"), tag)))
                    }
                    _ => Err($crate::json::JsonError(format!(
                        concat!("expected ", stringify!($ty), " variant, got {}"), j))),
                }
            }
        }
    };
    (@pat $ty:ident, $variant:ident) => { $ty::$variant };
    (@pat $ty:ident, $variant:ident { $($f:ident),* }) => { $ty::$variant { $($f),* } };
    (@ser $variant:ident) => {
        $crate::json::Json::Str(stringify!($variant).to_string())
    };
    (@ser $variant:ident { $($f:ident),* }) => {
        $crate::json::Json::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::json::Json::Obj(vec![
                $( (stringify!($f).to_string(), $crate::json::ToJson::to_json($f)), )*
            ]),
        )])
    };
    (@unit_try $tag:ident, $ty:ident, $variant:ident) => {
        if $tag == stringify!($variant) {
            return Ok($ty::$variant);
        }
    };
    (@unit_try $tag:ident, $ty:ident, $variant:ident { $($f:ident),* }) => {};
    (@data_try $tag:ident, $inner:ident, $ty:ident, $variant:ident) => {};
    (@data_try $tag:ident, $inner:ident, $ty:ident, $variant:ident { $($f:ident),* }) => {
        if $tag == stringify!($variant) {
            return Ok($ty::$variant {
                $( $f: $crate::json::from_field($inner, stringify!($f))?, )*
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(Json::parse(" 3 ").unwrap().to_string(), "3");
    }

    #[test]
    fn round_trip_nested_value() {
        let v = Json::obj([
            ("name", Json::Str("nautilus \"repro\"\n".into())),
            ("pi", Json::Num(3.25)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            (
                "nested",
                Json::obj([("k", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.0)]))]),
            ),
        ]);
        let compact = v.to_string();
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = Json::parse(r#""a\u00e9b\ud83d\ude00c""#).unwrap();
        assert_eq!(v, Json::Str("aéb😀c".into()));
        // Raw multibyte chars pass through and re-escape losslessly.
        let s = Json::Str("héllo 🦀 \t".into());
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"\\x\"", "[] []", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        // Above 2^53 an f64 cannot hold every integer; hashes/signatures
        // must survive serialization bit-for-bit.
        for x in [u64::MAX, u64::MAX - 1, (1u64 << 53) + 1, 4_115_586_522_441_378_690] {
            let bytes = to_vec(&x);
            let back: u64 = from_slice(&bytes).unwrap();
            assert_eq!(back, x);
        }
        for x in [i64::MIN, i64::MIN + 1, -(1i64 << 53) - 1] {
            let bytes = to_vec(&x);
            let back: i64 = from_slice(&bytes).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn float_round_trip_precision() {
        for x in [0.1f64, 1e-9, 123456.789, f64::MAX / 1e10, -0.0] {
            let j = Json::parse(&Json::Num(x).to_string()).unwrap();
            assert_eq!(j.as_f64().unwrap(), x);
        }
    }

    #[test]
    fn struct_and_enum_macros() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: f64,
            name: String,
            tags: Vec<u32>,
            opt: Option<bool>,
        }
        json_struct!(P { x, name, tags, opt });

        #[derive(Debug, PartialEq)]
        enum E {
            Plain,
            Data { a: usize, b: String },
        }
        json_enum!(E { Plain, Data { a, b } });

        let p = P { x: 1.5, name: "n".into(), tags: vec![1, 2], opt: None };
        let back: P = from_str(&p.to_json().to_string()).unwrap();
        assert_eq!(back, p);

        let e = E::Data { a: 3, b: "x".into() };
        assert_eq!(e.to_json().to_string(), r#"{"Data":{"a":3,"b":"x"}}"#);
        let back: E = from_str(&e.to_json().to_string()).unwrap();
        assert_eq!(back, e);
        assert_eq!(from_str::<E>(r#""Plain""#).unwrap(), E::Plain);
        assert!(from_str::<E>(r#""Nope""#).is_err());
    }

    #[test]
    fn missing_option_field_reads_as_none() {
        #[derive(Debug, PartialEq)]
        struct S {
            req: u32,
            opt: Option<u32>,
        }
        json_struct!(S { req, opt });
        let s: S = from_str(r#"{"req": 7}"#).unwrap();
        assert_eq!(s, S { req: 7, opt: None });
        assert!(from_str::<S>(r#"{"opt": 1}"#).is_err());
    }

    #[test]
    fn maps_and_tuples() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![(1usize, true), (2, false)]);
        let j = m.to_json();
        let back: BTreeMap<String, Vec<(usize, bool)>> = FromJson::from_json(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_range_checks() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<i64>("1.5").is_err());
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    /// Deeply nested input from an untrusted peer must return a parse
    /// error, not blow the stack. Depth at the limit still parses; one
    /// past it fails cleanly, for arrays, objects, and mixtures.
    #[test]
    fn recursion_depth_is_limited() {
        let nest = |open: &str, close: &str, n: usize| {
            format!("{}{}{}", open.repeat(n), "null", close.repeat(n))
        };
        let at_limit = nest("[", "]", MAX_PARSE_DEPTH);
        assert!(Json::parse(&at_limit).is_ok());
        let over = nest("[", "]", MAX_PARSE_DEPTH + 1);
        let err = Json::parse(&over).unwrap_err();
        assert!(err.0.contains("nesting"), "unexpected error: {err}");
        // Far past the limit (would overflow the stack without the guard).
        let way_over = nest("[", "]", 200_000);
        assert!(Json::parse(&way_over).is_err());
        let obj_over =
            format!("{}null{}", r#"{"k":"#.repeat(MAX_PARSE_DEPTH + 1), "}".repeat(MAX_PARSE_DEPTH + 1));
        assert!(Json::parse(&obj_over).is_err());
        let mixed = format!("{}1{}", r#"[{"k":"#.repeat(80), "}]".repeat(80));
        assert!(Json::parse(&mixed).is_err());
        // Siblings at the same depth don't accumulate: a wide shallow
        // document parses fine.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }
}
