//! Zero-dependency utility substrates for the Nautilus reproduction.
//!
//! The workspace builds fully offline: every capability that would
//! normally come from a registry crate is provided here, in-tree, with
//! exactly the surface the rest of the codebase uses.
//!
//! - [`rng`] — seeded xoshiro256++ PRNG with a `rand`-style trait surface
//!   (`Rng::gen_range`, `SeedableRng::seed_from_u64`, `SliceRandom`).
//! - [`json`] — JSON value type, serializer, parser, and derive-free
//!   [`json::ToJson`]/[`json::FromJson`] traits plus the
//!   [`json_struct!`]/[`json_enum!`] impl macros.
//! - [`prop`] — seeded, shrinking property-test harness
//!   ([`prop::prop_check`]) with [`prop_assert!`]/[`prop_assert_eq!`].
//! - [`bench`] — warmup + median-of-N timing harness with a
//!   criterion-shaped API ([`criterion_group!`]/[`criterion_main!`]).
//! - [`bytesio`] — checked little-endian buffer reads/writes over
//!   `Vec<u8>` / `&[u8]`.
//! - [`pool`] — persistent work-stealing thread pool with deterministic
//!   result ordering ([`pool::scope_chunks`]/[`pool::join_all`]); the
//!   worker count follows `available_parallelism`, overridable via
//!   `NAUTILUS_THREADS`.
//! - [`scratch`] — thread-local arena of reusable `f32` buffers for
//!   kernel temporaries (GEMM packing panels, im2col columns, output
//!   buffers); zero-filled on take, bounded retention, `scratch.hits`/
//!   `scratch.misses` telemetry.
//! - [`telemetry`] — tracing + metrics substrate: RAII spans with
//!   thread-local parent stacks and per-thread ring buffers, named atomic
//!   counters/gauges/histograms with bounded-cardinality labeled
//!   families, Chrome trace-event JSON export, per-span summaries, and a
//!   Prometheus text exposition encoder; gated by `NAUTILUS_TRACE` (or
//!   metrics-only via `telemetry::enable_metrics`) with a single relaxed
//!   atomic load on the disabled path.
//! - [`eventlog`] — structured JSON-line event log for discrete state
//!   transitions (publishes, evictions, stalls, shedding, SLO breaches):
//!   leveled, per-event rate-limited, gated by `NAUTILUS_LOG`.
//! - [`http`] — minimal hardened HTTP/1.1: incremental request parser
//!   with in-flight limits, response builder, blocking one-shot client,
//!   and a generic threaded server loop; shared by `crates/serve` and the
//!   `crates/dist` coordinator/workers.
//!
//! Policy: no crate in this workspace may depend on anything outside the
//! workspace (`scripts/verify.sh` enforces this). See DESIGN.md.

#![warn(missing_docs)]

pub mod bench;
pub mod bytesio;
pub mod eventlog;
pub mod http;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod scratch;
pub mod telemetry;
