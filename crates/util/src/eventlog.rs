//! Structured JSON-line event log (std-only, hermetic).
//!
//! The [`telemetry`](crate::telemetry) module answers *"how much / how
//! fast"*; this module answers *"what happened"*: discrete state
//! transitions that matter in production — hot-swap publishes, LRU
//! evictions and fault-ins, prefetch stalls, write-behind errors,
//! overload shedding, calibration results, SLO breaches. Each event is
//! one JSON object per line:
//!
//! ```text
//! {"ts_ms":1754730000123,"level":"warn","event":"serve.shed","queue_depth":64}
//! ```
//!
//! Properties:
//!
//! - **Off by default, one relaxed load when off.** [`emit`] bails on a
//!   single atomic level check before touching any field, clock, or
//!   lock, so instrumented sites cost nothing in unobserved runs.
//! - **Leveled.** [`Level::Debug`] through [`Level::Error`]; the sink's
//!   threshold filters below it.
//! - **Rate-limited per event name.** At most [`rate_limit`] lines per
//!   event name per second; excess lines are dropped and summarized by a
//!   `log.suppressed` record when the window rolls, so a shed storm or a
//!   flapping SLO cannot turn the log into the bottleneck.
//! - **Gated by `NAUTILUS_LOG`** (a path, or `stderr`/`-` for standard
//!   error; level via `NAUTILUS_LOG_LEVEL`) through [`init_from_env`],
//!   or programmatically via [`init_file`]/[`init_stderr`] — the
//!   builder-facing `SystemConfig` observability block routes here.

use crate::json::Json;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic chatter (never emitted unless explicitly requested).
    Debug = 0,
    /// Normal state transitions (publish, fault-in, calibration).
    Info = 1,
    /// Degradations the system absorbs (shed, stall, SLO breach).
    Warn = 2,
    /// Failures surfaced to callers (write-behind errors).
    Error = 3,
}

impl Level {
    /// Lower-case name as written into the `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed field value; borrows strings so disabled sites never allocate.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// String field.
    Str(&'a str),
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Float field.
    F64(f64),
    /// Boolean field.
    Bool(bool),
}

impl Value<'_> {
    fn to_json(self) -> Json {
        match self {
            Value::Str(s) => Json::Str(s.to_string()),
            Value::U64(v) => Json::Int(v as i128),
            Value::I64(v) => Json::Int(v as i128),
            Value::F64(v) => Json::Num(v),
            Value::Bool(v) => Json::Bool(v),
        }
    }
}

/// Threshold sentinel meaning "no sink configured".
const OFF: u8 = u8::MAX;

/// The emit gate: minimum level that reaches the sink, `OFF` when the
/// log is disabled. One relaxed load of this *is* the disabled path.
static THRESHOLD: AtomicU8 = AtomicU8::new(OFF);

/// Default per-event-name rate limit (lines per second).
pub const DEFAULT_RATE_LIMIT: u32 = 50;

struct RateEntry {
    event: String,
    window_start_ms: u64,
    emitted: u32,
    suppressed: u64,
}

struct Sink {
    out: Box<dyn Write + Send>,
    rate_limit: u32,
    rates: Vec<RateEntry>,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// True when an event at `level` would reach the sink (modulo rate
/// limiting). One relaxed atomic load.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 >= THRESHOLD.load(Ordering::Relaxed)
}

/// Routes events at `level` and above to standard error.
pub fn init_stderr(level: Level) {
    init_writer(Box::new(std::io::stderr()), level);
}

/// Routes events at `level` and above to `path` (append mode, created if
/// missing). Returns the I/O error if the file cannot be opened.
pub fn init_file(path: &Path, level: Level) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    init_writer(Box::new(f), level);
    Ok(())
}

/// Installs an arbitrary sink (replacing any previous one) and opens the
/// gate at `level`.
pub fn init_writer(out: Box<dyn Write + Send>, level: Level) {
    *sink().lock().unwrap() = Some(Sink {
        out,
        rate_limit: DEFAULT_RATE_LIMIT,
        rates: Vec::new(),
    });
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Overrides the per-event-name rate limit (lines/second) of the current
/// sink; no-op when no sink is installed.
pub fn set_rate_limit(per_sec: u32) {
    if let Some(s) = sink().lock().unwrap().as_mut() {
        s.rate_limit = per_sec.max(1);
    }
}

/// Closes the gate and drops the sink (flushing it first).
pub fn disable() {
    THRESHOLD.store(OFF, Ordering::Relaxed);
    if let Some(mut s) = sink().lock().unwrap().take() {
        let _ = s.out.flush();
    }
}

/// Reads `NAUTILUS_LOG` (a file path, or `stderr`/`-`) and
/// `NAUTILUS_LOG_LEVEL` (default `info`); installs the sink on first
/// call. Idempotent and cheap to call from every entry point. Returns
/// whether the log is enabled afterwards.
pub fn init_from_env() -> bool {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let Ok(dest) = std::env::var("NAUTILUS_LOG") else { return };
        let dest = dest.trim();
        if dest.is_empty() {
            return;
        }
        let level = std::env::var("NAUTILUS_LOG_LEVEL")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(Level::Info);
        if dest == "stderr" || dest == "-" {
            init_stderr(level);
        } else {
            let _ = init_file(Path::new(dest), level);
        }
    });
    THRESHOLD.load(Ordering::Relaxed) != OFF
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Emits one structured event: a JSON line with `ts_ms`, `level`,
/// `event`, and the given fields. Disabled/filtered levels cost one
/// relaxed load; over-rate events are dropped and later summarized.
pub fn emit(level: Level, event: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let ts = now_ms();
    let mut guard = sink().lock().unwrap();
    let Some(s) = guard.as_mut() else { return };

    // Per-event-name rate accounting on 1s windows.
    let limit = s.rate_limit;
    let idx = match s.rates.iter().position(|r| r.event == event) {
        Some(i) => i,
        None => {
            s.rates.push(RateEntry {
                event: event.to_string(),
                window_start_ms: ts,
                emitted: 0,
                suppressed: 0,
            });
            s.rates.len() - 1
        }
    };
    let (window_rolled, suppressed_last_window) = {
        let r = &mut s.rates[idx];
        if ts.saturating_sub(r.window_start_ms) >= 1_000 {
            let sup = r.suppressed;
            r.window_start_ms = ts;
            r.emitted = 0;
            r.suppressed = 0;
            (sup > 0, sup)
        } else {
            (false, 0)
        }
    };
    if window_rolled {
        let line = Json::obj([
            ("ts_ms", Json::Int(ts as i128)),
            ("level", Json::Str("warn".into())),
            ("event", Json::Str("log.suppressed".into())),
            ("of", Json::Str(event.to_string())),
            ("count", Json::Int(suppressed_last_window as i128)),
        ])
        .to_string();
        let _ = writeln!(s.out, "{line}");
    }
    {
        let r = &mut s.rates[idx];
        if r.emitted >= limit {
            r.suppressed += 1;
            return;
        }
        r.emitted += 1;
    }

    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 3);
    pairs.push(("ts_ms".into(), Json::Int(ts as i128)));
    pairs.push(("level".into(), Json::Str(level.as_str().into())));
    pairs.push(("event".into(), Json::Str(event.to_string())));
    for (k, v) in fields {
        pairs.push(((*k).to_string(), v.to_json()));
    }
    let line = Json::Obj(pairs).to_string();
    let _ = writeln!(s.out, "{line}");
    let _ = s.out.flush();
}

/// [`emit`] at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, Value)]) {
    emit(Level::Info, event, fields);
}

/// [`emit`] at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, Value)]) {
    emit(Level::Warn, event, fields);
}

/// [`emit`] at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, Value)]) {
    emit(Level::Error, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink and gate are process-global, so every test that installs
    // one lives in this single test function.
    #[test]
    fn leveled_rate_limited_json_lines_round_trip() {
        assert!(!enabled(Level::Error), "log must start disabled");
        // Disabled emit is a no-op (and must not panic with no sink).
        emit(Level::Error, "test.ignored", &[("k", Value::U64(1))]);

        let path = std::env::temp_dir()
            .join(format!("nautilus-eventlog-unit-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        init_file(&path, Level::Info).expect("init sink");
        assert!(enabled(Level::Info) && enabled(Level::Error));
        assert!(!enabled(Level::Debug), "below-threshold levels stay closed");

        emit(Level::Debug, "test.filtered", &[]);
        info("serve.publish", &[("tenant", Value::Str("alice")), ("version", Value::U64(3))]);
        warn("serve.shed", &[("queue_depth", Value::U64(64))]);
        error(
            "store.write_behind_error",
            &[("path", Value::Str("/tmp/x \"q\"")), ("fatal", Value::Bool(false))],
        );

        // Rate limiting: the cap applies per event name within a window.
        set_rate_limit(5);
        for _ in 0..20 {
            info("test.flood", &[]);
        }
        info("test.other", &[("f", Value::F64(1.5))]);

        disable();
        assert!(!enabled(Level::Error));

        let data = std::fs::read_to_string(&path).expect("read log");
        let lines: Vec<&str> = data.lines().collect();
        // Every line parses as a JSON object with the envelope fields.
        for l in &lines {
            let j: Json = crate::json::from_str(l).expect("valid json line");
            assert!(j.get("ts_ms").and_then(|v| v.as_u64()).is_some());
            assert!(j.get("level").and_then(|v| v.as_str()).is_some());
            assert!(j.get("event").and_then(|v| v.as_str()).is_some());
        }
        let events: Vec<String> = lines
            .iter()
            .map(|l| {
                let j: Json = crate::json::from_str(l).unwrap();
                j.get("event").and_then(|v| v.as_str()).unwrap().to_string()
            })
            .collect();
        assert!(!events.iter().any(|e| e == "test.filtered"), "debug filtered out");
        assert!(events.iter().any(|e| e == "serve.publish"));
        let publish: Json = crate::json::from_str(
            lines[events.iter().position(|e| e == "serve.publish").unwrap()],
        )
        .unwrap();
        assert_eq!(publish.get("tenant").and_then(|v| v.as_str()), Some("alice"));
        assert_eq!(publish.get("version").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            events.iter().filter(|e| *e == "test.flood").count(),
            5,
            "flood capped at the rate limit"
        );
        assert!(events.iter().any(|e| e == "test.other"), "other events unaffected");
        let _ = std::fs::remove_file(&path);
    }
}
