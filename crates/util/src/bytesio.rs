//! Little-endian byte buffer helpers — the slice of the `bytes` crate the
//! serialization paths use, rebuilt on `Vec<u8>` / `&[u8]`.
//!
//! Writing appends to a `Vec<u8>` through [`PutBytes`]; reading consumes
//! from the front of a `&mut &[u8]` cursor through [`TakeBytes`], so a
//! decoder can thread one mutable slice reference through nested calls
//! exactly like `bytes::Buf`:
//!
//! ```ignore
//! let mut buf = Vec::new();
//! buf.put_u32_le(7);
//! let mut cur: &[u8] = &buf;
//! assert_eq!(cur.take_u32_le(), Some(7));
//! assert!(cur.is_empty());
//! ```

/// Appends fixed-width little-endian values to a growable buffer.
pub trait PutBytes {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64);
    /// Appends an `f32`, little-endian.
    fn put_f32_le(&mut self, v: f32);
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl PutBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consumes fixed-width little-endian values from the front of a slice
/// cursor. All reads are checked: `None` means the buffer was too short,
/// and the cursor is left unchanged on failure.
pub trait TakeBytes<'a> {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Takes one byte.
    fn take_u8(&mut self) -> Option<u8>;
    /// Takes a `u32`, little-endian.
    fn take_u32_le(&mut self) -> Option<u32>;
    /// Takes a `u64`, little-endian.
    fn take_u64_le(&mut self) -> Option<u64>;
    /// Takes an `f32`, little-endian.
    fn take_f32_le(&mut self) -> Option<f32>;
    /// Takes `n` raw bytes.
    fn take_slice(&mut self, n: usize) -> Option<&'a [u8]>;
}

impl<'a> TakeBytes<'a> for &'a [u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_u8(&mut self) -> Option<u8> {
        let (&first, rest) = self.split_first()?;
        *self = rest;
        Some(first)
    }

    fn take_u32_le(&mut self) -> Option<u32> {
        let bytes = self.take_slice(4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_u64_le(&mut self) -> Option<u64> {
        let bytes = self.take_slice(8)?;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_f32_le(&mut self) -> Option<f32> {
        let bytes = self.take_slice(4)?;
        Some(f32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_slice(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.len() < n {
            return None;
        }
        let (head, rest) = self.split_at(n);
        *self = rest;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-3.5);
        buf.put_slice(b"tail");
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.take_u8(), Some(0xAB));
        assert_eq!(cur.take_u32_le(), Some(0xDEAD_BEEF));
        assert_eq!(cur.take_u64_le(), Some(u64::MAX - 1));
        assert_eq!(cur.take_f32_le(), Some(-3.5));
        assert_eq!(cur.take_slice(4), Some(&b"tail"[..]));
        assert_eq!(cur.remaining(), 0);
        assert_eq!(cur.take_u8(), None);
    }

    #[test]
    fn short_reads_leave_cursor_unchanged() {
        let data = [1u8, 2, 3];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.take_u32_le(), None);
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.take_slice(5), None);
        assert_eq!(cur.take_slice(3), Some(&[1u8, 2, 3][..]));
    }
}
