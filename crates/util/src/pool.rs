//! Persistent work-stealing thread pool shared by every hot path in the
//! workspace — an in-tree replacement for the slice of `rayon` this
//! repository would otherwise use.
//!
//! One global pool is lazily created on first use. Worker count comes from
//! `std::thread::available_parallelism`, overridable with the
//! `NAUTILUS_THREADS` environment variable (highest precedence) or
//! [`request_threads`] (effective only before the pool starts). Each worker
//! owns a local LIFO deque; submitted scopes push to a shared FIFO injector,
//! jobs spawned *from* a worker go to that worker's local deque, and idle
//! workers steal FIFO from their peers — the classic work-stealing shape.
//!
//! Two properties make the pool safe to drop into numeric kernels:
//!
//! 1. **Deterministic results.** [`scope_chunks`] hands each task a
//!    caller-chosen disjoint `&mut` chunk of the output, and [`join_all`]
//!    returns results in input order. Work *placement* varies run to run;
//!    work *partitioning* never does, so a kernel that is deterministic per
//!    chunk is bit-identical to its sequential execution at every thread
//!    count.
//! 2. **No deadlock under nesting.** A thread waiting for its scope to
//!    finish executes pending pool jobs instead of blocking (help-first
//!    waiting), so kernels may freely call back into the pool from inside
//!    pool jobs — and on a single-core machine everything degrades to plain
//!    inline execution.
//!
//! Tests and benches can clamp the *effective* parallelism (the task-split
//! width helpers use) with [`with_parallelism_limit`]; because of property
//! (1) this only changes speed, never results.
//!
//! When [`crate::telemetry`] collection is on, the pool reports scope
//! spans (`pool.scope`) plus task/steal/park counters, both aggregate
//! (`pool.tasks`, `pool.steals`, `pool.parks`) and per worker
//! (`pool.worker<i>.*`, including an injector queue-depth gauge sampled
//! at each park). Disabled, each site costs one relaxed atomic load.

use crate::telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Thread count requested via [`request_threads`]; 0 = unset.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Test/bench clamp on effective parallelism; 0 = unclamped.
static PARALLELISM_LIMIT: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };

    /// Batch-invariant kernel-dispatch divisor for this thread (1 = off).
    /// The semantics live in `nautilus_tensor::ops::dispatch`; the slot
    /// lives here because the divisor describes the *logical computation*,
    /// not the thread: a job must run under the divisor of the code that
    /// spawned it. [`Pool::push`] captures the spawner's value into every
    /// job, so (a) batch-scoped jobs keep their divisor on whichever
    /// worker runs them, and (b) a batch-scoped thread that executes
    /// unrelated jobs while help-first waiting in [`run_scope`] does not
    /// leak its divisor into them.
    static DISPATCH_DIVISOR: std::cell::Cell<usize> = const { std::cell::Cell::new(1) };
}

/// This thread's batch-invariant dispatch divisor (1 = no scope active).
pub fn dispatch_divisor() -> usize {
    DISPATCH_DIVISOR.with(|c| c.get())
}

/// Installs `d` (clamped to ≥ 1) as this thread's dispatch divisor and
/// returns the previous value so the caller can restore it.
pub fn set_dispatch_divisor(d: usize) -> usize {
    DISPATCH_DIVISOR.with(|c| c.replace(d.max(1)))
}

/// Index of the pool worker running the current thread (`None` off-pool).
/// Telemetry uses this to label trace threads `pool-worker-<i>`.
pub fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

struct Pool {
    /// Shared FIFO injector for jobs submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Wakes parked workers when work arrives.
    work_cvar: Condvar,
    /// Per-worker local deques (LIFO for the owner, FIFO for thieves).
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Total threads participating in parallel sections (workers + caller).
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("NAUTILUS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    let requested = REQUESTED_THREADS.load(Ordering::Relaxed);
    if requested >= 1 {
        return requested;
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        telemetry::set_worker_index_fn(current_worker);
        let threads = configured_threads().max(1);
        // The submitting thread participates via help-first waiting, so we
        // spawn one fewer OS thread than the target parallelism.
        let workers = threads - 1;
        let pool = Pool {
            injector: Mutex::new(VecDeque::new()),
            work_cvar: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            threads,
        };
        pool
    })
}

/// Spawns the worker threads the first time the pool is actually used.
/// Kept separate from `pool()` so that merely *querying* thread counts
/// never starts OS threads.
static WORKERS_STARTED: OnceLock<()> = OnceLock::new();

fn ensure_workers() -> &'static Pool {
    let p = pool();
    WORKERS_STARTED.get_or_init(|| {
        for idx in 0..p.locals.len() {
            std::thread::Builder::new()
                .name(format!("nautilus-pool-{idx}"))
                .spawn(move || worker_loop(p, idx))
                .expect("spawn pool worker");
        }
    });
    p
}

fn worker_loop(p: &'static Pool, idx: usize) {
    WORKER_INDEX.with(|w| w.set(Some(idx)));
    // Per-worker counters, interned once per thread so the hot loop only
    // pays relaxed atomics.
    let c_tasks = telemetry::counter(&format!("pool.worker{idx}.tasks"));
    let c_parks = telemetry::counter(&format!("pool.worker{idx}.parks"));
    let c_depth = telemetry::counter(&format!("pool.worker{idx}.queue_depth"));
    loop {
        if let Some(job) = p.try_pop(Some(idx)) {
            c_tasks.add(1);
            job();
            continue;
        }
        // Park until work arrives. The timed wait bounds the one benign
        // race (a local push landing between our empty-check and the wait).
        let guard = p.injector.lock().unwrap();
        if guard.is_empty() {
            telemetry::POOL_PARKS.add(1);
            c_parks.add(1);
            c_depth.set(guard.len() as u64);
            // Balance the parked-workers gauge around the wait; capture
            // the switch once so a mid-wait enable cannot unbalance it.
            let track = telemetry::metrics_enabled();
            if track {
                telemetry::POOL_PARKED_WORKERS.add(1);
            }
            let _ = p.work_cvar.wait_timeout(guard, Duration::from_millis(10)).unwrap();
            if track {
                telemetry::POOL_PARKED_WORKERS.add(-1);
            }
        }
    }
}

impl Pool {
    /// Pops the next job: own local LIFO, then the injector FIFO, then a
    /// FIFO steal from a peer.
    fn try_pop(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        for (j, local) in self.locals.iter().enumerate() {
            if Some(j) == me {
                continue;
            }
            if let Some(job) = local.lock().unwrap().pop_front() {
                telemetry::POOL_STEALS.add(1);
                if telemetry::enabled() {
                    if let Some(i) = me {
                        telemetry::counter(&format!("pool.worker{i}.steals")).add(1);
                    }
                }
                return Some(job);
            }
        }
        None
    }

    fn push(&self, job: Job) {
        telemetry::POOL_TASKS.add(1);
        // Jobs carry their spawner's dispatch divisor (see
        // DISPATCH_DIVISOR): install it for the duration of the job and
        // restore the executing thread's own value afterwards, even on
        // unwind.
        let divisor = dispatch_divisor();
        let job: Job = Box::new(move || {
            struct Restore(usize);
            impl Drop for Restore {
                fn drop(&mut self) {
                    set_dispatch_divisor(self.0);
                }
            }
            let _restore = Restore(set_dispatch_divisor(divisor));
            job();
        });
        let me = WORKER_INDEX.with(|w| w.get());
        match me {
            Some(i) => self.locals[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.work_cvar.notify_one();
    }
}

/// Countdown latch a scope waits on; also carries the first panic payload
/// so worker-side panics resurface on the submitting thread.
struct Latch {
    remaining: Mutex<usize>,
    done_cvar: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch { remaining: Mutex::new(n), done_cvar: Condvar::new(), panic: Mutex::new(None) }
    }

    fn complete(&self, panicked: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(payload) = panicked {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done_cvar.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }
}

/// Effective parallelism: the configured pool width, clamped by any active
/// [`with_parallelism_limit`]. Kernels size their task splits with this.
pub fn num_threads() -> usize {
    let configured = pool().threads;
    let limit = PARALLELISM_LIMIT.load(Ordering::Relaxed);
    if limit >= 1 {
        configured.min(limit)
    } else {
        configured
    }
}

/// Chunk length that splits `total` items into at most [`num_threads`]
/// contiguous chunks whose lengths are multiples of `align` (the final
/// chunk absorbs the remainder). Blocked kernels use this to hand
/// [`scope_chunks`] macro-tile-aligned output partitions: every task
/// boundary lands on an `align` multiple, so per-tile work never straddles
/// tasks. Partition *placement* still follows the thread count, but the
/// per-element computation order inside a tile does not — results stay
/// bit-identical at any width.
pub fn aligned_chunk_len(total: usize, align: usize) -> usize {
    let align = align.max(1);
    let blocks = total.div_ceil(align).max(1);
    let tasks = num_threads().min(blocks);
    blocks.div_ceil(tasks) * align
}

/// Requests a pool width (e.g. from `SystemConfig::threads`). Only
/// effective before the pool's first use; `NAUTILUS_THREADS` wins over it,
/// and `0` means "decide automatically". Returns whether the request can
/// still influence the pool (false once the pool is live).
pub fn request_threads(n: usize) -> bool {
    REQUESTED_THREADS.store(n, Ordering::Relaxed);
    POOL.get().is_none()
}

/// Runs `f` with effective parallelism clamped to `n` (≥ 1), restoring the
/// previous clamp afterwards. The clamp changes task-split widths only —
/// results are bit-identical at any setting — so it is safe (if blunt)
/// under concurrent use from other threads.
pub fn with_parallelism_limit<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = PARALLELISM_LIMIT.swap(n.max(1), Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            PARALLELISM_LIMIT.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Runs every task to completion, using pool workers plus the calling
/// thread. Tasks may borrow from the caller's stack: the call does not
/// return until all of them have finished. Panics in any task resurface
/// here after the whole scope completes.
pub fn run_scope<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    let _sp = telemetry::span("pool", "pool.scope");
    if tasks.len() == 1 || num_threads() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let p = ensure_workers();
    let latch = std::sync::Arc::new(Latch::new(tasks.len()));
    {
        for task in tasks {
            let latch_ref = latch.clone();
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                latch_ref.complete(result.err());
            });
            // SAFETY: only the lifetime is transmuted. Every job holds
            // borrows that live for 'scope; this function blocks below
            // until the latch confirms all jobs have run, so no job can
            // outlive the data it borrows.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
            };
            p.push(job);
        }
        // Help-first wait: execute pending jobs (ours or anyone's) instead
        // of blocking, so nested scopes cannot deadlock.
        let me = WORKER_INDEX.with(|w| w.get());
        loop {
            if latch.is_done() {
                break;
            }
            if let Some(job) = p.try_pop(me) {
                job();
                continue;
            }
            let remaining = latch.remaining.lock().unwrap();
            if *remaining == 0 {
                break;
            }
            // Timed so a job injected between our empty-check and this wait
            // (by a nested scope on another thread) cannot strand us.
            let _ = latch.done_cvar.wait_timeout(remaining, Duration::from_millis(1)).unwrap();
        }
    }
    let payload = latch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Parallel-for over disjoint `chunk_len`-sized pieces of `data` (the last
/// chunk may be shorter). `f` receives the chunk index and the chunk;
/// because the partitioning is caller-chosen and each chunk is exclusive,
/// results are bit-identical to the sequential loop at any thread count.
pub fn scope_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    if chunk_len >= data.len() || num_threads() <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f_ref = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| Box::new(move || f_ref(i, chunk)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    run_scope(tasks);
}

/// Runs heterogeneous tasks concurrently and returns their results **in
/// input order**, regardless of completion order.
pub fn join_all<'scope, T: Send>(tasks: Vec<Box<dyn FnOnce() -> T + Send + 'scope>>) -> Vec<T> {
    let n = tasks.len();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        let work: Vec<Box<dyn FnOnce() + Send + '_>> = tasks
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(task, slot)| {
                Box::new(move || {
                    *slot = Some(task());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scope(work);
    }
    slots.into_iter().map(|s| s.expect("pool task completed")).collect()
}

/// Convenience pair fan-out: runs `a` and `b` concurrently, returning
/// `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| ra = Some(a())),
            Box::new(|| rb = Some(b())),
        ];
        run_scope(tasks);
    }
    (ra.expect("pool task completed"), rb.expect("pool task completed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn scope_chunks_fills_disjoint_output() {
        let mut out = vec![0u64; 1000];
        scope_chunks(&mut out, 64, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + j) as u64;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn scope_chunks_matches_sequential_at_every_limit() {
        let run = |limit: usize| {
            with_parallelism_limit(limit, || {
                let mut out = vec![0.0f64; 777];
                scope_chunks(&mut out, 50, |ci, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = ((ci * 50 + j) as f64).sqrt() * 3.7;
                    }
                });
                out
            })
        };
        let seq = run(1);
        for limit in [2usize, 8] {
            assert_eq!(run(limit), seq, "limit {limit} diverged");
        }
    }

    #[test]
    fn join_all_preserves_input_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..100usize)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order differs from
                    // submission order.
                    let mut acc = i;
                    for _ in 0..(100 - i) * 10 {
                        acc = std::hint::black_box(acc + 1) - 1;
                    }
                    acc
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = join_all(tasks);
        assert_eq!(results, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scopes_complete() {
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> =
                        (0..8).map(|j| Box::new(move || j as u64) as Box<_>).collect();
                    let sum: u64 = join_all(inner).into_iter().sum();
                    counter.fetch_add(sum, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scope(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("task {i} failed");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            run_scope(tasks);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn aligned_chunk_len_respects_alignment_and_width() {
        with_parallelism_limit(4, || {
            for total in [1usize, 7, 64, 100, 1000] {
                for align in [1usize, 8, 64] {
                    let chunk = aligned_chunk_len(total, align);
                    assert_eq!(chunk % align, 0, "chunk {chunk} not {align}-aligned");
                    let chunks = total.div_ceil(chunk);
                    assert!(chunks <= 4, "{chunks} chunks for total {total} at width 4");
                }
            }
        });
        with_parallelism_limit(1, || {
            assert!(aligned_chunk_len(1000, 8) >= 1000, "width 1 must not split");
        });
    }

    #[test]
    fn jobs_run_under_their_spawners_dispatch_divisor() {
        // Tasks spawned while a divisor is installed must observe that
        // divisor on whichever thread runs them (worker or the help-first
        // waiting spawner) — and the executing thread's own value must be
        // restored afterwards.
        let prev = set_dispatch_divisor(6);
        let seen: Vec<usize> = join_all(
            (0..32usize)
                .map(|i| {
                    Box::new(move || {
                        // Enough work that tasks spread across threads.
                        let mut acc = i;
                        for _ in 0..2_000 {
                            acc = std::hint::black_box(acc + 1) - 1;
                        }
                        let _ = acc;
                        dispatch_divisor()
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect(),
        );
        set_dispatch_divisor(prev);
        assert!(seen.iter().all(|&d| d == 6), "divisor leaked or lost: {seen:?}");

        // With no divisor installed, tasks see the default even if some
        // other thread is mid-scope (they capture at spawn time).
        let seen: Vec<usize> = join_all(
            (0..8usize)
                .map(|_| Box::new(dispatch_divisor) as Box<dyn FnOnce() -> usize + Send>)
                .collect(),
        );
        assert!(seen.iter().all(|&d| d == 1), "default divisor not 1: {seen:?}");
        assert_eq!(dispatch_divisor(), 1, "caller divisor not restored");
    }

    #[test]
    fn parallelism_limit_restores_on_exit() {
        let before = num_threads();
        with_parallelism_limit(1, || assert_eq!(num_threads(), 1));
        assert_eq!(num_threads(), before);
    }
}
