//! Thread-local scratch arena for reusable `f32` buffers.
//!
//! Numeric hot paths (GEMM packing panels, im2col column matrices, kernel
//! output buffers) need large temporary buffers every call. Allocating a
//! fresh `vec![0.0; n]` each time puts the allocator on the critical path
//! of every matmul in the training loop. This module keeps a small
//! per-thread free list of previously used buffers and hands them back out:
//!
//! * [`take`] returns an RAII [`Scratch`] guard that recycles its buffer
//!   into the arena on drop — the right shape for kernel-internal
//!   temporaries (packing panels, column matrices).
//! * [`take_aligned`] is [`take`] with the window lifted onto a 32-byte
//!   boundary, for packed panels consumed by SIMD microkernels.
//! * [`take_vec`] / [`recycle`] split the two halves apart for buffers
//!   whose ownership must escape (e.g. a kernel output that becomes a
//!   tensor's backing storage and is recycled later by the tensor's drop).
//!
//! Buffers are zero-filled on every take, so a reused buffer is
//! indistinguishable from a fresh `vec![0.0; n]`. Reuse is bounded: at most
//! [`MAX_BUFS`] buffers / [`MAX_BYTES`] bytes are retained per thread
//! (smallest evicted first), and buffers under [`MIN_POOL_LEN`] elements
//! bypass the arena entirely — pooling tiny allocations would cost more in
//! bookkeeping than it saves. Pool worker threads are persistent, so their
//! arenas stay warm across the whole training loop.
//!
//! Telemetry: `scratch.hits` / `scratch.misses` count arena outcomes for
//! pooled-size requests (following the PR 3 counter conventions);
//! [`thread_stats`] exposes the same numbers per thread for tests without
//! requiring telemetry collection to be enabled.

use crate::telemetry;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Requests below this many elements (4 KiB) skip the arena: they are cheap
/// to allocate and would evict the large panels the arena exists for.
pub const MIN_POOL_LEN: usize = 1024;

/// Maximum buffers retained per thread.
pub const MAX_BUFS: usize = 16;

/// Maximum retained capacity per thread, in bytes (64 MiB).
pub const MAX_BYTES: usize = 64 << 20;

struct Arena {
    /// Free buffers, unordered; eviction removes the smallest capacity.
    bufs: Vec<Vec<f32>>,
    /// Total capacity bytes across `bufs`.
    bytes: usize,
    hits: u64,
    misses: u64,
}

impl Arena {
    const fn new() -> Self {
        Arena { bufs: Vec::new(), bytes: 0, hits: 0, misses: 0 }
    }

    /// Best-fit take: the smallest free buffer that can hold `len`.
    fn pop_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<usize> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            if b.capacity() >= len
                && best.map_or(true, |j| b.capacity() < self.bufs[j].capacity())
            {
                best = Some(i);
            }
        }
        let i = best?;
        let buf = self.bufs.swap_remove(i);
        self.bytes -= buf.capacity() * 4;
        Some(buf)
    }

    fn push(&mut self, buf: Vec<f32>) {
        self.bytes += buf.capacity() * 4;
        self.bufs.push(buf);
        while self.bufs.len() > MAX_BUFS || self.bytes > MAX_BYTES {
            let smallest = self
                .bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("non-empty over cap");
            let evicted = self.bufs.swap_remove(smallest);
            self.bytes -= evicted.capacity() * 4;
        }
    }
}

std::thread_local! {
    static ARENA: RefCell<Arena> = const { RefCell::new(Arena::new()) };
}

/// A zero-filled buffer of exactly `len` elements, reusing a previously
/// recycled allocation when one fits. The vec's capacity may exceed `len`.
pub fn take_vec(len: usize) -> Vec<f32> {
    if len < MIN_POOL_LEN {
        return vec![0.0; len];
    }
    // `try_with`: takes during thread teardown (after the arena's
    // destructor ran) just fall through to a fresh allocation.
    let reused = ARENA
        .try_with(|a| {
            let mut a = a.borrow_mut();
            match a.pop_fit(len) {
                Some(buf) => {
                    a.hits += 1;
                    Some(buf)
                }
                None => {
                    a.misses += 1;
                    None
                }
            }
        })
        .ok()
        .flatten();
    match reused {
        Some(mut buf) => {
            telemetry::SCRATCH_HITS.add(1);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            telemetry::SCRATCH_MISSES.add(1);
            vec![0.0; len]
        }
    }
}

/// Returns a buffer to the current thread's arena for future [`take_vec`]
/// calls. Buffers under [`MIN_POOL_LEN`] capacity are simply dropped.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() < MIN_POOL_LEN {
        return;
    }
    // Dropping a buffer during thread teardown is fine — it just frees.
    let _ = ARENA.try_with(|a| a.borrow_mut().push(buf));
}

/// `(hits, misses)` of the current thread's arena, independent of whether
/// telemetry collection is enabled. Tests use the delta across a workload.
pub fn thread_stats() -> (u64, u64) {
    ARENA.with(|a| {
        let a = a.borrow();
        (a.hits, a.misses)
    })
}

/// RAII scratch buffer: derefs to `[f32]`, recycles itself on drop.
pub struct Scratch {
    buf: Option<Vec<f32>>,
}

impl Scratch {
    /// Consumes the guard, keeping the buffer out of the arena.
    pub fn into_vec(mut self) -> Vec<f32> {
        self.buf.take().expect("scratch buffer present")
    }
}

impl Deref for Scratch {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_deref().expect("scratch buffer present")
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf.as_deref_mut().expect("scratch buffer present")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            recycle(buf);
        }
    }
}

/// A zero-filled RAII scratch buffer of `len` elements (see [`take_vec`]).
pub fn take(len: usize) -> Scratch {
    Scratch { buf: Some(take_vec(len)) }
}

/// SIMD vector alignment target for [`take_aligned`], in bytes (AVX2).
pub const SIMD_ALIGN: usize = 32;

/// RAII scratch buffer whose visible `[f32]` window starts on a
/// [`SIMD_ALIGN`]-byte boundary. Deref yields exactly the requested
/// length; the (at most `SIMD_ALIGN/4 - 1` element) alignment slack at
/// the front of the backing allocation is hidden. Recycles on drop.
pub struct AlignedScratch {
    buf: Option<Vec<f32>>,
    off: usize,
    len: usize,
}

impl Deref for AlignedScratch {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        let b = self.buf.as_deref().expect("scratch buffer present");
        &b[self.off..self.off + self.len]
    }
}

impl DerefMut for AlignedScratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        let (off, len) = (self.off, self.len);
        let b = self.buf.as_deref_mut().expect("scratch buffer present");
        &mut b[off..off + len]
    }
}

impl Drop for AlignedScratch {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            recycle(buf);
        }
    }
}

/// A zero-filled RAII scratch buffer of `len` elements whose first element
/// sits on a [`SIMD_ALIGN`]-byte boundary, so vector kernels reading it in
/// 32-byte lanes never take split-load penalties. Works by over-allocating
/// `SIMD_ALIGN/4 - 1` elements and offsetting into the buffer; the offset
/// is recomputed on every take because the arena may hand back a different
/// allocation each time. Falls back to offset 0 (a plain, possibly
/// unaligned window) in the degenerate case where the allocator returns a
/// pointer that cannot be aligned — callers must still use unaligned loads
/// for correctness and get alignment as a performance property.
pub fn take_aligned(len: usize) -> AlignedScratch {
    const SLACK: usize = SIMD_ALIGN / 4 - 1;
    let buf = take_vec(len + SLACK);
    let mis = buf.as_ptr().align_offset(SIMD_ALIGN);
    let off = if mis <= SLACK { mis } else { 0 };
    AlignedScratch { buf: Some(buf), off, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_after_recycle_is_a_hit() {
        let (h0, m0) = thread_stats();
        let buf = take_vec(MIN_POOL_LEN * 2);
        let cap = buf.capacity();
        recycle(buf);
        let again = take_vec(MIN_POOL_LEN * 2);
        assert_eq!(again.capacity(), cap, "same allocation must come back");
        assert!(again.iter().all(|&x| x == 0.0), "reused buffer must be zeroed");
        let (h1, m1) = thread_stats();
        assert_eq!(h1 - h0, 1, "second take must hit");
        assert_eq!(m1 - m0, 1, "first take must miss");
    }

    #[test]
    fn tiny_requests_bypass_the_arena() {
        let (h0, m0) = thread_stats();
        let buf = take_vec(8);
        recycle(buf);
        let _again = take_vec(8);
        assert_eq!(thread_stats(), (h0, m0), "tiny takes must not touch stats");
    }

    #[test]
    fn guard_recycles_on_drop() {
        {
            let mut s = take(MIN_POOL_LEN * 4);
            s[0] = 3.5;
            assert_eq!(s.len(), MIN_POOL_LEN * 4);
        }
        let (h0, _) = thread_stats();
        let s = take(MIN_POOL_LEN * 4);
        let (h1, _) = thread_stats();
        assert_eq!(h1 - h0, 1, "guard drop must have recycled its buffer");
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn retention_is_bounded() {
        // Recycle more buffers than the arena retains; it must stay capped.
        for _ in 0..(MAX_BUFS + 8) {
            recycle(vec![0.0; MIN_POOL_LEN]);
        }
        let retained = ARENA.with(|a| a.borrow().bufs.len());
        assert!(retained <= MAX_BUFS, "retained {retained} > cap {MAX_BUFS}");
        let bytes = ARENA.with(|a| a.borrow().bytes);
        assert!(bytes <= MAX_BYTES);
    }

    #[test]
    fn aligned_take_is_simd_aligned_and_zeroed() {
        for len in [1usize, 7, MIN_POOL_LEN, MIN_POOL_LEN * 3 + 5] {
            let s = take_aligned(len);
            assert_eq!(s.len(), len);
            assert_eq!(s.as_ptr() as usize % SIMD_ALIGN, 0, "len {len} window misaligned");
            assert!(s.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn aligned_take_recycles_through_the_arena() {
        let len = MIN_POOL_LEN * 2;
        {
            let _s = take_aligned(len);
        }
        let (h0, _) = thread_stats();
        let _s2 = take_aligned(len);
        let (h1, _) = thread_stats();
        assert_eq!(h1 - h0, 1, "second aligned take must hit the arena");
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        // Drain the arena so this test owns its contents.
        ARENA.with(|a| a.borrow_mut().bufs.clear());
        ARENA.with(|a| a.borrow_mut().bytes = 0);
        recycle(vec![0.0; MIN_POOL_LEN * 8]);
        recycle(vec![0.0; MIN_POOL_LEN * 2]);
        let got = take_vec(MIN_POOL_LEN);
        assert!(
            got.capacity() < MIN_POOL_LEN * 8,
            "should have picked the smaller buffer, got capacity {}",
            got.capacity()
        );
    }
}
