//! Criterion-free benchmark harness: warmup + median-of-N timing with a
//! JSON result emit.
//!
//! The API deliberately mirrors the slice of `criterion` the bench targets
//! in `crates/bench/benches/` were written against — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], `Bencher::iter` / `iter_batched`, and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — so porting a bench
//! file is an import swap.
//!
//! Each benchmark takes `sample_size` timed samples after a calibration
//! warmup; fast routines are auto-batched so one sample spans enough
//! iterations to be measurable. The median per-iteration time is reported
//! on stdout and collected into `<results-dir>/bench-<suite>.json`
//! (results dir from `NAUTILUS_RESULTS`, default `results`). Set
//! `NAUTILUS_BENCH_SAMPLES` to override sample counts globally (e.g. `3`
//! for a smoke run).

use crate::json::Json;
use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A benchmark identifier, `function_name/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{param}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How batched inputs are consumed; kept for API compatibility (the
/// harness always times one routine call per setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. whole sessions).
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/function/param`.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u64,
    /// All per-iteration samples (ns), sorted.
    pub samples_ns: Vec<u64>,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("median_ns", Json::Num(self.median_ns as f64)),
            ("iters_per_sample", Json::Num(self.iters_per_sample as f64)),
            (
                "samples_ns",
                Json::Arr(self.samples_ns.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
        ])
    }
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("NAUTILUS_BENCH_SAMPLES").ok()?.parse().ok()
}

/// Collects per-iteration timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples_ns: Vec::new(), iters_per_sample: 1 }
    }

    /// Times `f`, auto-batching fast routines so each sample is long
    /// enough to measure (~2 ms), and records per-iteration times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: one untimed-ish call decides the batch size.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        const TARGET_SAMPLE_NS: u128 = 2_000_000;
        let iters = ((TARGET_SAMPLE_NS / once_ns).max(1)).min(1_000_000) as u64;
        // Warmup one full sample to settle caches/allocator.
        for _ in 0..iters {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = (start.elapsed().as_nanos() as u64 / iters).max(1);
            self.samples_ns.push(per_iter);
        }
        self.iters_per_sample = iters;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded. One routine call per sample (inputs are assumed
    /// expensive, so no auto-batching).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warmup run.
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos().max(1) as u64);
        }
        self.iters_per_sample = 1;
    }
}

/// Top-level benchmark driver; collects results across groups.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: env_samples().unwrap_or(20), results: Vec::new(), filters: Vec::new() }
    }
}

impl Criterion {
    /// Installs criterion-style id filters from the process arguments:
    /// `cargo bench -- <substr>...` runs only benchmarks whose full id
    /// contains one of the substrings. Flag-like arguments (leading `-`)
    /// are ignored. Called by [`criterion_main!`](crate::criterion_main).
    pub fn configure_from_args(mut self) -> Self {
        self.filters =
            std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        self
    }

    /// Installs explicit id filters (empty = run everything).
    pub fn with_filters(mut self, filters: Vec<String>) -> Self {
        self.filters = filters;
        self
    }

    fn matches_filter(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(None, id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, group: Option<&str>, id: BenchmarkId, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = match group {
            Some(g) => format!("{g}/{}", id.id),
            None => id.id,
        };
        if !self.matches_filter(&full_id) {
            return;
        }
        let mut b = Bencher::new(sample_size);
        f(&mut b);
        b.samples_ns.sort_unstable();
        let median_ns = b.samples_ns.get(b.samples_ns.len() / 2).copied().unwrap_or(0);
        println!(
            "bench {full_id:<48} median {:>12}  (n={}, iters/sample={})",
            format_ns(median_ns),
            b.samples_ns.len(),
            b.iters_per_sample
        );
        self.results.push(BenchResult {
            id: full_id,
            median_ns,
            samples_ns: b.samples_ns,
            iters_per_sample: b.iters_per_sample,
        });
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes collected results to `<results-dir>/bench-<suite>.json` and
    /// prints a closing line. Called by [`criterion_main!`](crate::criterion_main).
    pub fn finish(&self, suite: &str) {
        let dir = std::env::var("NAUTILUS_RESULTS").unwrap_or_else(|_| "results".to_string());
        let dir = std::path::PathBuf::from(dir);
        let json = Json::Arr(self.results.iter().map(BenchResult::to_json).collect());
        let path = dir.join(format!("bench-{suite}.json"));
        match std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, json.to_string_pretty()))
        {
            Ok(()) => println!("wrote {} results to {}", self.results.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Env override wins so CI can force quick smoke runs.
        self.sample_size = env_samples().unwrap_or(n.max(1));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        self.criterion.run_one(Some(&name), id.into(), self.sample_size, f);
        self
    }

    /// Runs a benchmark with a shared input reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = self.name.clone();
        self.criterion.run_one(Some(&name), id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (results were recorded as they ran).
    pub fn finish(self) {}
}

/// Defines a runner function that executes each listed benchmark function
/// against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $bench_fn(c); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target: runs each group
/// and writes `bench-<target>.json` into the results directory.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.finish(env!("CARGO_CRATE_NAME"));
        }
    };
}

// Let bench targets import the macros alongside the types:
// `use nautilus_util::bench::{criterion_group, criterion_main, Criterion};`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records_median() {
        std::env::remove_var("NAUTILUS_BENCH_SAMPLES");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
        c.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "g/spin");
        assert_eq!(results[1].id, "f/3");
        assert!(results.iter().all(|r| r.median_ns > 0));
        assert_eq!(results[0].samples_ns.len(), 5);
    }

    #[test]
    fn filters_select_by_substring() {
        std::env::remove_var("NAUTILUS_BENCH_SAMPLES");
        let mut c = Criterion::default().with_filters(vec!["pool".to_string()]);
        let mut group = c.benchmark_group("pool");
        group.sample_size(2);
        group.bench_function("hit", |b| b.iter(|| black_box(1u64 + 1)));
        group.finish();
        let mut group = c.benchmark_group("other");
        group.sample_size(2);
        group.bench_function("miss", |b| b.iter(|| black_box(2u64 + 2)));
        group.finish();
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["pool/hit"]);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("matmul", 64).id, "matmul/64");
        assert_eq!(BenchmarkId::from_parameter("naive").id, "naive");
    }
}
