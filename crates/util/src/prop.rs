//! Seeded, shrinking property-test harness — an in-tree replacement for
//! the slice of `proptest` this workspace uses.
//!
//! A property test is three pieces: a [`Gen`] that produces random inputs
//! and can shrink them, a property function returning `Result<(), String>`,
//! and [`prop_check`] which drives generation, detects failures (including
//! panics), and shrinks the failing input to a local minimum before
//! reporting. Everything is seeded, so failures reproduce exactly.
//!
//! ```ignore
//! use nautilus_util::prop::{prop_check, vec_of, u64s};
//!
//! prop_check(0xSEED, 64, &vec_of(u64s(0..100), 0..20), |xs| {
//!     prop_assert!(xs.iter().sum::<u64>() >= *xs.iter().max().unwrap_or(&0));
//!     Ok(())
//! });
//! ```

use crate::rng::{Rng, SeedableRng, StdRng};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A generator of random values with shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Produces one random value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate "smaller" versions of `v`, most aggressive first.
    /// Returning an empty vec means `v` is fully shrunk.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value>;
}

/// Outcome of one property evaluation.
fn run_prop<V, P>(prop: &P, v: &V) -> Result<(), String>
where
    V: Clone,
    P: Fn(&V) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(v))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs `cases` random trials of `prop` over inputs from `gen`, seeded by
/// `seed`. On failure, shrinks the input to a local minimum and panics
/// with the minimal counterexample — call from `#[test]` functions.
pub fn prop_check<G, P>(seed: u64, cases: u32, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let input = gen.generate(&mut rng);
        if let Err(first_err) = run_prop(&prop, &input) {
            let (minimal, err, steps) = shrink_loop(gen, &prop, input, first_err);
            panic!(
                "property failed (seed={seed:#x}, case {case}/{cases}, {steps} shrink steps)\n\
                 minimal input: {minimal:?}\nerror: {err}"
            );
        }
    }
}

fn shrink_loop<G, P>(gen: &G, prop: &P, mut cur: G::Value, mut err: String) -> (G::Value, String, u32)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let mut steps = 0u32;
    // Bounded greedy descent: take the first shrink candidate that still
    // fails, repeat until none do (or we hit the safety cap).
    'outer: while steps < 10_000 {
        for cand in gen.shrink(&cur) {
            if let Err(e) = run_prop(prop, &cand) {
                cur = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur, err, steps)
}

/// Asserts a condition inside a property, returning `Err` instead of
/// panicking so shrinking sees a clean failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            ));
        }
    }};
}

// ---------------------------------------------------------------------------
// Primitive generators
// ---------------------------------------------------------------------------

/// Shrink an integer toward `lo`: try `lo`, then halves of the distance.
fn shrink_toward_u64(v: u64, lo: u64) -> Vec<u64> {
    if v == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && !out.contains(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    if v > lo {
        out.push(v - 1);
    }
    out.dedup();
    out
}

/// Generator for `u64` in `[range.start, range.end)`.
pub struct U64s(pub Range<u64>);

/// `u64` values in a half-open range.
pub fn u64s(range: Range<u64>) -> U64s {
    U64s(range)
}

impl Gen for U64s {
    type Value = u64;
    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.0.clone())
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        shrink_toward_u64(*v, self.0.start)
    }
}

/// Generator for `usize` in `[range.start, range.end)`.
pub struct Usizes(pub Range<usize>);

/// `usize` values in a half-open range.
pub fn usizes(range: Range<usize>) -> Usizes {
    Usizes(range)
}

impl Gen for Usizes {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.0.clone())
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        shrink_toward_u64(*v as u64, self.0.start as u64)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// Generator for `i64` in `[range.start, range.end)`; shrinks toward 0
/// (clamped into range).
pub struct I64s(pub Range<i64>);

/// `i64` values in a half-open range.
pub fn i64s(range: Range<i64>) -> I64s {
    I64s(range)
}

impl Gen for I64s {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.0.clone())
    }
    fn shrink(&self, v: &i64) -> Vec<i64> {
        let target = 0i64.clamp(self.0.start, self.0.end - 1);
        if *v == target {
            return Vec::new();
        }
        let mut out = vec![target];
        let mut delta = (*v - target) / 2;
        while delta != 0 {
            let cand = *v - delta;
            if cand != target && !out.contains(&cand) {
                out.push(cand);
            }
            delta /= 2;
        }
        out.push(if *v > target { *v - 1 } else { *v + 1 });
        out.dedup();
        out
    }
}

/// Generator for `f32` in `[range.start, range.end)`; shrinks toward 0
/// (clamped into range) via halving, plus integral truncation.
pub struct F32s(pub Range<f32>);

/// `f32` values in a half-open range.
pub fn f32s(range: Range<f32>) -> F32s {
    F32s(range)
}

impl Gen for F32s {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.0.clone())
    }
    fn shrink(&self, v: &f32) -> Vec<f32> {
        let lo = self.0.start;
        let hi = self.0.end;
        let target = if lo <= 0.0 && 0.0 < hi { 0.0 } else { lo };
        if *v == target {
            return Vec::new();
        }
        let mut out = vec![target];
        let half = target + (*v - target) / 2.0;
        if half != *v && half != target {
            out.push(half);
        }
        let trunc = v.trunc();
        if trunc != *v && trunc >= lo && trunc < hi && trunc != target {
            out.push(trunc);
        }
        out
    }
}

/// Generator for `bool`; shrinks `true` → `false`.
pub struct Bools;

/// Random booleans.
pub fn bools() -> Bools {
    Bools
}

impl Gen for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Generator that always yields one value (no shrinking).
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

/// A constant generator.
pub fn just<T: Clone + std::fmt::Debug>(v: T) -> Just<T> {
    Just(v)
}

impl<T: Clone + std::fmt::Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
    fn shrink(&self, _v: &T) -> Vec<T> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Generator for `Vec<T>` with a length range; shrinks by removing
/// elements (halves, then one-by-one) and by shrinking each element.
pub struct VecOf<G: Gen> {
    elem: G,
    len: Range<usize>,
}

/// Vectors of values from `elem`, with length in `len`.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecOf<G> {
    VecOf { elem, len }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<G::Value> {
        let n = if self.len.start >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Structural shrinks: drop chunks, then single elements.
        if v.len() > min {
            let half = (v.len() + min) / 2;
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            for i in (0..v.len()).rev() {
                if v.len() - 1 >= min {
                    let mut smaller = v.clone();
                    smaller.remove(i);
                    out.push(smaller);
                }
            }
        }
        // Element shrinks: first shrink candidate per position.
        for (i, item) in v.iter().enumerate() {
            for cand in self.elem.shrink(item).into_iter().take(2) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Generator mapping another generator's values (shrinks map through).
pub struct Map<G: Gen, T, F: Fn(G::Value) -> T> {
    inner: G,
    f: F,
    _t: std::marker::PhantomData<T>,
}

/// Maps `f` over `inner`'s values. Shrinking happens on the *inner*
/// representation, so `f` should be cheap and total.
pub fn map<G: Gen, T: Clone + std::fmt::Debug, F: Fn(G::Value) -> T>(inner: G, f: F) -> Map<G, T, F> {
    Map { inner, f, _t: std::marker::PhantomData }
}

impl<G: Gen, T: Clone + std::fmt::Debug, F: Fn(G::Value) -> T> Gen for Map<G, T, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
    // Without the inverse of `f` we cannot shrink the mapped value; for
    // shrinkable composites, generate tuples/vecs and map inside the
    // property instead.
    fn shrink(&self, _v: &T) -> Vec<T> {
        Vec::new()
    }
}

macro_rules! impl_gen_tuple {
    ($(($($g:ident : $idx:tt),+);)*) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

impl_gen_tuple! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        prop_check(1, 50, &u64s(0..1000), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = |seed: u64| {
            let out = std::cell::RefCell::new(Vec::new());
            prop_check(seed, 20, &u64s(0..u64::MAX / 2), |v| {
                out.borrow_mut().push(*v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn shrinks_to_minimal_counterexample() {
        // Property "all values < 500" fails for any v >= 500; the minimal
        // failing input is exactly 500 and shrinking must find it.
        let result = catch_unwind(AssertUnwindSafe(|| {
            prop_check(7, 200, &u64s(0..10_000), |v| {
                prop_assert!(*v < 500);
                Ok(())
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: 500"), "got: {msg}");
    }

    #[test]
    fn shrinks_vec_to_minimal_length() {
        // "No vec contains a 9" — minimal counterexample is [9].
        let result = catch_unwind(AssertUnwindSafe(|| {
            prop_check(3, 300, &vec_of(u64s(0..10), 0..20), |xs| {
                prop_assert!(!xs.contains(&9), "found 9 in {xs:?}");
                Ok(())
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: [9]"), "got: {msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            prop_check(11, 100, &u64s(0..1000), |v| {
                assert!(*v < 800, "too big");
                Ok(())
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: 800"), "got: {msg}");
        assert!(msg.contains("panic"), "got: {msg}");
    }

    #[test]
    fn tuple_generators_shrink_componentwise() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            prop_check(5, 200, &(u64s(0..100), u64s(0..100)), |(a, b)| {
                prop_assert!(a + b < 120);
                Ok(())
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Greedy componentwise shrinking lands on a + b == 120 exactly.
        assert!(msg.contains("minimal input: ("), "got: {msg}");
    }
}
