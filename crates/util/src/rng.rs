//! Seeded pseudo-random number generation.
//!
//! An in-tree replacement for the parts of the `rand` crate this workspace
//! uses: a xoshiro256++ generator seeded through SplitMix64, a [`Rng`]
//! extension trait with `gen_range`/`gen_bool`/float sampling, and a
//! [`SliceRandom`] trait with Fisher–Yates `shuffle` and `choose`.
//!
//! Everything here is deterministic given the seed, which is what the
//! reproduction needs: "pre-trained" weights, synthetic datasets, and epoch
//! shuffles must be bit-identical across runs and execution strategies
//! (paper Def 4.3 relies on identical layers comparing equal).

/// Minimal core interface: a source of uniformly distributed bits.
///
/// Object safe, so graph builders can hold a `&mut dyn RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`Xoshiro256pp`]).
    type Seed;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded with SplitMix64 —
    /// the standard seeding procedure recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: a tiny, well-distributed generator used to expand small
/// seeds into full xoshiro state (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna 2019): 256 bits of state, excellent
/// statistical quality, and fast — the workhorse generator here.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's standard generator (alias kept close to `rand`'s naming
/// so call sites read familiarly).
pub type StdRng = Xoshiro256pp;

/// Alias for contexts that want a cheap local generator.
pub type SmallRng = Xoshiro256pp;

impl RngCore for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point of the xoshiro transition; fall
        // back to SplitMix64 expansion of 0 in that (degenerate) case.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Xoshiro256pp { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

/// Uniform `u64` in `[0, n)` via Lemire's widening-multiply rejection
/// method — unbiased and usually a single multiplication.
pub fn u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "u64_below: empty range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(u64_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(u64_below(rng, width as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = $unit(rng);
                let v = self.start + u * (self.end - self.start);
                // Rounding in the affine map can (very rarely) land exactly
                // on `end`; remap that draw to `start` to keep the range
                // half-open.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + $unit(rng) * (hi - lo)
            }
        }
    )*};
}

/// Uniform `f32` in `[0, 1)` with 24 bits of precision.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl_float_range!(f32, unit_f32; f64, unit_f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive, ints or floats).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Uniform `f32` in `[0, 1)`.
    fn gen_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        unit_f32(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        unit_f64(self)
    }

    /// One standard-normal `f32` sample (Box–Muller; uses two uniforms and
    /// discards the second output for statelessness).
    fn gen_normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        let u1 = self.gen_range(f32::EPSILON..1.0f32);
        let u2 = self.gen_range(0.0f32..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[u64_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the published SplitMix64 code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn from_seed_round_trips_state() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8 + 1;
        }
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
        // All-zero seeds must not produce the all-zero fixed point.
        let mut z = StdRng::from_seed([0u8; 32]);
        assert_ne!(z.next_u64() | z.next_u64(), 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5isize..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_f64_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn normal_f32_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_normal_f32()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_permutes_and_is_seed_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [1, 2, 3, 4];
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_works_through_references() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dyn_rng: &mut dyn RngCore = &mut rng;
        // `dyn RngCore` is unsized, but `&mut dyn RngCore` is itself an
        // RngCore, so generic Rng methods work through one autoref.
        let v = (&mut dyn_rng).gen_range(0usize..10);
        assert!(v < 10);
        let mut bytes = [0u8; 13];
        dyn_rng.fill_bytes(&mut bytes);
        assert_ne!(bytes, [0u8; 13]);
    }
}
